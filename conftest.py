"""Repo-root pytest configuration.

Puts ``src/`` on sys.path so the suite runs even in environments where
an editable install is impossible (offline boxes without the ``wheel``
package — see README's install notes). A properly installed ``repro``
takes precedence when present.
"""

import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
