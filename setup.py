"""Legacy setup shim.

The environment this repo targets may lack the ``wheel`` package that
PEP 660 editable installs require; ``python setup.py develop`` works
without it. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
