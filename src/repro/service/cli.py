"""``python -m repro serve`` / ``submit``: the service's CLI pair.

Two transports share one implementation:

* **in-process** — ``submit problem.ups problem.ups`` spins up a
  :class:`~repro.service.service.RadiationService` in this process,
  pushes the requests through the real submit path (cache, coalescing,
  batching, workers), prints per-request serving metadata, and can dump
  ``metrics.json`` / ``trace.json`` artifacts plus per-request ``divq``
  arrays;
* **spool** — ``serve --spool DIR`` runs a long-lived service that
  watches ``DIR/inbox`` for UPS files and writes results to
  ``DIR/outbox`` (``<name>.npz`` + ``<name>.json`` sidecar, temp-file +
  rename so readers never see partial writes); ``submit --spool DIR
  problem.ups`` drops requests into the inbox and waits for the
  results, giving a cross-process serve/submit pair with no network
  dependency.

Multiple serve processes may share one spool: each claims requests by
atomically renaming them into its own ``claimed/<shard-id>/``
directory (see :mod:`repro.service.spool`), so a request is solved by
exactly one shard no matter how many poll the inbox. The claimed file
survives until the result is published, which is what lets the fabric
supervisor re-home a killed shard's accepted work with zero loss.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import uuid
from pathlib import Path
from typing import Optional

import numpy as np

from repro.perf import tracectx
from repro.perf.detect import default_bank
from repro.perf.metrics import MetricsRegistry, set_metrics
from repro.perf.tracer import SpanTracer, set_tracer
from repro.perf.tsdb import (
    SnapshotCollector,
    TimeSeriesStore,
    flatten_status,
    format_history,
)
from repro.service.service import RadiationService, ServiceClient, ServiceConfig
from repro.service.spool import (
    claim_request,
    extract_ctx,
    read_result_meta,
    release_claims,
    write_request,
    write_result,
)
from repro.ups import parse_ups
from repro.util.atomic import atomic_savez, atomic_write_text
from repro.util.errors import ReproError, ServiceError


def _service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=2, help="worker shards")
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="solve execution backend",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="on-disk result-cache directory"
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache and in-flight coalescing",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.005,
        help="micro-batch coalescing window (seconds)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64, help="submission queue bound"
    )
    parser.add_argument(
        "--journal", default=None,
        help="write-ahead request journal directory; accepted-but-"
        "unfinished solves are replayed on the next start",
    )
    parser.add_argument("--metrics", default=None, help="write metrics.json here")
    parser.add_argument("--trace", default=None, help="write Chrome trace here")


def _build_config(args, fault_hook=None) -> ServiceConfig:
    return ServiceConfig(
        max_queue=args.max_queue,
        workers=args.workers,
        backend=args.backend,
        batch_window_s=args.batch_window,
        cache_capacity=0 if args.no_cache else 128,
        cache_dir=None if args.no_cache else args.cache_dir,
        coalesce=not args.no_cache,
        journal_dir=args.journal,
        fault_hook=fault_hook,
    )


def _slowdown_hook(delay_s: float, after: int):
    """A fault hook that sleeps ``delay_s`` inside every solve attempt
    past the first ``after`` — the doctor drill's "one worker went
    slow" cause, injected where a real regression would land (the
    solve path), so latency quantiles drift while nothing dies."""
    state = {"n": 0}

    def hook(fingerprint: str, attempt: int) -> None:
        state["n"] += 1
        if state["n"] > after:
            time.sleep(delay_s)

    return hook


def _install_observability(args):
    """Fresh registry (+ enabled tracer when asked) as process defaults."""
    metrics = MetricsRegistry()
    set_metrics(metrics)
    tracer = SpanTracer(enabled=args.trace is not None)
    set_tracer(tracer)
    return metrics, tracer


def _write_observability(args, metrics, tracer) -> None:
    if args.metrics:
        metrics.write(args.metrics)
        print(f"metrics: {args.metrics}")
    if args.trace:
        tracer.write(args.trace)
        print(f"trace:   {args.trace}")


def _result_line(name: str, result) -> str:
    served = "cache-hit" if result.cache_hit else (
        "coalesced" if result.coalesced else f"worker {result.worker}"
    )
    return (
        f"{name:<28} {result.fingerprint[:12]}  {served:<10} "
        f"batch={result.batch_size} attempts={result.attempts} "
        f"latency={result.latency_s * 1e3:8.1f} ms  "
        f"divq mean {result.divq.mean():.4f}"
    )


# ----------------------------------------------------------------------
# submit
# ----------------------------------------------------------------------
def cmd_submit(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro submit",
        description="Submit UPS solves to the radiation service.",
    )
    parser.add_argument("ups", nargs="+", help="UPS input file(s); repeats allowed")
    parser.add_argument(
        "--repeat", type=int, default=1, help="submit the file list N times"
    )
    parser.add_argument(
        "--burst", action="store_true",
        help="submit everything before waiting (exercises coalescing) "
        "instead of one request at a time (exercises the cache)",
    )
    parser.add_argument(
        "--spool", default=None,
        help="submit through a spool directory served by 'repro serve'",
    )
    parser.add_argument(
        "--out", default=None, help="directory for per-request divq .npz files"
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, help="per-request wait (seconds)"
    )
    _service_args(parser)
    args = parser.parse_args(argv)
    names = [Path(p) for p in args.ups] * max(1, args.repeat)

    if args.spool is not None:
        return _submit_spool(args, names)

    metrics, tracer = _install_observability(args)
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    try:
        specs = [parse_ups(str(p)) for p in names]
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    t0 = time.perf_counter()
    with ServiceClient(_build_config(args), metrics=metrics, tracer=tracer) as client:
        try:
            if args.burst:
                results = client.solve_many(specs, timeout=args.timeout)
            else:
                results = [
                    client.solve(spec, timeout=args.timeout) for spec in specs
                ]
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        wall = time.perf_counter() - t0
        for i, (path, result) in enumerate(zip(names, results)):
            print(_result_line(path.name, result))
            if out_dir:
                atomic_savez(
                    out_dir / f"{i:03d}_{path.stem}.npz", divq=result.divq
                )
        stats = client.service.stats()
    hits = stats["cache_hits_memory"] + stats["cache_hits_disk"]
    print(
        f"\n{len(results)} request(s) in {wall:.2f} s "
        f"({len(results) / wall:.1f} req/s): {stats['solves']:.0f} solve(s), "
        f"{hits:.0f} cache hit(s), {stats['coalesced']:.0f} coalesced"
    )
    _write_observability(args, metrics, tracer)
    return 0


def _submit_spool(args, names) -> int:
    spool = Path(args.spool)
    inbox, outbox = spool / "inbox", spool / "outbox"
    inbox.mkdir(parents=True, exist_ok=True)
    outbox.mkdir(parents=True, exist_ok=True)
    tickets = []
    for i, path in enumerate(names):
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        ticket = f"{i:03d}-{path.stem}-{uuid.uuid4().hex[:8]}"
        # the request carries the submitter's trace context in-band, so
        # router, shard, and worker spans all join this client's trace
        write_request(inbox, ticket, text, ctx=tracectx.child_or_new())
        tickets.append((path.name, ticket))
    deadline = time.monotonic() + args.timeout
    failures = 0
    for name, ticket in tickets:
        meta = read_result_meta(outbox, ticket)
        while meta is None:
            if time.monotonic() > deadline:
                print(f"error: no result for {name} ({ticket})", file=sys.stderr)
                return 1
            time.sleep(0.05)
            meta = read_result_meta(outbox, ticket)
        if meta.get("error"):
            print(f"{name:<28} FAILED: {meta['error']}")
            failures += 1
            continue
        print(
            f"{name:<28} {meta['fingerprint'][:12]}  "
            f"{'cache-hit' if meta['cache_hit'] else 'solved':<10} "
            f"latency={meta['latency_s'] * 1e3:8.1f} ms  "
            f"result={outbox / (ticket + '.npz')}"
        )
    return 1 if failures else 0


# ----------------------------------------------------------------------
# serve
# ----------------------------------------------------------------------
def cmd_serve(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve radiation solves from a spool directory.",
    )
    parser.add_argument("--spool", required=True, help="spool directory")
    parser.add_argument(
        "--idle-timeout", type=float, default=10.0,
        help="exit after this many seconds with no new requests",
    )
    parser.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after serving this many requests",
    )
    parser.add_argument(
        "--tsdb-interval", type=float, default=1.0,
        help="seconds between tsdb history samples (0 disables)",
    )
    parser.add_argument(
        "--tsdb-retention", type=int, default=2048,
        help="samples retained per rank in the spool tsdb",
    )
    parser.add_argument(
        "--shard-id", default="shard0",
        help="this consumer's identity; claims land in "
        "claimed/<shard-id>/ so multiple shards may share one inbox "
        "(give each a distinct id)",
    )
    parser.add_argument(
        "--stop-file", default=None,
        help="exit gracefully (drain outstanding, claim nothing new) "
        "once this file exists (default: <spool>/serve.stop)",
    )
    parser.add_argument(
        "--inject-slowdown", type=float, default=0.0, metavar="SECONDS",
        help="fault injection for the doctor drill: sleep this long "
        "inside every solve attempt (after --inject-slowdown-after "
        "warmup solves)",
    )
    parser.add_argument(
        "--inject-slowdown-after", type=int, default=0, metavar="N",
        help="number of solves served at full speed before the "
        "injected slowdown kicks in (gives drift detectors a baseline)",
    )
    _service_args(parser)
    args = parser.parse_args(argv)

    spool = Path(args.spool)
    inbox, outbox = spool / "inbox", spool / "outbox"
    claim_dir = spool / "claimed" / args.shard_id
    inbox.mkdir(parents=True, exist_ok=True)
    outbox.mkdir(parents=True, exist_ok=True)
    claim_dir.mkdir(parents=True, exist_ok=True)
    stop_file = Path(args.stop_file) if args.stop_file else spool / "serve.stop"
    metrics, tracer = _install_observability(args)

    served = 0
    outstanding = []  # (ticket, handle, claimed_path)
    last_request = time.monotonic()
    print(f"serving from {spool} as {args.shard_id} "
          f"(idle timeout {args.idle_timeout}s)")
    fault_hook = None
    if args.inject_slowdown > 0:
        fault_hook = _slowdown_hook(
            args.inject_slowdown, args.inject_slowdown_after
        )
        print(f"fault injection: +{args.inject_slowdown}s per solve "
              f"after {args.inject_slowdown_after} warmup solve(s)")
    config = _build_config(args, fault_hook=fault_hook)
    with RadiationService(config, metrics=metrics, tracer=tracer) as svc:
        client = ServiceClient(svc)
        # metrics history: one collector sampling the registry plus the
        # SLO snapshot into spool/tsdb on a cadence; samples accumulate
        # across serve restarts (append-only, ring-retained)
        collector = None
        bank = None
        if args.tsdb_interval > 0:
            store = TimeSeriesStore(
                spool / "tsdb", rank=0, retention=args.tsdb_retention
            )
            collector = SnapshotCollector(
                store,
                registry=metrics,
                interval_s=args.tsdb_interval,
                extra=lambda: flatten_status(svc.slo.snapshot()),
            )
            # streaming anomaly detectors ride the collector cadence:
            # each tsdb sample also flows through the detector bank,
            # and active detections publish with the status document
            bank = default_bank("serve")
        # warm restart, part 1: requests this shard claimed but never
        # answered before a crash go back to the inbox (to be
        # re-claimed below, possibly by a sibling shard)
        reclaimed = release_claims(claim_dir, inbox)
        if reclaimed:
            print(f"warm restart: {reclaimed} claimed request(s) "
                  "released back to the inbox")
        if svc.journal is not None:
            recovered = svc.recover_journal()
            if recovered["cache_preloaded"] or recovered["replayed"]:
                print(
                    f"warm restart: {recovered['cache_preloaded']} cached "
                    f"result(s) preloaded, {recovered['replayed']} journaled "
                    "solve(s) replayed"
                )
            for handle in recovered["handles"]:
                handle.result(timeout=args.idle_timeout + 300.0)
        stopping = False
        while True:
            claimed = 0
            stopping = stopping or stop_file.exists()
            budget_left = not stopping and (
                args.max_requests is None or served < args.max_requests
            )
            if budget_left:
                for path in sorted(inbox.glob("*.ups")):
                    # atomic claim: exactly one shard wins the rename,
                    # so a shared inbox can never be double-solved
                    claimed_path = claim_request(path, claim_dir)
                    if claimed_path is None:
                        metrics.counter("service.spool.claim_races").inc()
                        continue
                    try:
                        raw = claimed_path.read_text()
                    except OSError:
                        continue  # pragma: no cover — claimed file vanished
                    metrics.counter("service.spool.claimed").inc()
                    ticket = claimed_path.stem
                    text, ctx = extract_ctx(raw)
                    try:
                        # enter the submitter's trace so the request's
                        # queue/batcher/worker spans share its trace_id
                        with tracectx.use(ctx):
                            handle = client.submit(text)
                    except (ReproError, OSError) as exc:
                        write_result(outbox, ticket, error=str(exc))
                        _settle_claim(claimed_path)
                        print(f"{ticket}: rejected ({exc})")
                        continue
                    outstanding.append((ticket, handle, claimed_path))
                    claimed += 1
                    served += 1
                    if args.max_requests is not None and served >= args.max_requests:
                        break
            if claimed:
                last_request = time.monotonic()
            still_waiting = []
            for ticket, handle, claimed_path in outstanding:
                if not handle.done():
                    still_waiting.append((ticket, handle, claimed_path))
                    continue
                try:
                    result = handle.result(timeout=0)
                except ServiceError as exc:
                    write_result(outbox, ticket, error=str(exc))
                    _settle_claim(claimed_path)
                    print(f"{ticket}: FAILED ({exc})")
                    continue
                write_result(outbox, ticket, result=result)
                _settle_claim(claimed_path)
                print(_result_line(ticket, result))
            outstanding = still_waiting
            done_budget = args.max_requests is not None and served >= args.max_requests
            # live status snapshot: the SLO document plus shard
            # identity and a heartbeat timestamp, atomically
            # republished every pass — the fabric supervisor reads
            # heartbeat staleness from here to detect shard death
            if collector is not None:
                record = collector.maybe_sample(
                    served=served, outstanding=len(outstanding)
                )
                if record is not None:
                    bank.observe(record)
            _publish_status(
                spool, svc, args.shard_id, served, len(outstanding),
                inbox, claim_dir, bank=bank,
            )
            if not outstanding and (
                stopping
                or done_budget
                or time.monotonic() - last_request > args.idle_timeout
            ):
                break
            time.sleep(0.05)
        if collector is not None:
            record = collector.sample(served=served, outstanding=len(outstanding))
            bank.observe(record)
        _publish_status(
            spool, svc, args.shard_id, served, len(outstanding),
            inbox, claim_dir, exited=True, bank=bank,
        )
        stats = svc.stats()
    hits = stats["cache_hits_memory"] + stats["cache_hits_disk"]
    print(
        f"served {served} request(s): {stats['solves']:.0f} solve(s), "
        f"{hits:.0f} cache hit(s), {stats['coalesced']:.0f} coalesced"
    )
    _write_observability(args, metrics, tracer)
    return 0


# ----------------------------------------------------------------------
# status
# ----------------------------------------------------------------------
def cmd_status(argv) -> int:
    """Render the SLO dashboard from a published status.json."""
    from repro.perf.slo import format_status

    parser = argparse.ArgumentParser(
        prog="python -m repro status",
        description="Show service SLO status (latency quantiles, error "
        "budget, degradation) from a serve run's status.json.",
    )
    parser.add_argument(
        "--spool", default=None,
        help="spool directory of a 'repro serve' run (reads its status.json)",
    )
    parser.add_argument(
        "--file", default=None, help="explicit status.json path"
    )
    parser.add_argument(
        "--fabric", default=None,
        help="fabric root directory: aggregate every shard's "
        "status.json (the worst shard's verdict drives the exit code)",
    )
    parser.add_argument(
        "--watch", action="store_true", help="refresh continuously"
    )
    parser.add_argument(
        "--interval", type=float, default=1.0, help="refresh period (seconds)"
    )
    parser.add_argument(
        "--max-refreshes", type=int, default=None,
        help="stop --watch after N refreshes (default: run until ^C)",
    )
    parser.add_argument(
        "--history", action="store_true",
        help="render sparkline history from the spool's tsdb (implied "
        "by --watch when the tsdb exists)",
    )
    parser.add_argument(
        "--history-width", type=int, default=32,
        help="sparkline width (samples shown per series)",
    )
    args = parser.parse_args(argv)
    given = [o for o in (args.spool, args.file, args.fabric) if o is not None]
    if len(given) != 1:
        print("error: give exactly one of --spool, --file, or --fabric",
              file=sys.stderr)
        return 2
    if args.fabric is not None:
        return _status_fabric(args)
    path = Path(args.file) if args.file else Path(args.spool) / "status.json"
    tsdb_dir = Path(args.spool) / "tsdb" if args.spool else None

    def history_block() -> Optional[str]:
        if tsdb_dir is None:
            return "history: (needs --spool; --file has no tsdb)" if args.history else None
        store_path = tsdb_dir / "tsdb_rank0.jsonl"
        if not store_path.exists():
            return "history: (no tsdb samples yet)" if args.history else None
        if not (args.history or args.watch):
            return None
        store = TimeSeriesStore(tsdb_dir, rank=0)
        return format_history(store, width=args.history_width)

    refreshes = 0
    while True:
        try:
            snapshot = json.loads(path.read_text())
        except FileNotFoundError:
            print(f"error: no status file at {path} (is serve running?)",
                  file=sys.stderr)
            return 1
        except json.JSONDecodeError as exc:
            print(f"error: unreadable status file {path}: {exc}", file=sys.stderr)
            return 1
        print(format_status(snapshot))
        detect_block = _format_detections(snapshot)
        if detect_block:
            print(detect_block)
        history = history_block()
        if history is not None:
            print(history)
        refreshes += 1
        if not args.watch:
            return _status_exit(snapshot)
        if args.max_refreshes is not None and refreshes >= args.max_refreshes:
            return _status_exit(snapshot)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        print()


def _format_detections(snapshot: dict) -> Optional[str]:
    """Active anomaly detections (and any published incident) from a
    status document, one DETECT line each."""
    detect = snapshot.get("detections") or {}
    active = detect.get("active") or []
    lines = [
        f"  DETECT [{d.get('severity', '?').upper()}]: {d.get('message')}"
        for d in active
    ]
    incident = snapshot.get("incident")
    if incident and incident.get("hypotheses"):
        top = incident["hypotheses"][0]
        lines.append(
            f"  INCIDENT: {top.get('cause')} "
            f"({top.get('subject') or 'service'}) "
            f"confidence {top.get('confidence', 0):.0%}"
        )
    return "\n".join(lines) if lines else None


def _status_exit(snapshot: dict) -> int:
    """Exit-code verdict: the SLO degraded flag and the worst active
    detection severity both count — a shard that still meets its SLOs
    while a detector screams critical is already an incident."""
    detect = snapshot.get("detections") or {}
    if snapshot.get("degraded") or detect.get("worst") == "critical":
        return 3
    return 0


def _status_fabric(args) -> int:
    """Fleet-wide dashboard: aggregate every shard's status.json under
    a fabric root. Exit 3 when the worst shard is degraded (or dead),
    mirroring the single-spool contract."""
    from repro.fabric.fabric import aggregate_status, format_fleet

    refreshes = 0
    while True:
        doc = aggregate_status(Path(args.fabric))
        print(format_fleet(doc))
        refreshes += 1
        done = not args.watch or (
            args.max_refreshes is not None and refreshes >= args.max_refreshes
        )
        if done:
            return 0 if doc["state"] == "ok" else 3
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        print()


def _settle_claim(claimed_path: Path) -> None:
    """Drop a claimed request file once its result is published — from
    here on the outbox, not the claim, is the record of the request."""
    try:
        claimed_path.unlink()
    except OSError:
        pass


def _publish_status(
    spool: Path,
    svc: RadiationService,
    shard_id: str,
    served: int,
    outstanding: int,
    inbox: Path,
    claim_dir: Path,
    exited: bool = False,
    bank=None,
) -> None:
    """Atomically publish the shard's status.json: the SLO snapshot
    plus shard identity, queue depths, active anomaly detections, and
    a wall-clock heartbeat."""
    doc = svc.slo.snapshot()
    doc["heartbeat_t"] = time.time()
    if bank is not None:
        doc["detections"] = bank.as_dict()
    doc["shard"] = {
        "shard_id": shard_id,
        "pid": os.getpid(),
        "served": served,
        "outstanding": outstanding,
        "inbox_depth": sum(1 for _ in inbox.glob("*.ups")),
        "claimed_depth": sum(1 for _ in claim_dir.glob("*.ups")),
        "exited": exited,
        "stats": svc.stats(),
    }
    atomic_write_text(spool / "status.json", json.dumps(doc, indent=2) + "\n")
