"""Sharded solve workers: thread and process backends.

Each shard is a thread owning an (unbounded — backpressure lives at
the front door) batch queue; the service routes every batch for a
given scene to the same shard, so the shard's lazily-built
:class:`~repro.ups.PreparedScene` serves the whole batch. The
``process`` backend keeps the same shard threads for orchestration but
executes the ray trace itself in a ``ProcessPoolExecutor`` subprocess,
sidestepping the GIL for CPU-bound solve streams.

Failures retry with exponential backoff (``max_retries`` attempts
beyond the first) before the request is failed — the service-layer
counterpart of the fault-injection discipline in
``tests/test_failure_injection.py``, and the hook the tests use: a
``fault_hook(fingerprint, attempt)`` callable injected through the
service config runs before every attempt and may raise.

Every solve is wrapped in a tracer span (``cat="service"``) so worker
shards appear as swim-lanes in the Chrome trace next to the scheduler
ranks, and publishes ``service.worker.solves{worker=N}``,
``service.worker.retries``, ``service.worker.failures``, and the
``service.solve.seconds`` histogram.
"""

from __future__ import annotations

import queue as _stdlib_queue
import threading
import time
from typing import Callable, List, Optional

from repro.perf import tracectx
from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.perf.tracer import SpanTracer, get_tracer
from repro.service.batcher import Batch
from repro.service.schema import CachedSolve, PendingSolve
from repro.ups import PreparedScene, ProblemSpec, prepare_scene, run_prepared
from repro.util.errors import ServiceError

BACKENDS = ("thread", "process")


def _solve_in_process(spec: ProblemSpec):
    """Process-backend entry point: run one solve, return a slim,
    picklable payload (the full result's TimerRegistry travels fine,
    but the child only needs to ship what the cache keeps)."""
    from repro.ups import run_ups

    result = run_ups(spec)
    return result.divq, result.rays_traced, result.timers("rmcrt_solve").elapsed


class WorkerPool:
    """``num_workers`` shard threads pulling :class:`Batch` work.

    ``sink`` is the service: it must provide ``expire(pending)``,
    ``completed(pending, payload, attempts, batch_size, worker)`` and
    ``failed(pending, error)``.
    """

    def __init__(
        self,
        num_workers: int,
        sink,
        backend: str = "thread",
        max_retries: int = 2,
        retry_backoff_s: float = 0.01,
        fault_hook: Optional[Callable[[str, int], None]] = None,
        fault_plan=None,
        shard_queue_depth: int = 4,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ServiceError(f"unknown worker backend {backend!r}")
        if num_workers < 1:
            raise ServiceError(f"need >= 1 worker, got {num_workers}")
        self.num_workers = int(num_workers)
        self.sink = sink
        self.backend = backend
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.fault_hook = fault_hook
        # worker deaths from a resilience FaultPlan: dead shards never
        # start, and dispatch routes their scenes to the next survivor
        self._dead = (
            {w for w in fault_plan.dead_workers() if w < self.num_workers}
            if fault_plan is not None
            else set()
        )
        if len(self._dead) >= self.num_workers:
            raise ServiceError(
                f"fault plan kills all {self.num_workers} worker shard(s); "
                "nothing would ever be solved"
            )
        # shard queues are bounded so overload propagates backwards:
        # full shard -> dispatch blocks -> batcher stalls -> the front
        # door submission queue fills -> submit() raises. Without this
        # the bounded front door would be decorative.
        self._queues: List[_stdlib_queue.Queue] = [
            _stdlib_queue.Queue(maxsize=max(1, int(shard_queue_depth)))
            for _ in range(self.num_workers)
        ]
        self._metrics = metrics if metrics is not None else get_metrics()
        self._tracer = tracer if tracer is not None else get_tracer()
        self._threads = [
            threading.Thread(
                target=self._shard_loop, args=(i,), name=f"service-worker-{i}",
                daemon=True,
            )
            for i in range(self.num_workers)
        ]
        self._executor = None  # ProcessPoolExecutor, created on first use
        self._executor_lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self) -> None:
        for i, t in enumerate(self._threads):
            if i in self._dead:
                self._metrics.counter("service.worker.deaths", worker=i).inc()
                continue
            t.start()

    def shard_for(self, scene_key: str) -> int:
        """Scene affinity: one scene always lands on one shard."""
        return int(scene_key[:8], 16) % self.num_workers

    def _live_shard(self, shard: int) -> int:
        """First surviving shard at or after ``shard`` (wrapping): a
        dead worker's scenes all fail over to the same survivor, so
        scene affinity is preserved across the death."""
        for offset in range(self.num_workers):
            candidate = (shard + offset) % self.num_workers
            if candidate not in self._dead:
                return candidate
        raise ServiceError("no live worker shard")  # pragma: no cover

    def dispatch(self, batch: Batch) -> None:
        self._queues[self._live_shard(self.shard_for(batch.scene_key))].put(batch)

    def stop(self, wait: bool = True) -> None:
        for q in self._queues:
            q.put(None)
        if wait:
            for i, t in enumerate(self._threads):
                if i not in self._dead:
                    t.join(timeout=30.0)
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    def _shard_loop(self, worker_id: int) -> None:
        # timed get: a wedged dispatcher can never strand a shard thread
        # in an unkillable blocking wait (the linter's blocking-call rule)
        while True:
            try:
                batch = self._queues[worker_id].get(timeout=0.5)
            except _stdlib_queue.Empty:
                continue
            if batch is None:
                return
            self._run_batch(worker_id, batch)

    def _run_batch(self, worker_id: int, batch: Batch) -> None:
        scene: Optional[PreparedScene] = None
        now = time.monotonic()
        live = []
        for pending in batch.entries:
            if pending.expired(now):
                self.sink.expire(pending)
            else:
                live.append(pending)
        for pending in live:
            fp = pending.request.fingerprint
            # re-enter the submitter's causal trace: the worker's
            # prepare/solve spans join the trace that started at submit()
            with tracectx.use(pending.request.ctx):
                try:
                    if scene is None and self.backend == "thread":
                        with self._tracer.span(
                            "service.prepare_scene", cat="service",
                            scene=batch.scene_key[:12],
                        ):
                            scene = prepare_scene(pending.request.spec)
                    payload, attempts = self._solve_with_retries(
                        pending.request.spec, scene, fp, worker_id
                    )
                except Exception as exc:  # noqa: BLE001 — any failure fails the request
                    self._metrics.counter(
                        "service.worker.failures", worker=worker_id
                    ).inc()
                    self.sink.failed(
                        pending,
                        ServiceError(
                            f"solve {fp[:12]} failed after "
                            f"{self.max_retries + 1} attempt(s): {exc}"
                        ),
                    )
                    continue
                self.sink.completed(pending, payload, attempts, len(live), worker_id)

    def _solve_with_retries(
        self,
        spec: ProblemSpec,
        scene: Optional[PreparedScene],
        fingerprint: str,
        worker_id: int,
    ):
        last_exc: Optional[Exception] = None
        for attempt in range(1, self.max_retries + 2):
            try:
                if self.fault_hook is not None:
                    self.fault_hook(fingerprint, attempt)
                with self._tracer.span(
                    "service.solve", cat="service",
                    fingerprint=fingerprint[:12], attempt=attempt,
                    worker=worker_id,
                ):
                    payload = self._solve_once(spec, scene, fingerprint)
                self._metrics.counter(
                    "service.worker.solves", worker=worker_id
                ).inc()
                self._metrics.histogram("service.solve.seconds").observe(
                    payload.solve_time_s
                )
                return payload, attempt
            except Exception as exc:  # noqa: BLE001 — retry any solve failure
                last_exc = exc
                if attempt <= self.max_retries:
                    self._metrics.counter("service.worker.retries").inc()
                    time.sleep(self.retry_backoff_s * 2 ** (attempt - 1))
        assert last_exc is not None
        raise last_exc

    def _solve_once(
        self, spec: ProblemSpec, scene: Optional[PreparedScene], fingerprint: str
    ) -> CachedSolve:
        if self.backend == "process":
            divq, rays, solve_time = self._submit_to_process(spec)
        else:
            result = run_prepared(spec, scene)
            divq = result.divq
            rays = result.rays_traced
            solve_time = result.timers("rmcrt_solve").elapsed
        return CachedSolve(
            fingerprint=fingerprint,
            divq=divq,
            rays_traced=int(rays),
            solve_time_s=float(solve_time),
        )

    def _submit_to_process(self, spec: ProblemSpec):
        with self._executor_lock:
            if self._executor is None:
                from concurrent.futures import ProcessPoolExecutor

                self._executor = ProcessPoolExecutor(max_workers=self.num_workers)
            executor = self._executor
        return executor.submit(_solve_in_process, spec).result()
