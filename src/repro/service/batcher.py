"""Micro-batcher: coalesce a request stream into per-scene batches.

The paper's LevelDB insight — build the shared coarse-level state once
and let every patch task consume it — lifted to the serving plane: the
batcher holds the submission stream for a short coalescing window,
groups what arrived by *scene* fingerprint (grid + properties), and
emits one :class:`Batch` per scene, so the worker that receives it
prepares the scene once and runs every member solve against it.

Batches are sharded onto workers by scene key, giving each shard scene
affinity (the same grid/property build always lands on the same
worker). Batch sizes feed the ``service.batch.size`` histogram.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.service.queue import SubmissionQueue
from repro.service.schema import PendingSolve

#: batch-size histogram buckets: small integers, not the default
#: exponential time buckets
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class Batch:
    """One scene's worth of coalesced requests."""

    scene_key: str
    entries: List[PendingSolve] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


class MicroBatcher:
    """A thread draining the submission queue into per-scene batches.

    ``dispatch(batch)`` is the service's shard router; it must not
    block for long (shard queues are unbounded — backpressure is the
    front door's job).
    """

    def __init__(
        self,
        queue: SubmissionQueue,
        dispatch: Callable[[Batch], None],
        window_s: float = 0.005,
        max_batch: int = 16,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.queue = queue
        self.dispatch = dispatch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._metrics = metrics if metrics is not None else get_metrics()
        self._thread = threading.Thread(
            target=self._run, name="service-batcher", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self.queue.get(timeout=0.25)
            if first is None:
                if self.queue.closed:
                    return
                continue
            entries = [first]
            horizon = time.monotonic() + self.window_s
            while len(entries) < self.max_batch:
                remaining = horizon - time.monotonic()
                if remaining <= 0:
                    break
                nxt = self.queue.get(timeout=remaining)
                if nxt is None:
                    break
                entries.append(nxt)
            self._emit(entries)

    def _emit(self, entries: List[PendingSolve]) -> None:
        by_scene = {}
        for pending in entries:
            by_scene.setdefault(pending.request.scene_key, []).append(pending)
        size_hist = self._metrics.histogram(
            "service.batch.size", buckets=BATCH_BUCKETS
        )
        for scene_key, members in by_scene.items():
            size_hist.observe(len(members))
            self._metrics.counter("service.batch.dispatched").inc()
            self.dispatch(Batch(scene_key, members))
