"""The file-spool wire protocol, shared by serve, submit, and the fabric.

A spool directory is the no-network transport of this repo: requests
are ``inbox/<ticket>.ups`` files, results are ``outbox/<ticket>.npz``
plus a ``<ticket>.json`` sidecar whose existence is the completion
signal. This module is the single home of that protocol so the serve
loop, the submit client, and the fabric router all speak exactly the
same format:

* **Atomic publication** — requests and results appear via tmp-file +
  rename, so a reader never sees a partial file.
* **Atomic claiming** — consumers take ownership of a request by
  renaming it into their own ``claimed/<shard-id>/`` directory. POSIX
  rename succeeds for exactly one claimant, so two shards polling one
  inbox can never double-solve a request; the claimed file survives
  until the result is published, which is what lets a supervisor
  re-home a dead shard's accepted-but-unfinished work with zero loss.
* **In-band trace context** — the submitter's
  :class:`~repro.perf.tracectx.TraceContext` rides as a leading XML
  comment inside the request file itself (``<!-- repro:ctx {...} -->``),
  so one trace_id spans client, router, shard, and worker without a
  sidecar file that could race the claim rename.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Optional, Tuple

from repro.perf import tracectx
from repro.util.atomic import atomic_write_text

#: leading-comment carrier of the submitter's trace context; XML
#: parsers skip comments before the root element, so parse_ups never
#: sees it
_CTX_RE = re.compile(r"^\s*<!--\s*repro:ctx\s+(\{.*?\})\s*-->\s*", re.DOTALL)


def embed_ctx(text: str, ctx: Optional[tracectx.TraceContext]) -> str:
    """Prefix UPS text with an in-band trace-context comment."""
    if ctx is None:
        return text
    return f"<!-- repro:ctx {json.dumps(ctx.as_dict())} -->\n{text}"


def extract_ctx(text: str) -> Tuple[str, Optional[tracectx.TraceContext]]:
    """Split request text into (UPS body, carried context or None).

    A malformed context comment is dropped rather than failing the
    request — tracing is observability, never a correctness gate.
    """
    match = _CTX_RE.match(text)
    if match is None:
        return text, None
    body = text[match.end():]
    try:
        ctx = tracectx.TraceContext.from_dict(json.loads(match.group(1)))
    except (ValueError, KeyError, TypeError):
        return body, None
    return body, ctx


# ----------------------------------------------------------------------
# request side
# ----------------------------------------------------------------------
def write_request(
    inbox: Path,
    ticket: str,
    text: str,
    ctx: Optional[tracectx.TraceContext] = None,
) -> Path:
    """Publish one request atomically; returns the inbox path."""
    inbox.mkdir(parents=True, exist_ok=True)
    target = inbox / f"{ticket}.ups"
    atomic_write_text(target, embed_ctx(text, ctx))
    return target


def claim_request(path: Path, claim_dir: Path) -> Optional[Path]:
    """Atomically claim an inbox request by renaming it into
    ``claim_dir``; returns the claimed path, or None when another
    consumer won the race (or the file vanished)."""
    target = claim_dir / path.name
    try:
        path.rename(target)
    except OSError:
        return None
    return target


def release_claims(claim_dir: Path, inbox: Path) -> int:
    """Move every claimed-but-unfinished request back into an inbox —
    the warm-restart sweep (same shard id restarting) and the
    supervisor's re-home path both use this. Returns the count moved."""
    moved = 0
    if not claim_dir.is_dir():
        return moved
    inbox.mkdir(parents=True, exist_ok=True)
    for path in sorted(claim_dir.glob("*.ups")):
        try:
            path.rename(inbox / path.name)
        except OSError:
            continue  # concurrent sweep got it first
        moved += 1
    return moved


def move_requests(src_inbox: Path, dst_inbox: Path, limit: Optional[int] = None):
    """Re-route unclaimed requests between inboxes by atomic rename
    (the router's work-stealing move). A request the source shard
    claims mid-steal simply wins its rename race and stays put.
    Returns the list of moved tickets."""
    moved = []
    if not src_inbox.is_dir():
        return moved
    dst_inbox.mkdir(parents=True, exist_ok=True)
    for path in sorted(src_inbox.glob("*.ups")):
        if limit is not None and len(moved) >= limit:
            break
        try:
            path.rename(dst_inbox / path.name)
        except OSError:
            continue
        moved.append(path.stem)
    return moved


# ----------------------------------------------------------------------
# result side
# ----------------------------------------------------------------------
def write_result(outbox: Path, ticket: str, result=None, error=None) -> None:
    """npz first, JSON sidecar last — the sidecar's existence is the
    submitter's completion signal, and both publish atomically."""
    from repro.util.atomic import atomic_savez

    if result is not None:
        atomic_savez(outbox / f"{ticket}.npz", divq=result.divq)
        meta = {
            "fingerprint": result.fingerprint,
            "cache_hit": result.cache_hit,
            "coalesced": result.coalesced,
            "rays_traced": result.rays_traced,
            "latency_s": result.latency_s,
            "worker": result.worker,
            "error": None,
        }
    else:
        meta = {"error": error}
    atomic_write_text(outbox / f"{ticket}.json", json.dumps(meta))


def read_result_meta(outbox: Path, ticket: str) -> Optional[dict]:
    """The result sidecar for a ticket, or None while it's pending."""
    path = outbox / f"{ticket}.json"
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def forward_results(src_outbox: Path, dst_outbox: Path) -> int:
    """Relay completed results between outboxes (shard outbox to the
    fabric's front outbox). The payload moves before its sidecar so the
    destination never signals completion for a missing payload.
    Returns the number of results forwarded."""
    forwarded = 0
    if not src_outbox.is_dir():
        return forwarded
    dst_outbox.mkdir(parents=True, exist_ok=True)
    for sidecar in sorted(src_outbox.glob("*.json")):
        npz = sidecar.with_suffix(".npz")
        try:
            if npz.exists():
                npz.rename(dst_outbox / npz.name)
            sidecar.rename(dst_outbox / sidecar.name)
        except OSError:
            continue
        forwarded += 1
    return forwarded
