"""Request/result schema of the radiation-solve service.

A :class:`SolveRequest` is one radiation solve, content-addressed by
the spec fingerprint (:func:`repro.ups.spec_fingerprint`); a
:class:`SolveResult` is what the caller gets back, carrying both the
physics output (``divq``, rays traced) and the serving metadata (cache
hit, batch size, retry count, latency). :class:`SolveHandle` is the
future the service hands out at submission — callers block on
:meth:`SolveHandle.result`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.perf import tracectx
from repro.ups import ProblemSpec, scene_fingerprint, spec_fingerprint
from repro.util.errors import ServiceError

_request_ids = itertools.count()


@dataclass
class SolveRequest:
    """One solve submission: the spec plus serving parameters."""

    spec: ProblemSpec
    #: seconds the caller is willing to wait (None = no deadline)
    deadline_s: Optional[float] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))
    fingerprint: str = ""
    scene_key: str = ""
    #: causal trace context captured at submission — continues the
    #: submitter's ambient trace if one is active, else starts a new
    #: one; queue, batcher, worker, and cache spans all re-enter it
    ctx: Optional[tracectx.TraceContext] = None

    def __post_init__(self) -> None:
        if not self.fingerprint:
            self.fingerprint = spec_fingerprint(self.spec)
        if not self.scene_key:
            self.scene_key = scene_fingerprint(self.spec)
        if self.ctx is None:
            self.ctx = tracectx.child_or_new()


@dataclass
class CachedSolve:
    """The cacheable payload of one solve — everything that is a pure
    function of the fingerprint (per-request serving metadata lives on
    :class:`SolveResult` instead)."""

    fingerprint: str
    divq: np.ndarray
    rays_traced: int
    solve_time_s: float


@dataclass
class SolveResult:
    """One completed request: physics output + serving metadata."""

    request_id: int
    fingerprint: str
    divq: np.ndarray
    rays_traced: int
    #: wall time of the ray trace that produced the payload (the
    #: original solve's time when served from cache)
    solve_time_s: float
    #: served straight from the result cache at submission time
    cache_hit: bool = False
    #: attached to an identical in-flight solve instead of tracing again
    coalesced: bool = False
    #: number of requests in the batch this solve rode in (1 = alone)
    batch_size: int = 1
    #: solve attempts including retries (0 for cache hits)
    attempts: int = 0
    #: worker shard that ran the solve (-1 = served without a worker)
    worker: int = -1
    #: submit-to-completion wall time as seen by the service
    latency_s: float = 0.0


class SolveHandle:
    """The caller's future for one submitted request.

    Completed exactly once, with either a :class:`SolveResult` or a
    :class:`~repro.util.errors.ServiceError`; late completions (a solve
    finishing after the request's deadline already failed the handle)
    are dropped.
    """

    def __init__(self, request: SolveRequest) -> None:
        self.request = request
        self._done = threading.Event()
        self._result: Optional[SolveResult] = None
        self._error: Optional[ServiceError] = None

    def done(self) -> bool:
        return self._done.is_set()

    def set_result(self, result: SolveResult) -> None:
        if not self._done.is_set():
            self._result = result
            self._done.set()

    def set_error(self, error: ServiceError) -> None:
        if not self._done.is_set():
            self._error = error
            self._done.set()

    def result(self, timeout: Optional[float] = None) -> SolveResult:
        """Block until completion; raises the failure if there was one."""
        if not self._done.wait(timeout):
            raise ServiceError(
                f"request {self.request.request_id} not done after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class PendingSolve:
    """A queued solve: the handle plus its service-side timestamps.

    ``abs_deadline`` is on the monotonic clock (``time.monotonic()``),
    fixed at submission; batcher and workers drop the pending the
    moment it is past due instead of tracing rays nobody will wait for.
    """

    handle: SolveHandle
    submitted_at: float
    abs_deadline: Optional[float] = None

    @property
    def request(self) -> SolveRequest:
        return self.handle.request

    def expired(self, now: float) -> bool:
        return self.abs_deadline is not None and now > self.abs_deadline
