"""Write-ahead request journal: crash-safe in-flight bookkeeping.

A service killed mid-run loses its queue, its batcher, and its worker
shards — but the *requests* it accepted were promises. The journal
records every accepted solve as one ``<fingerprint>.json`` file (the
spec, round-trippable via :func:`repro.ups.spec_to_dict`) the moment it
enters the in-flight table, and forgets it when the solve completes,
fails, or expires. On warm restart,
:meth:`repro.service.service.RadiationService.recover_journal` replays
whatever is left: solves the previous incarnation accepted but never
finished.

One file per fingerprint (not an append-only log) keeps recovery
trivially idempotent — re-journaling a coalesced duplicate is a no-op
overwrite, and completion removes exactly one file. Files are published
atomically, so a journal entry is never half-written; a corrupt entry
(storage damage) is skipped with a metric rather than poisoning
recovery.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import List, Optional

from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.ups import ProblemSpec, spec_from_dict, spec_to_dict
from repro.util.atomic import atomic_write_text
from repro.util.errors import ReproError

_FP_HEX = frozenset("0123456789abcdef")


class RequestJournal:
    """Directory-backed journal of accepted-but-unfinished solves."""

    def __init__(
        self, directory, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics if metrics is not None else get_metrics()
        self._lock = threading.Lock()

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def record(self, fingerprint: str, spec: ProblemSpec) -> None:
        """Journal an accepted request (idempotent per fingerprint)."""
        doc = {"fingerprint": fingerprint, "spec": spec_to_dict(spec)}
        with self._lock:
            atomic_write_text(self._path(fingerprint), json.dumps(doc, sort_keys=True))
        self._metrics.counter("service.journal.recorded").inc()

    def forget(self, fingerprint: str) -> None:
        """Remove a settled request (completed, failed, or expired)."""
        if set(fingerprint) - _FP_HEX:
            return
        with self._lock:
            try:
                self._path(fingerprint).unlink()
            except OSError:
                return
        self._metrics.counter("service.journal.settled").inc()

    # ------------------------------------------------------------------
    def outstanding(self) -> List[ProblemSpec]:
        """Specs journaled by a previous incarnation and never settled,
        oldest first. Corrupt entries are dropped (counted, deleted) so
        one damaged file cannot wedge recovery forever."""
        out: List[ProblemSpec] = []
        with self._lock:
            entries = sorted(
                self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
            )
        for path in entries:
            try:
                doc = json.loads(path.read_text())
                out.append(spec_from_dict(doc["spec"]))
            except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                    TypeError, ReproError):
                self._metrics.counter("service.journal.corrupt").inc()
                try:
                    path.unlink()
                except OSError:
                    pass
        return out

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for _ in self.directory.glob("*.json"))
