"""Content-addressed result cache: in-memory LRU + optional disk store.

The whole premise of the service layer is that a radiation solve is a
pure function of its fingerprint, so results are cacheable forever.
This cache is two-tier: a bounded in-memory LRU in front of an optional
on-disk store (``<fp>.npz`` + ``<fp>.json`` per solve, the same
npz-plus-JSON-sidecar convention as :class:`repro.dw.archive.DataArchive`),
so a restarted service warm-starts from earlier runs' results.

Hit/miss/eviction traffic is published to the metrics registry:
``service.cache.hits{tier=memory|disk}``, ``service.cache.misses``,
``service.cache.evictions``, and the ``service.cache.entries`` gauge.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional

import numpy as np

from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.service.schema import CachedSolve
from repro.util.atomic import atomic_savez, atomic_write_text

_FP_HEX = frozenset("0123456789abcdef")


class ResultCache:
    """Two-tier fingerprint -> :class:`CachedSolve` store.

    ``capacity`` bounds the in-memory LRU (0 disables caching
    entirely); ``directory`` enables the disk tier. Disk entries are
    written via a temp file + rename so a crashed writer never leaves a
    half-written result that a later ``get`` would trust.
    """

    def __init__(
        self,
        capacity: int = 128,
        directory=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.capacity = int(capacity)
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._lru: "OrderedDict[str, CachedSolve]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = metrics if metrics is not None else get_metrics()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def get(self, fingerprint: str) -> Optional[CachedSolve]:
        if self.capacity <= 0:
            return None
        with self._lock:
            entry = self._lru.get(fingerprint)
            if entry is not None:
                self._lru.move_to_end(fingerprint)
        if entry is not None:
            self._metrics.counter("service.cache.hits", tier="memory").inc()
            return entry
        entry = self._disk_get(fingerprint)
        if entry is not None:
            self._metrics.counter("service.cache.hits", tier="disk").inc()
            self._memory_put(entry)
            return entry
        self._metrics.counter("service.cache.misses").inc()
        return None

    def put(self, entry: CachedSolve) -> None:
        if self.capacity <= 0:
            return
        self._memory_put(entry)
        self._disk_put(entry)

    def _memory_put(self, entry: CachedSolve) -> None:
        with self._lock:
            self._lru[entry.fingerprint] = entry
            self._lru.move_to_end(entry.fingerprint)
            while len(self._lru) > self.capacity:
                self._lru.popitem(last=False)
                self._metrics.counter("service.cache.evictions").inc()
            self._metrics.gauge("service.cache.entries").set(len(self._lru))

    def preload(self) -> int:
        """Warm-restart support: pull every valid disk entry into the
        memory LRU (newest files last, so they survive LRU pressure).
        Returns how many entries were loaded; corrupt files are skipped
        exactly as they would be on a ``get`` miss."""
        if self.directory is None or self.capacity <= 0:
            return 0
        loaded = 0
        sidecars = sorted(
            self.directory.glob("*.json"), key=lambda p: p.stat().st_mtime
        )
        for meta_path in sidecars:
            fingerprint = meta_path.stem
            entry = self._disk_get(fingerprint)
            if entry is not None:
                self._memory_put(entry)
                loaded += 1
        if loaded:
            self._metrics.counter("service.cache.preloaded").inc(loaded)
        return loaded

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------
    def _paths(self, fingerprint: str):
        base = self.directory / fingerprint
        return base.with_suffix(".npz"), base.with_suffix(".json")

    def _disk_put(self, entry: CachedSolve) -> None:
        if self.directory is None:
            return
        npz, meta = self._paths(entry.fingerprint)
        # arrays first, sidecar last: _disk_get requires both files, so
        # the atomically-published meta.json acts as the commit marker
        atomic_savez(npz, divq=entry.divq)
        atomic_write_text(
            meta,
            json.dumps(
                {
                    "fingerprint": entry.fingerprint,
                    "rays_traced": entry.rays_traced,
                    "solve_time_s": entry.solve_time_s,
                }
            ),
        )

    def _disk_get(self, fingerprint: str) -> Optional[CachedSolve]:
        if self.directory is None or set(fingerprint) - _FP_HEX:
            return None
        npz, meta_path = self._paths(fingerprint)
        if not (npz.exists() and meta_path.exists()):
            return None
        try:
            meta = json.loads(meta_path.read_text())
            with np.load(npz) as arrays:
                divq = arrays["divq"].copy()
        except (json.JSONDecodeError, KeyError, OSError, ValueError):
            return None  # corrupt disk entry == miss; memory tier re-fills it
        return CachedSolve(
            fingerprint=fingerprint,
            divq=divq,
            rays_traced=int(meta["rays_traced"]),
            solve_time_s=float(meta["solve_time_s"]),
        )
