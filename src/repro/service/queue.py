"""Bounded submission queue with backpressure.

The service front door: submissions land here, the micro-batcher
drains. The queue is bounded — when the workers fall behind, ``put``
blocks for at most the caller's patience and then raises
:class:`~repro.util.errors.ServiceError`, pushing the overload back to
the producer instead of letting an unbounded backlog eat the process
(the wait-free pool's fixed slot array, lifted to the request plane).

Depth is published continuously to the ``service.queue.depth`` gauge;
accepted and rejected submissions to ``service.queue.enqueued`` /
``service.queue.rejected``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, List, Optional

from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.util.errors import ServiceError


class SubmissionQueue:
    """A closable bounded FIFO of pending work items."""

    def __init__(
        self, maxsize: int = 64, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if maxsize < 1:
            raise ServiceError(f"queue maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._items: Deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._metrics = metrics if metrics is not None else get_metrics()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item, timeout: Optional[float] = None) -> None:
        """Enqueue, blocking up to ``timeout`` for space.

        Raises :class:`ServiceError` when the queue stays full past the
        timeout (backpressure) or the queue is closed.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while len(self._items) >= self.maxsize and not self._closed:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._metrics.counter("service.queue.rejected").inc()
                        raise ServiceError(
                            f"submission queue full ({self.maxsize} pending); "
                            "backpressure — retry later or raise the queue bound"
                        )
                self._not_full.wait(remaining)
            if self._closed:
                raise ServiceError("submission queue is closed")
            self._items.append(item)
            self._metrics.gauge("service.queue.depth").set(len(self._items))
            self._metrics.counter("service.queue.enqueued").inc()
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None):
        """Dequeue one item, or None on timeout / closed-and-drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._not_empty.wait(remaining)
            item = self._items.popleft()
            self._metrics.gauge("service.queue.depth").set(len(self._items))
            self._not_full.notify()
            return item

    def drain(self) -> List:
        """Everything currently queued, without blocking."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._metrics.gauge("service.queue.depth").set(0)
            self._not_full.notify_all()
            return items

    def close(self) -> None:
        """Stop accepting puts; getters drain what is left, then None."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
