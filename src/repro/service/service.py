"""The radiation-solve service and its synchronous client.

:class:`RadiationService` treats radiation solves as a workload, the
way the paper treats patch tasks: requests are content-addressed by
spec fingerprint, collapse against the result cache and against
identical in-flight solves, coalesce into per-scene micro-batches, and
fan out across sharded workers — with bounded-queue backpressure at
the front door and retry-with-backoff behind it.

The request path, in order::

    submit(spec)
      -> cache probe        (hit: complete immediately, no queue trip)
      -> in-flight probe    (identical solve already queued: attach)
      -> bounded queue      (full past the timeout: ServiceError)
      -> micro-batcher      (coalescing window, group by scene)
      -> worker shard       (scene affinity, retries, thread/process)
      -> complete + cache   (every attached handle fans in)

Everything observable about the path lands in the PR 1 metrics
registry and tracer; see ``stats()`` for the live snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.perf.tracer import SpanTracer, get_tracer
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.queue import SubmissionQueue
from repro.service.schema import (
    CachedSolve,
    PendingSolve,
    SolveHandle,
    SolveRequest,
    SolveResult,
)
from repro.service.workers import WorkerPool
from repro.ups import ProblemSpec, parse_ups
from repro.util.errors import ServiceError


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance."""

    max_queue: int = 64            #: bounded-queue depth (backpressure point)
    workers: int = 2               #: worker shards
    backend: str = "thread"        #: "thread" or "process" solve execution
    batch_window_s: float = 0.005  #: micro-batch coalescing window
    max_batch: int = 16            #: requests per batch, max
    cache_capacity: int = 128      #: in-memory LRU entries (0 = no cache)
    cache_dir: Optional[str] = None  #: optional on-disk cache tier
    coalesce: bool = True          #: attach duplicates to in-flight solves
    max_retries: int = 2           #: solve retries beyond the first attempt
    retry_backoff_s: float = 0.01  #: base of the exponential retry backoff
    shard_queue_depth: int = 4     #: batches buffered per worker shard
    submit_timeout_s: float = 30.0  #: how long submit blocks on a full queue
    #: test/fault-injection hook: called as ``fault_hook(fingerprint,
    #: attempt)`` before every solve attempt; raising fails the attempt
    fault_hook: Optional[Callable[[str, int], None]] = None


class RadiationService:
    """A batching, caching solve service over the existing solvers."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        c = self.config
        self.cache = ResultCache(
            capacity=c.cache_capacity, directory=c.cache_dir, metrics=self.metrics
        )
        self.queue = SubmissionQueue(maxsize=c.max_queue, metrics=self.metrics)
        self.workers = WorkerPool(
            c.workers,
            sink=self,
            backend=c.backend,
            max_retries=c.max_retries,
            retry_backoff_s=c.retry_backoff_s,
            fault_hook=c.fault_hook,
            shard_queue_depth=c.shard_queue_depth,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.batcher = MicroBatcher(
            self.queue,
            self.workers.dispatch,
            window_s=c.batch_window_s,
            max_batch=c.max_batch,
            metrics=self.metrics,
        )
        self._inflight: Dict[str, List[PendingSolve]] = {}
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RadiationService":
        with self._lock:
            if self._stopped:
                raise ServiceError("service already stopped")
            if not self._started:
                self._started = True
                self.workers.start()
                self.batcher.start()
        return self

    def stop(self) -> None:
        """Drain and shut down: queued work completes, then workers exit."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        self.queue.close()
        if started:
            self.batcher.join(timeout=30.0)
            self.workers.stop(wait=True)
        # anything still registered never reached a worker
        with self._lock:
            leftovers = [p for group in self._inflight.values() for p in group]
            self._inflight.clear()
        for pending in leftovers:
            pending.handle.set_error(ServiceError("service stopped"))

    def __enter__(self) -> "RadiationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, spec: ProblemSpec, deadline_s: Optional[float] = None
    ) -> SolveHandle:
        """Submit one solve; returns immediately with a handle."""
        if self._stopped:
            raise ServiceError("service already stopped")
        self.start()
        request = SolveRequest(spec=spec, deadline_s=deadline_s)
        handle = SolveHandle(request)
        now = time.monotonic()
        pending = PendingSolve(
            handle=handle,
            submitted_at=now,
            abs_deadline=None if deadline_s is None else now + deadline_s,
        )
        self.metrics.counter("service.requests").inc()

        cached = self.cache.get(request.fingerprint)
        if cached is not None:
            self._finish(pending, cached, cache_hit=True)
            return handle

        if self.config.coalesce:
            with self._lock:
                group = self._inflight.get(request.fingerprint)
                if group is not None:
                    group.append(pending)
                    self.metrics.counter("service.coalesced").inc()
                    return handle
                self._inflight[request.fingerprint] = [pending]
        try:
            self.queue.put(pending, timeout=self.config.submit_timeout_s)
        except ServiceError:
            if self.config.coalesce:
                with self._lock:
                    self._inflight.pop(request.fingerprint, None)
            raise
        return handle

    # ------------------------------------------------------------------
    # worker sink protocol
    # ------------------------------------------------------------------
    def _pop_group(self, pending: PendingSolve) -> List[PendingSolve]:
        with self._lock:
            group = self._inflight.pop(pending.request.fingerprint, None)
        if group is None:
            group = [pending]
        elif pending not in group:  # pragma: no cover — defensive
            group.append(pending)
        return group

    def completed(
        self,
        pending: PendingSolve,
        payload: CachedSolve,
        attempts: int,
        batch_size: int,
        worker: int,
    ) -> None:
        self.cache.put(payload)
        now = time.monotonic()
        for i, member in enumerate(self._pop_group(pending)):
            if member.expired(now):
                self._expire_one(member)
                continue
            self._deliver(
                member,
                payload,
                cache_hit=False,
                coalesced=member.handle is not pending.handle,
                batch_size=batch_size,
                attempts=attempts,
                worker=worker,
            )

    def failed(self, pending: PendingSolve, error: ServiceError) -> None:
        for member in self._pop_group(pending):
            member.handle.set_error(error)
        self.metrics.counter("service.failed").inc()

    def expire(self, pending: PendingSolve) -> None:
        """A pending whose deadline passed before a worker reached it;
        its coalesced riders expire with it (same fingerprint, same
        solve that is not going to happen)."""
        for member in self._pop_group(pending):
            self._expire_one(member)

    def _expire_one(self, member: PendingSolve) -> None:
        self.metrics.counter("service.deadline.expired").inc()
        member.handle.set_error(
            ServiceError(
                f"request {member.request.request_id} deadline "
                f"({member.request.deadline_s}s) exceeded"
            )
        )

    def _finish(
        self, pending: PendingSolve, payload: CachedSolve, cache_hit: bool
    ) -> None:
        self._deliver(
            pending, payload, cache_hit=cache_hit, coalesced=False,
            batch_size=1, attempts=0, worker=-1,
        )

    def _deliver(
        self,
        member: PendingSolve,
        payload: CachedSolve,
        cache_hit: bool,
        coalesced: bool,
        batch_size: int,
        attempts: int,
        worker: int,
    ) -> None:
        latency = time.monotonic() - member.submitted_at
        self.metrics.histogram("service.request.latency_s").observe(latency)
        self.metrics.counter("service.completed").inc()
        member.handle.set_result(
            SolveResult(
                request_id=member.request.request_id,
                fingerprint=payload.fingerprint,
                divq=payload.divq,
                rays_traced=payload.rays_traced,
                solve_time_s=payload.solve_time_s,
                cache_hit=cache_hit,
                coalesced=coalesced,
                batch_size=batch_size,
                attempts=attempts,
                worker=worker,
                latency_s=latency,
            )
        )

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Live serving counters (a convenience view of the registry)."""
        m = self.metrics
        with self._lock:
            inflight = sum(len(g) for g in self._inflight.values())
        return {
            "requests": m.value("service.requests"),
            "completed": m.value("service.completed"),
            "failed": m.value("service.failed"),
            "coalesced": m.value("service.coalesced"),
            "cache_hits_memory": m.value("service.cache.hits", tier="memory"),
            "cache_hits_disk": m.value("service.cache.hits", tier="disk"),
            "cache_misses": m.value("service.cache.misses"),
            "solves": m.total("service.worker.solves"),
            "retries": m.value("service.worker.retries"),
            "rejected": m.value("service.queue.rejected"),
            "expired": m.value("service.deadline.expired"),
            "queue_depth": len(self.queue),
            "inflight": inflight,
            "cache_entries": len(self.cache),
        }


class ServiceClient:
    """Synchronous library front end for a :class:`RadiationService`.

    Owns its service unless handed one; usable as a context manager::

        with ServiceClient(ServiceConfig(workers=4)) as client:
            result = client.solve("problem.ups")
    """

    def __init__(
        self,
        service_or_config: Union[RadiationService, ServiceConfig, None] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if isinstance(service_or_config, RadiationService):
            self.service = service_or_config
            self._owns_service = False
        else:
            self.service = RadiationService(
                service_or_config, metrics=metrics, tracer=tracer
            )
            self._owns_service = True

    @staticmethod
    def _to_spec(source: Union[ProblemSpec, str]) -> ProblemSpec:
        return source if isinstance(source, ProblemSpec) else parse_ups(source)

    def submit(
        self, source: Union[ProblemSpec, str], deadline_s: Optional[float] = None
    ) -> SolveHandle:
        return self.service.submit(self._to_spec(source), deadline_s=deadline_s)

    def solve(
        self,
        source: Union[ProblemSpec, str],
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> SolveResult:
        """Submit one solve and block for its result."""
        return self.submit(source, deadline_s=deadline_s).result(timeout)

    def solve_many(
        self,
        sources,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> List[SolveResult]:
        """Submit a burst (all before waiting), then collect in order."""
        handles = [self.submit(s, deadline_s=deadline_s) for s in sources]
        return [h.result(timeout) for h in handles]

    def close(self) -> None:
        if self._owns_service:
            self.service.stop()

    def __enter__(self) -> "ServiceClient":
        self.service.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
