"""The radiation-solve service and its synchronous client.

:class:`RadiationService` treats radiation solves as a workload, the
way the paper treats patch tasks: requests are content-addressed by
spec fingerprint, collapse against the result cache and against
identical in-flight solves, coalesce into per-scene micro-batches, and
fan out across sharded workers — with bounded-queue backpressure at
the front door and retry-with-backoff behind it.

The request path, in order::

    submit(spec)
      -> cache probe        (hit: complete immediately, no queue trip)
      -> in-flight probe    (identical solve already queued: attach)
      -> bounded queue      (full past the timeout: ServiceError)
      -> micro-batcher      (coalescing window, group by scene)
      -> worker shard       (scene affinity, retries, thread/process)
      -> complete + cache   (every attached handle fans in)

Everything observable about the path lands in the PR 1 metrics
registry and tracer; see ``stats()`` for the live snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.perf import tracectx
from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.perf.slo import SloMonitor, SloPolicy
from repro.perf.tracer import SpanTracer, get_tracer
from repro.service.batcher import MicroBatcher
from repro.service.cache import ResultCache
from repro.service.journal import RequestJournal
from repro.service.queue import SubmissionQueue
from repro.service.schema import (
    CachedSolve,
    PendingSolve,
    SolveHandle,
    SolveRequest,
    SolveResult,
)
from repro.service.workers import WorkerPool
from repro.ups import ProblemSpec, parse_ups
from repro.util.errors import ServiceError


@dataclass
class ServiceConfig:
    """Tuning knobs of one service instance."""

    max_queue: int = 64            #: bounded-queue depth (backpressure point)
    workers: int = 2               #: worker shards
    backend: str = "thread"        #: "thread" or "process" solve execution
    batch_window_s: float = 0.005  #: micro-batch coalescing window
    max_batch: int = 16            #: requests per batch, max
    cache_capacity: int = 128      #: in-memory LRU entries (0 = no cache)
    cache_dir: Optional[str] = None  #: optional on-disk cache tier
    coalesce: bool = True          #: attach duplicates to in-flight solves
    max_retries: int = 2           #: solve retries beyond the first attempt
    retry_backoff_s: float = 0.01  #: base of the exponential retry backoff
    shard_queue_depth: int = 4     #: batches buffered per worker shard
    submit_timeout_s: float = 30.0  #: how long submit blocks on a full queue
    #: test/fault-injection hook: called as ``fault_hook(fingerprint,
    #: attempt)`` before every solve attempt; raising fails the attempt
    fault_hook: Optional[Callable[[str, int], None]] = None
    #: declarative fault injection (a repro.resilience.FaultPlan): its
    #: solve faults become a fault hook, its worker deaths disable
    #: shards so dispatch routes to survivors
    fault_plan: Optional[object] = None
    #: write-ahead request journal directory; accepted-but-unfinished
    #: solves are replayed by recover_journal() after a crash
    journal_dir: Optional[str] = None
    #: SLO thresholds; when set, a degraded service (breached p99 /
    #: queue depth / error-budget burn) sheds new submissions at the
    #: front door until the breach clears. None = observe only.
    slo_policy: Optional[SloPolicy] = None


class RadiationService:
    """A batching, caching solve service over the existing solvers."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.tracer = tracer if tracer is not None else get_tracer()
        c = self.config
        self.cache = ResultCache(
            capacity=c.cache_capacity, directory=c.cache_dir, metrics=self.metrics
        )
        self.journal = (
            RequestJournal(c.journal_dir, metrics=self.metrics)
            if c.journal_dir is not None
            else None
        )
        self.queue = SubmissionQueue(maxsize=c.max_queue, metrics=self.metrics)
        self.workers = WorkerPool(
            c.workers,
            sink=self,
            backend=c.backend,
            max_retries=c.max_retries,
            retry_backoff_s=c.retry_backoff_s,
            fault_hook=self._effective_fault_hook(),
            fault_plan=c.fault_plan,
            shard_queue_depth=c.shard_queue_depth,
            metrics=self.metrics,
            tracer=self.tracer,
        )
        self.batcher = MicroBatcher(
            self.queue,
            self.workers.dispatch,
            window_s=c.batch_window_s,
            max_batch=c.max_batch,
            metrics=self.metrics,
        )
        self._inflight: Dict[str, List[PendingSolve]] = {}
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        #: streaming SLO monitor — always observing; only *enforcing*
        #: (load shedding) when a policy was configured explicitly
        self.slo = SloMonitor(c.slo_policy)
        self._slo_enforced = c.slo_policy is not None

    def _effective_fault_hook(self):
        """Combine the explicit hook with the fault plan's solve faults
        (explicit hook first, so tests can observe every attempt)."""
        c = self.config
        plan_hook = (
            c.fault_plan.service_hook() if c.fault_plan is not None else None
        )
        if c.fault_hook is None or plan_hook is None:
            return c.fault_hook or plan_hook
        explicit = c.fault_hook

        def chained(fingerprint: str, attempt: int) -> None:
            explicit(fingerprint, attempt)
            plan_hook(fingerprint, attempt)

        return chained

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "RadiationService":
        with self._lock:
            if self._stopped:
                raise ServiceError("service already stopped")
            if not self._started:
                self._started = True
                self.workers.start()
                self.batcher.start()
        return self

    def stop(self) -> None:
        """Drain and shut down: queued work completes, then workers exit."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            started = self._started
        self.queue.close()
        if started:
            self.batcher.join(timeout=30.0)
            self.workers.stop(wait=True)
        # anything still registered never reached a worker
        with self._lock:
            leftovers = [p for group in self._inflight.values() for p in group]
            self._inflight.clear()
        for pending in leftovers:
            pending.handle.set_error(ServiceError("service stopped"))

    def __enter__(self) -> "RadiationService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self, spec: ProblemSpec, deadline_s: Optional[float] = None
    ) -> SolveHandle:
        """Submit one solve; returns immediately with a handle."""
        if self._stopped:
            raise ServiceError("service already stopped")
        self.start()
        self.slo.set_queue_depth(len(self.queue))
        if self._slo_enforced and self.slo.degraded():
            # shed at the front door: reject before any state is
            # created, the same contract as queue backpressure
            self.metrics.counter("service.shed").inc()
            self.slo.observe("submit", 0.0, error=True)
            raise ServiceError(
                "service degraded, shedding load: "
                + "; ".join(self.slo.breaches())
            )
        request = SolveRequest(spec=spec, deadline_s=deadline_s)
        handle = SolveHandle(request)
        now = time.monotonic()
        pending = PendingSolve(
            handle=handle,
            submitted_at=now,
            abs_deadline=None if deadline_s is None else now + deadline_s,
        )
        self.metrics.counter("service.requests").inc()
        # milestone markers along the request path, all inside the
        # request's causal trace — the merged timeline shows submit →
        # (cache|coalesce|queue) → solve → deliver as one chain
        with tracectx.use(request.ctx):
            self.tracer.instant(
                "service.submit", cat="service", fingerprint=request.fingerprint[:12]
            )

        cached = self.cache.get(request.fingerprint)
        if cached is not None:
            if self.journal is not None:
                # a replayed journal entry whose result already landed
                # on disk settles right here
                self.journal.forget(request.fingerprint)
            with tracectx.use(request.ctx):
                self.tracer.instant("service.cache_hit", cat="service")
            self._finish(pending, cached, cache_hit=True)
            return handle

        if self.config.coalesce:
            with self._lock:
                group = self._inflight.get(request.fingerprint)
                if group is not None:
                    group.append(pending)
                    self.metrics.counter("service.coalesced").inc()
                    with tracectx.use(request.ctx):
                        self.tracer.instant("service.coalesced", cat="service")
                    return handle
                self._inflight[request.fingerprint] = [pending]
        # journal before the queue: once accepted, a crash must not
        # lose the promise (the reject path below rolls this back)
        if self.journal is not None:
            self.journal.record(request.fingerprint, spec)
        try:
            self.queue.put(pending, timeout=self.config.submit_timeout_s)
        except ServiceError:
            if self.config.coalesce:
                with self._lock:
                    self._inflight.pop(request.fingerprint, None)
            if self.journal is not None:
                self.journal.forget(request.fingerprint)
            self.slo.observe("submit", 0.0, error=True)
            raise
        self.slo.set_queue_depth(len(self.queue))
        return handle

    # ------------------------------------------------------------------
    # worker sink protocol
    # ------------------------------------------------------------------
    def _pop_group(self, pending: PendingSolve) -> List[PendingSolve]:
        with self._lock:
            group = self._inflight.pop(pending.request.fingerprint, None)
        if group is None:
            group = [pending]
        elif pending not in group:  # pragma: no cover — defensive
            group.append(pending)
        return group

    def completed(
        self,
        pending: PendingSolve,
        payload: CachedSolve,
        attempts: int,
        batch_size: int,
        worker: int,
    ) -> None:
        self.cache.put(payload)
        if self.journal is not None:
            self.journal.forget(payload.fingerprint)
        now = time.monotonic()
        for i, member in enumerate(self._pop_group(pending)):
            if member.expired(now):
                self._expire_one(member)
                continue
            self._deliver(
                member,
                payload,
                cache_hit=False,
                coalesced=member.handle is not pending.handle,
                batch_size=batch_size,
                attempts=attempts,
                worker=worker,
            )

    def failed(self, pending: PendingSolve, error: ServiceError) -> None:
        if self.journal is not None:
            self.journal.forget(pending.request.fingerprint)
        for member in self._pop_group(pending):
            member.handle.set_error(error)
            self.slo.observe("solve", 0.0, error=True)
        self.metrics.counter("service.failed").inc()

    def expire(self, pending: PendingSolve) -> None:
        """A pending whose deadline passed before a worker reached it;
        its coalesced riders expire with it (same fingerprint, same
        solve that is not going to happen)."""
        if self.journal is not None:
            self.journal.forget(pending.request.fingerprint)
        for member in self._pop_group(pending):
            self._expire_one(member)

    def _expire_one(self, member: PendingSolve) -> None:
        self.metrics.counter("service.deadline.expired").inc()
        self.slo.observe("solve", 0.0, error=True)
        member.handle.set_error(
            ServiceError(
                f"request {member.request.request_id} deadline "
                f"({member.request.deadline_s}s) exceeded"
            )
        )

    def _finish(
        self, pending: PendingSolve, payload: CachedSolve, cache_hit: bool
    ) -> None:
        self._deliver(
            pending, payload, cache_hit=cache_hit, coalesced=False,
            batch_size=1, attempts=0, worker=-1,
        )

    def _deliver(
        self,
        member: PendingSolve,
        payload: CachedSolve,
        cache_hit: bool,
        coalesced: bool,
        batch_size: int,
        attempts: int,
        worker: int,
    ) -> None:
        latency = time.monotonic() - member.submitted_at
        self.metrics.histogram("service.request.latency_s").observe(latency)
        self.metrics.counter("service.completed").inc()
        self.slo.observe("cache" if cache_hit else "solve", latency)
        self.slo.set_queue_depth(len(self.queue))
        with tracectx.use(member.request.ctx):
            self.tracer.instant(
                "service.deliver", cat="service",
                cache_hit=cache_hit, latency_ms=round(latency * 1e3, 3),
            )
        member.handle.set_result(
            SolveResult(
                request_id=member.request.request_id,
                fingerprint=payload.fingerprint,
                divq=payload.divq,
                rays_traced=payload.rays_traced,
                solve_time_s=payload.solve_time_s,
                cache_hit=cache_hit,
                coalesced=coalesced,
                batch_size=batch_size,
                attempts=attempts,
                worker=worker,
                latency_s=latency,
            )
        )

    # ------------------------------------------------------------------
    # warm restart (resilience layer)
    # ------------------------------------------------------------------
    def recover_journal(self) -> dict:
        """Warm-restart a journaled service: preload the disk cache,
        then re-submit every solve a previous incarnation accepted but
        never settled. Replays whose results already landed on disk
        complete straight from the cache; the rest re-enter the normal
        request path. Returns ``{"cache_preloaded", "replayed",
        "handles"}`` so callers can block on the replays."""
        if self.journal is None:
            raise ServiceError("service has no journal_dir configured")
        preloaded = self.cache.preload()
        specs = self.journal.outstanding()
        handles = [self.submit(spec) for spec in specs]
        if handles:
            self.metrics.counter("service.journal.replayed").inc(len(handles))
        return {
            "cache_preloaded": preloaded,
            "replayed": len(handles),
            "handles": handles,
        }

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Live serving counters (a convenience view of the registry)."""
        m = self.metrics
        with self._lock:
            inflight = sum(len(g) for g in self._inflight.values())
        return {
            "requests": m.value("service.requests"),
            "completed": m.value("service.completed"),
            "failed": m.value("service.failed"),
            "coalesced": m.value("service.coalesced"),
            "cache_hits_memory": m.value("service.cache.hits", tier="memory"),
            "cache_hits_disk": m.value("service.cache.hits", tier="disk"),
            "cache_misses": m.value("service.cache.misses"),
            "solves": m.total("service.worker.solves"),
            "retries": m.value("service.worker.retries"),
            "rejected": m.value("service.queue.rejected"),
            "expired": m.value("service.deadline.expired"),
            "queue_depth": len(self.queue),
            "inflight": inflight,
            "cache_entries": len(self.cache),
            "journaled": 0 if self.journal is None else len(self.journal),
            "shed": m.value("service.shed"),
            "degraded": self.slo.degraded(),
        }


class ServiceClient:
    """Synchronous library front end for a :class:`RadiationService`.

    Owns its service unless handed one; usable as a context manager::

        with ServiceClient(ServiceConfig(workers=4)) as client:
            result = client.solve("problem.ups")
    """

    def __init__(
        self,
        service_or_config: Union[RadiationService, ServiceConfig, None] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        if isinstance(service_or_config, RadiationService):
            self.service = service_or_config
            self._owns_service = False
        else:
            self.service = RadiationService(
                service_or_config, metrics=metrics, tracer=tracer
            )
            self._owns_service = True

    @staticmethod
    def _to_spec(source: Union[ProblemSpec, str]) -> ProblemSpec:
        return source if isinstance(source, ProblemSpec) else parse_ups(source)

    def submit(
        self, source: Union[ProblemSpec, str], deadline_s: Optional[float] = None
    ) -> SolveHandle:
        return self.service.submit(self._to_spec(source), deadline_s=deadline_s)

    def solve(
        self,
        source: Union[ProblemSpec, str],
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> SolveResult:
        """Submit one solve and block for its result."""
        return self.submit(source, deadline_s=deadline_s).result(timeout)

    def solve_many(
        self,
        sources,
        deadline_s: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> List[SolveResult]:
        """Submit a burst (all before waiting), then collect in order."""
        handles = [self.submit(s, deadline_s=deadline_s) for s in sources]
        return [h.result(timeout) for h in handles]

    def close(self) -> None:
        if self._owns_service:
            self.service.stop()

    def __enter__(self) -> "ServiceClient":
        self.service.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
