"""Solve-as-a-service: batching, caching, sharded radiation serving.

The paper amortizes shared state over many consumers — one
device-resident coarse-level copy serving every patch task, one
wait-free request pool serving every thread. This package applies the
same move at the process boundary: radiation solves become a
*workload*, served by an inference-style stack instead of one UPS file
per process invocation.

* :mod:`repro.service.schema`  — ``SolveRequest`` / ``SolveResult`` /
  ``SolveHandle``, content-addressed by the UPS spec fingerprint;
* :mod:`repro.service.queue`   — bounded submission queue
  (backpressure at the front door);
* :mod:`repro.service.batcher` — micro-batcher coalescing the stream
  into per-scene batches;
* :mod:`repro.service.cache`   — two-tier (LRU + disk)
  content-addressed result cache;
* :mod:`repro.service.workers` — sharded worker pool with thread and
  process backends, retry-with-backoff, fault-plan aware dispatch;
* :mod:`repro.service.journal` — write-ahead request journal backing
  warm restarts (``recover_journal``);
* :mod:`repro.service.service` — :class:`RadiationService` +
  :class:`ServiceClient`;
* :mod:`repro.service.cli`     — the ``python -m repro serve`` /
  ``submit`` commands.
"""

from repro.service.batcher import Batch, MicroBatcher
from repro.service.cache import ResultCache
from repro.service.journal import RequestJournal
from repro.service.queue import SubmissionQueue
from repro.service.schema import (
    CachedSolve,
    PendingSolve,
    SolveHandle,
    SolveRequest,
    SolveResult,
)
from repro.service.service import RadiationService, ServiceClient, ServiceConfig
from repro.service.workers import WorkerPool

__all__ = [
    "Batch",
    "CachedSolve",
    "MicroBatcher",
    "PendingSolve",
    "RadiationService",
    "RequestJournal",
    "ResultCache",
    "ServiceClient",
    "ServiceConfig",
    "SolveHandle",
    "SolveRequest",
    "SolveResult",
    "SubmissionQueue",
    "WorkerPool",
]
