"""Radiation physics: property fields, the Burns & Christon benchmark,
angular quadrature, and the discrete-ordinates baseline solver."""

from repro.radiation.constants import SIGMA_SB, T_UNIT_EMISSION
from repro.radiation.properties import RadiativeProperties
from repro.radiation.benchmark import (
    BurnsChristonBenchmark,
    burns_christon_abskg,
    MEDIUM_PROBLEM,
    LARGE_PROBLEM,
)
from repro.radiation.quadrature import Quadrature, sn_level_symmetric, product_quadrature
from repro.radiation.dom import DiscreteOrdinates, dom_reference_divq
from repro.radiation.analysis import (
    ConvergenceStudy,
    max_error,
    monte_carlo_convergence,
    relative_l2_error,
    rms_error,
    symmetry_deviation,
)
from repro.radiation.spectral import (
    COMBUSTION_3_BAND,
    GREY,
    EnclosureScenario,
    PlanckTable,
    SpectralBand,
    SpectralModel,
    SpectralRMCRT,
    SpectralTracer,
    TabulatedEmissivity,
    band_properties,
    validate_bands,
)

__all__ = [
    "ConvergenceStudy",
    "max_error",
    "monte_carlo_convergence",
    "relative_l2_error",
    "rms_error",
    "symmetry_deviation",
    "COMBUSTION_3_BAND",
    "GREY",
    "EnclosureScenario",
    "PlanckTable",
    "SpectralBand",
    "SpectralModel",
    "SpectralRMCRT",
    "SpectralTracer",
    "TabulatedEmissivity",
    "band_properties",
    "validate_bands",
    "SIGMA_SB",
    "T_UNIT_EMISSION",
    "RadiativeProperties",
    "BurnsChristonBenchmark",
    "burns_christon_abskg",
    "MEDIUM_PROBLEM",
    "LARGE_PROBLEM",
    "Quadrature",
    "sn_level_symmetric",
    "product_quadrature",
    "DiscreteOrdinates",
    "dom_reference_divq",
]
