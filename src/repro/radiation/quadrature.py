"""Angular quadrature sets for the discrete-ordinates baseline.

Two families:

* **Level-symmetric S_N** (S2, S4) — the classic DOM sets: octant
  symmetry, equal weights for these low orders. These match what the
  ARCHES DOM solver the paper compares against uses at production
  orders.
* **Product quadrature** — Gauss-Legendre in the polar cosine times
  uniform azimuthal: arbitrary accuracy, used where high-order angular
  resolution is needed (e.g. generating reference solutions).

Every set satisfies the zeroth and first moment identities
``sum(w) = 4*pi`` and ``sum(w * s) = 0`` exactly (to roundoff), which
the tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ReproError


@dataclass(frozen=True)
class Quadrature:
    """Directions (n, 3 unit vectors) and weights (n,) on the sphere."""

    directions: np.ndarray
    weights: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        d = np.asarray(self.directions, dtype=np.float64)
        w = np.asarray(self.weights, dtype=np.float64)
        if d.ndim != 2 or d.shape[1] != 3 or w.shape != (d.shape[0],):
            raise ReproError(
                f"directions {d.shape} / weights {w.shape} mismatch"
            )
        object.__setattr__(self, "directions", d)
        object.__setattr__(self, "weights", w)

    @property
    def num_ordinates(self) -> int:
        return self.directions.shape[0]

    def check_moments(self, atol: float = 1e-10) -> bool:
        """Zeroth moment = 4*pi, first moment = 0 (vector)."""
        ok0 = abs(self.weights.sum() - 4 * np.pi) < atol
        ok1 = np.allclose(self.weights @ self.directions, 0.0, atol=atol)
        return bool(ok0 and ok1)


def _octant_expand(mu_triples: np.ndarray, weights: np.ndarray) -> Quadrature:
    """Expand first-octant (mu, eta, xi) points over all 8 octants."""
    dirs = []
    w = []
    for sx in (1, -1):
        for sy in (1, -1):
            for sz in (1, -1):
                for (mx, my, mz), wt in zip(mu_triples, weights):
                    dirs.append((sx * mx, sy * my, sz * mz))
                    w.append(wt)
    return Quadrature(np.array(dirs), np.array(w))


def sn_level_symmetric(order: int) -> Quadrature:
    """Level-symmetric S_N set for order 2 or 4.

    S2: one ordinate per octant at mu = 1/sqrt(3), weight pi/2.
    S4: three ordinates per octant built from mu1 = 0.3500212 and
    mu2 = sqrt(1 - 2*mu1^2), all equal weight pi/6.
    """
    if order == 2:
        m = 1.0 / np.sqrt(3.0)
        q = _octant_expand(np.array([[m, m, m]]), np.array([np.pi / 2]))
    elif order == 4:
        mu1 = 0.3500212
        mu2 = np.sqrt(1.0 - 2.0 * mu1 ** 2)
        pts = np.array([[mu2, mu1, mu1], [mu1, mu2, mu1], [mu1, mu1, mu2]])
        q = _octant_expand(pts, np.full(3, np.pi / 6))
    else:
        raise ReproError(
            f"level-symmetric order {order} not tabulated (use 2 or 4, or "
            f"product_quadrature for higher angular resolution)"
        )
    return Quadrature(q.directions, q.weights, name=f"S{order}")


def product_quadrature(n_polar: int, n_azimuthal: int) -> Quadrature:
    """Gauss-Legendre (polar cosine) x uniform (azimuth) product set.

    Exact for spherical harmonics up to degree ``2*n_polar - 1`` in the
    polar direction; the uniform azimuthal rule is exact for all
    azimuthal modes below ``n_azimuthal``.
    """
    if n_polar < 1 or n_azimuthal < 1:
        raise ReproError("quadrature sizes must be positive")
    mu, wmu = np.polynomial.legendre.leggauss(n_polar)
    phi = (np.arange(n_azimuthal) + 0.5) * (2 * np.pi / n_azimuthal)
    wphi = 2 * np.pi / n_azimuthal
    sin_theta = np.sqrt(1.0 - mu ** 2)
    dirs = np.empty((n_polar * n_azimuthal, 3))
    w = np.empty(n_polar * n_azimuthal)
    k = 0
    for i in range(n_polar):
        for j in range(n_azimuthal):
            dirs[k] = (
                sin_theta[i] * np.cos(phi[j]),
                sin_theta[i] * np.sin(phi[j]),
                mu[i],
            )
            w[k] = wmu[i] * wphi
            k += 1
    return Quadrature(dirs, w, name=f"P{n_polar}x{n_azimuthal}")
