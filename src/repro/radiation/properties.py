"""Radiative property fields.

RMCRT needs exactly three cell-centred fields everywhere a ray can
march (paper Section III.B): the absorption coefficient ``abskg``
(kappa), the black-body emissive power ``sigma_t4`` (sigma*T^4), and
``cell_type``. This module bundles them, including the one-cell wall
ring the marching kernels index directly, and provides the projection
of the bundle onto coarser radiation levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.grid.box import Box
from repro.grid.celltype import domain_cell_types
from repro.grid.refinement import coarsen_average, coarsen_max
from repro.radiation.constants import SIGMA_SB
from repro.util.errors import GridError


@dataclass
class RadiativeProperties:
    """Property bundle for one level.

    Arrays are shaped ``interior.grow(1).extent`` — interior cells plus
    the wall ring — and anchored at ``interior.lo - 1``. Wall-ring
    values of ``sigma_t4`` are the *wall* emissive powers; wall-ring
    ``abskg`` holds the wall emissivity (Uintah stores wall emissivity
    in abskg's boundary cells for the ray-hit accumulation).
    """

    interior: Box
    abskg: np.ndarray
    sigma_t4: np.ndarray
    cell_type: np.ndarray

    def __post_init__(self) -> None:
        expected = self.interior.grow(1).extent
        for name in ("abskg", "sigma_t4", "cell_type"):
            arr = getattr(self, name)
            if tuple(arr.shape) != expected:
                raise GridError(
                    f"{name} shape {arr.shape} != interior+ring {expected}"
                )

    @property
    def origin(self):
        """Index of array element [0,0,0]."""
        return self.interior.grow(1).lo

    @property
    def num_interior_cells(self) -> int:
        return self.interior.volume

    def interior_view(self, name: str) -> np.ndarray:
        """View of a field restricted to interior cells."""
        return getattr(self, name)[self.interior.slices(origin=self.origin)]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_fields(
        interior: Box,
        abskg: np.ndarray,
        temperature: Optional[np.ndarray] = None,
        sigma_t4: Optional[np.ndarray] = None,
        wall_temperature: float = 0.0,
        wall_emissivity: float = 1.0,
        cell_type: Optional[np.ndarray] = None,
    ) -> "RadiativeProperties":
        """Build the bundle from interior-shaped fields.

        Exactly one of ``temperature`` / ``sigma_t4`` must be given;
        the wall ring is synthesized from the scalar wall properties.
        """
        if (temperature is None) == (sigma_t4 is None):
            raise GridError("pass exactly one of temperature / sigma_t4")
        if tuple(abskg.shape) != interior.extent:
            raise GridError(f"abskg shape {abskg.shape} != interior {interior.extent}")
        if sigma_t4 is None:
            sigma_t4 = SIGMA_SB * np.asarray(temperature, dtype=np.float64) ** 4
        if tuple(sigma_t4.shape) != interior.extent:
            raise GridError(
                f"sigma_t4 shape {sigma_t4.shape} != interior {interior.extent}"
            )

        outer = interior.grow(1)
        inner_sl = interior.slices(origin=outer.lo)

        full_abskg = np.full(outer.extent, float(wall_emissivity), dtype=np.float64)
        full_abskg[inner_sl] = abskg
        wall_st4 = SIGMA_SB * float(wall_temperature) ** 4
        full_st4 = np.full(outer.extent, wall_st4, dtype=np.float64)
        full_st4[inner_sl] = sigma_t4

        if cell_type is None:
            full_ct = domain_cell_types(interior)
        else:
            if tuple(cell_type.shape) == interior.extent:
                full_ct = domain_cell_types(interior)
                full_ct[inner_sl] = cell_type
            elif tuple(cell_type.shape) == outer.extent:
                full_ct = np.asarray(cell_type, dtype=np.int8)
            else:
                raise GridError(
                    f"cell_type shape {cell_type.shape} matches neither interior "
                    f"{interior.extent} nor interior+ring {outer.extent}"
                )
        return RadiativeProperties(interior, full_abskg, full_st4, full_ct)

    # ------------------------------------------------------------------
    # multi-level projection
    # ------------------------------------------------------------------
    def coarsen(self, ratio: int) -> "RadiativeProperties":
        """Project the bundle to a level coarser by ``ratio``.

        Interior fields restrict conservatively (mean for abskg and
        sigma_t4, max for cell_type so walls/intrusions stay opaque);
        the wall ring is rebuilt at coarse resolution with the mean
        wall properties of the corresponding fine wall faces.
        """
        if ratio < 1:
            raise GridError(f"ratio must be >= 1, got {ratio}")
        for d in range(3):
            if self.interior.extent[d] % ratio != 0:
                raise GridError(
                    f"interior extent {self.interior.extent} not divisible by {ratio}"
                )
        inner_sl = self.interior.slices(origin=self.origin)
        c_abskg = coarsen_average(self.abskg[inner_sl], ratio)
        c_st4 = coarsen_average(self.sigma_t4[inner_sl], ratio)
        c_ct = coarsen_max(self.cell_type[inner_sl], ratio)
        c_interior = self.interior.coarsen(ratio)

        out = RadiativeProperties.from_fields(
            c_interior,
            abskg=c_abskg,
            sigma_t4=c_st4,
            cell_type=c_ct.astype(np.int8),
        )
        # rebuild the wall ring as the face-mean of the fine ring so
        # non-uniform wall temperatures project correctly
        self._project_wall_ring(out, ratio)
        return out

    def _project_wall_ring(self, coarse: "RadiativeProperties", ratio: int) -> None:
        fine_outer = self.interior.grow(1)
        for axis in range(3):
            for side in (0, -1):
                f_sl = [slice(1, -1)] * 3
                f_sl[axis] = side
                c_sl = [slice(1, -1)] * 3
                c_sl[axis] = side
                for name in ("abskg", "sigma_t4"):
                    fine_face = getattr(self, name)[tuple(f_sl)]
                    ny, nz = fine_face.shape
                    blocks = fine_face.reshape(ny // ratio, ratio, nz // ratio, ratio)
                    getattr(coarse, name)[tuple(c_sl)] = blocks.mean(axis=(1, 3))
        _ = fine_outer  # documented intent; ring corners keep defaults

    def as_dict(self) -> Dict[str, np.ndarray]:
        return {
            "abskg": self.abskg,
            "sigma_t4": self.sigma_t4,
            "cell_type": self.cell_type,
        }

    @property
    def nbytes(self) -> int:
        """Total memory footprint — what the GPU DataWarehouse budgets."""
        return self.abskg.nbytes + self.sigma_t4.nbytes + self.cell_type.nbytes
