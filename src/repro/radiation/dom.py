"""Discrete ordinates (S_N) solver — the baseline RMCRT replaces.

The paper's ARCHES component historically computed the radiative source
with a parallel DOM solver (Krishnamoorthy et al., paper ref [4]); DOM
is also the method whose cost and false-scattering artifacts motivate
RMCRT (Section III.A). This is a single-level, non-scattering S_N
solver using the standard first-order upwind ("step") finite-volume
sweep, vectorized over wavefront hyperplanes so each ordinate's sweep
is a sequence of fully-vectorized plane updates rather than a Python
triple loop.

For an absorbing/emitting (non-scattering) grey medium the RTE per
ordinate m reduces to

    s_m . grad I_m + kappa I_m = kappa * sigma_t4 / pi

after which G = sum_m w_m I_m and  del.q = kappa (4 sigma_t4 - G).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.radiation.properties import RadiativeProperties
from repro.radiation.quadrature import Quadrature, product_quadrature, sn_level_symmetric
from repro.util.errors import ReproError


@lru_cache(maxsize=16)
def _hyperplanes(shape: Tuple[int, int, int]):
    """Per-plane index arrays: cells with i+j+k == p, for p ascending.

    Cached per grid shape; each entry is (ii, jj, kk) int arrays.
    """
    nx, ny, nz = shape
    i, j, k = np.indices(shape)
    plane = (i + j + k).ravel()
    order = np.argsort(plane, kind="stable")
    ii, jj, kk = i.ravel()[order], j.ravel()[order], k.ravel()[order]
    bounds = np.searchsorted(plane[order], np.arange(nx + ny + nz - 1))
    bounds = np.append(bounds, plane.size)
    return [
        (ii[bounds[p]: bounds[p + 1]], jj[bounds[p]: bounds[p + 1]], kk[bounds[p]: bounds[p + 1]])
        for p in range(nx + ny + nz - 2)
    ]


def _sweep_ordinate(
    direction: np.ndarray,
    kappa: np.ndarray,
    source: np.ndarray,
    inflow: Tuple[np.ndarray, np.ndarray, np.ndarray],
    dx: Tuple[float, float, float],
) -> np.ndarray:
    """Upwind sweep for one all-positive-octant direction.

    ``inflow`` holds the three upstream boundary-face intensity planes
    (shapes (ny,nz), (nx,nz), (nx,ny)). Arrays are already flipped so
    the sweep always runs low-to-high on every axis.
    """
    nx, ny, nz = kappa.shape
    ax = abs(direction[0]) / dx[0]
    ay = abs(direction[1]) / dx[1]
    az = abs(direction[2]) / dx[2]

    ipad = np.zeros((nx + 1, ny + 1, nz + 1))
    ipad[0, 1:, 1:] = inflow[0]
    ipad[1:, 0, 1:] = inflow[1]
    ipad[1:, 1:, 0] = inflow[2]

    for ii, jj, kk in _hyperplanes((nx, ny, nz)):
        upx = ipad[ii, jj + 1, kk + 1]
        upy = ipad[ii + 1, jj, kk + 1]
        upz = ipad[ii + 1, jj + 1, kk]
        kap = kappa[ii, jj, kk]
        num = ax * upx + ay * upy + az * upz + kap * source[ii, jj, kk]
        ipad[ii + 1, jj + 1, kk + 1] = num / (ax + ay + az + kap)
    return ipad[1:, 1:, 1:]


class DiscreteOrdinates:
    """Single-level S_N solver over a :class:`RadiativeProperties` bundle."""

    def __init__(
        self,
        quadrature: Optional[Quadrature] = None,
        sn_order: int = 4,
    ) -> None:
        if quadrature is None:
            quadrature = sn_level_symmetric(sn_order)
        if not quadrature.check_moments(atol=1e-6):
            raise ReproError(f"quadrature {quadrature.name!r} fails moment checks")
        self.quadrature = quadrature

    def solve(
        self,
        props: RadiativeProperties,
        dx: Tuple[float, float, float],
    ) -> np.ndarray:
        """Compute del.q on the interior cells.

        Non-scattering grey medium; intrusion cells are not supported by
        this baseline (matching its role as the pre-RMCRT comparator on
        the open-box benchmark).
        """
        inner_sl = props.interior.slices(origin=props.origin)
        kappa = props.abskg[inner_sl]
        st4 = props.sigma_t4[inner_sl]
        source = st4 / np.pi
        incident = np.zeros_like(kappa)  # G = integral of I over 4pi

        ring_st4 = props.sigma_t4
        for s, w in zip(self.quadrature.directions, self.quadrature.weights):
            flips = tuple(slice(None, None, -1) if s[d] < 0 else slice(None) for d in range(3))
            k_f = kappa[flips]
            src_f = source[flips]
            ring_f = ring_st4[tuple(
                slice(None, None, -1) if s[d] < 0 else slice(None) for d in range(3)
            )]
            inflow = (
                ring_f[0, 1:-1, 1:-1] / np.pi,
                ring_f[1:-1, 0, 1:-1] / np.pi,
                ring_f[1:-1, 1:-1, 0] / np.pi,
            )
            i_f = _sweep_ordinate(s, k_f, src_f, inflow, dx)
            incident += w * i_f[flips]

        return kappa * (4.0 * st4 - incident)


def dom_reference_divq(
    props: RadiativeProperties,
    dx: Tuple[float, float, float],
    n_polar: int = 8,
    n_azimuthal: int = 16,
) -> np.ndarray:
    """High-order product-quadrature DOM solve, used as a smooth
    deterministic reference for Monte Carlo validation."""
    solver = DiscreteOrdinates(product_quadrature(n_polar, n_azimuthal))
    return solver.solve(props, dx)
