"""Verification/analysis helpers for radiation solutions.

The tools the accuracy studies (paper §III.C via ref [3], our E4) are
built from: error norms against a reference, Monte Carlo convergence
order fitting, and the symmetry checks the Burns & Christon geometry
implies. Lifted into the library so downstream verification studies
don't re-implement them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ReproError


def rms_error(field: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square pointwise error."""
    f, r = np.asarray(field), np.asarray(reference)
    if f.shape != r.shape:
        raise ReproError(f"shape mismatch {f.shape} vs {r.shape}")
    return float(np.sqrt(np.mean((f - r) ** 2)))


def relative_l2_error(field: np.ndarray, reference: np.ndarray) -> float:
    """||f - r||_2 / ||r||_2."""
    f, r = np.asarray(field), np.asarray(reference)
    if f.shape != r.shape:
        raise ReproError(f"shape mismatch {f.shape} vs {r.shape}")
    denom = float(np.linalg.norm(r))
    if denom == 0:
        raise ReproError("reference field is identically zero")
    return float(np.linalg.norm(f - r)) / denom


def max_error(field: np.ndarray, reference: np.ndarray) -> float:
    f, r = np.asarray(field), np.asarray(reference)
    if f.shape != r.shape:
        raise ReproError(f"shape mismatch {f.shape} vs {r.shape}")
    return float(np.abs(f - r).max())


@dataclass
class ConvergenceStudy:
    """Error vs a work parameter (rays/cell, resolution, ordinates).

    ``order`` is the fitted log-log slope; for Monte Carlo ray counts
    the expected value is -1/2, for second-order spatial schemes vs
    resolution it is -2, etc.
    """

    parameters: List[float]
    errors: List[float]

    def __post_init__(self) -> None:
        if len(self.parameters) != len(self.errors) or len(self.errors) < 2:
            raise ReproError("need >= 2 matching (parameter, error) pairs")
        if any(p <= 0 for p in self.parameters) or any(e <= 0 for e in self.errors):
            raise ReproError("parameters and errors must be positive for a "
                             "log-log fit")

    @property
    def order(self) -> float:
        return float(
            np.polyfit(np.log(self.parameters), np.log(self.errors), 1)[0]
        )

    @property
    def monotone_decreasing(self) -> bool:
        return all(b < a for a, b in zip(self.errors, self.errors[1:]))

    def matches_order(self, expected: float, tol: float = 0.25) -> bool:
        return abs(self.order - expected) <= tol


def monte_carlo_convergence(
    solve: Callable[[int], np.ndarray],
    reference: np.ndarray,
    ray_counts: Sequence[int],
    norm: Callable[[np.ndarray, np.ndarray], float] = rms_error,
) -> ConvergenceStudy:
    """Run ``solve(rays)`` over ``ray_counts`` and fit the error decay."""
    if len(ray_counts) < 2:
        raise ReproError("need >= 2 ray counts")
    errors = [norm(solve(int(n)), reference) for n in ray_counts]
    return ConvergenceStudy(parameters=[float(n) for n in ray_counts], errors=errors)


def symmetry_deviation(field: np.ndarray) -> dict:
    """How far a cubic field deviates from the Burns & Christon
    symmetries: mirror in each axis and cyclic axis permutation.
    Values are relative L2 deviations (0 = exactly symmetric)."""
    f = np.asarray(field)
    if f.ndim != 3 or len(set(f.shape)) != 1:
        raise ReproError(f"expected a cubic field, got shape {f.shape}")
    norm = float(np.linalg.norm(f))
    if norm == 0:
        raise ReproError("field is identically zero")

    def dev(other):
        return float(np.linalg.norm(f - other)) / norm

    return {
        "mirror_x": dev(f[::-1, :, :]),
        "mirror_y": dev(f[:, ::-1, :]),
        "mirror_z": dev(f[:, :, ::-1]),
        "cyclic": dev(np.transpose(f, (1, 2, 0))),
    }
