"""The spectral transport model: what turns a gray scene spectral.

A :class:`SpectralModel` bundles the three wavelength-dependent pieces
the tracer needs:

* a :class:`~repro.radiation.spectral.planck.PlanckTable` — band
  structure and per-band emission weights (the sampling distribution);
* per-band **kappa scales** — the band absorption coefficient is
  ``kappa_scale[b] * kappa_gray``, i.e. the gray field carries the
  spatial shape and the model carries the spectral shape;
* a :class:`~repro.radiation.spectral.emissivity.TabulatedEmissivity`
  — band surface-emissivity multipliers, temperature-interpolated.

``gray_limit()`` builds the degenerate model (one band spanning the
spectrum, scale 1, identity emissivity) under which the spectral
tracer must reproduce the gray solver bit-for-bit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.radiation.spectral.emissivity import TabulatedEmissivity, named_emissivity
from repro.radiation.spectral.planck import PlanckTable
from repro.util.errors import ReproError


def kappa_scales_power_law(
    table: PlanckTable, exponent: float = 0.0, normalize: bool = True
) -> np.ndarray:
    """Per-band kappa scales from a wavelength power law.

    ``kappa_b = (lambda_b / lambda_peak)^exponent`` at the band's
    Planck-median wavelength, optionally normalised so the Planck-mean
    scale ``sum_b w_b * kappa_b`` is 1 — then the spectral medium has
    the *same* Planck-mean absorption as the gray one and gray-vs-
    spectral differences are pure redistribution, not a kappa rescale.

    ``exponent > 0`` makes long wavelengths optically thick (molecular
    gas bands); ``exponent < 0`` thickens the short end (soot-like).
    """
    lam = table.band_medians_um()
    lam_ref = float(np.exp(np.sum(np.asarray(table.weights) * np.log(lam))))
    scales = (lam / lam_ref) ** exponent
    if normalize:
        planck_mean = float(np.sum(np.asarray(table.weights) * scales))
        scales = scales / planck_mean
    return scales


@dataclass
class SpectralModel:
    """Band structure + per-band optics for one spectral solve."""

    table: PlanckTable
    kappa_scales: np.ndarray
    emissivity: TabulatedEmissivity
    name: str = "custom"
    #: Planck-mean kappa scale sum_b w_b s_b (1.0 for normalised models)
    planck_mean_scale: float = field(init=False)

    def __post_init__(self) -> None:
        self.kappa_scales = np.asarray(self.kappa_scales, dtype=np.float64)
        if self.kappa_scales.shape != (self.table.nbands,):
            raise ReproError(
                f"kappa scales shape {self.kappa_scales.shape} != "
                f"(nbands={self.table.nbands},)"
            )
        if np.any(self.kappa_scales < 0.0):
            raise ReproError("band kappa scales must be non-negative")
        if self.emissivity.nbands != self.table.nbands:
            raise ReproError(
                f"emissivity table has {self.emissivity.nbands} bands, "
                f"Planck table has {self.table.nbands}"
            )
        self.planck_mean_scale = float(
            np.sum(np.asarray(self.table.weights) * self.kappa_scales)
        )

    @property
    def nbands(self) -> int:
        return self.table.nbands

    @property
    def is_gray_limit(self) -> bool:
        """One full-spectrum band, unit kappa, identity emissivity —
        the configuration under which spectral == gray bit-for-bit."""
        return (
            self.nbands == 1
            and float(self.kappa_scales[0]) == 1.0
            and self.emissivity.is_gray
        )

    def digest(self) -> str:
        """SHA-256 identity of the model — folded into scene and spec
        fingerprints so spectral requests cache and route distinctly."""
        h = hashlib.sha256()
        h.update(
            json.dumps(
                {
                    "edges_um": [repr(e) for e in self.table.edges_um],
                    "temperature": repr(self.table.temperature),
                    "kappa_scales": [repr(float(s)) for s in self.kappa_scales],
                },
                sort_keys=True,
            ).encode()
        )
        h.update(self.emissivity.digest().encode())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def gray_limit(cls) -> "SpectralModel":
        table = PlanckTable.from_edges((0.0, np.inf), temperature=1000.0)
        return cls(
            table=table,
            kappa_scales=np.ones(1),
            emissivity=TabulatedEmissivity.gray(1),
            name="gray-limit",
        )

    @classmethod
    def build(
        cls,
        bands: int,
        temperature: float,
        band_edges_um: Optional[Sequence[float]] = None,
        kappa_exponent: float = 0.0,
        emissivity: str = "gray",
        name: Optional[str] = None,
    ) -> "SpectralModel":
        """The spec-facing factory: counts, edges, and names in; a
        fully-resolved model out. This is what ``ups.py`` calls, so a
        journaled spec rebuilds the identical model anywhere."""
        if band_edges_um is not None:
            edges = tuple(float(e) for e in band_edges_um)
            if len(edges) != bands + 1:
                raise ReproError(
                    f"{bands} bands need {bands + 1} edges, got {len(edges)}"
                )
            table = PlanckTable.from_edges(edges, temperature)
        else:
            table = PlanckTable.equal_fraction(bands, temperature)
        return cls(
            table=table,
            kappa_scales=kappa_scales_power_law(table, kappa_exponent),
            emissivity=named_emissivity(emissivity, table),
            name=name or f"{bands}-band/{emissivity}",
        )
