"""Spectral RMCRT: wavelength-sampled radiation physics.

Two tiers of spectral fidelity share this package:

* the legacy WSGG-style grey-band loop (:mod:`.bands`), which re-runs
  the grey machinery per band — kept API-compatible with the original
  ``repro.radiation.spectral`` module;
* the wavelength-*sampled* subsystem: Planck band sampling
  (:mod:`.planck`), tabulated surface emissivity (:mod:`.emissivity`),
  the per-ray spectral tracers (:mod:`.tracer`), the view-factor
  enclosure solver (:mod:`.viewfactor`), and the packaged scenarios
  (:mod:`.scenario`).
"""

from repro.radiation.spectral.bands import (
    COMBUSTION_3_BAND,
    GREY,
    SpectralBand,
    SpectralRMCRT,
    band_properties,
    validate_bands,
)
from repro.radiation.spectral.emissivity import (
    MATERIALS,
    TabulatedEmissivity,
    named_emissivity,
)
from repro.radiation.spectral.model import SpectralModel, kappa_scales_power_law
from repro.radiation.spectral.planck import (
    C2_UM_K,
    PlanckTable,
    default_band_edges,
    fraction_inverse,
    planck_fraction,
)
from repro.radiation.spectral.scenario import SCENARIOS, SpectralCase, get_scenario
from repro.radiation.spectral.tracer import (
    SPECTRAL_STREAM,
    SpectralResult,
    SpectralTracer,
    band_level_fields,
    spectral_divq_from_sums,
)
from repro.radiation.spectral.viewfactor import (
    EnclosureResult,
    EnclosureScenario,
    enforce_constraints,
    parallel_plates_view_factor,
    radiosity_solve,
    view_factor_matrix,
)

__all__ = [
    # WSGG band loop (legacy API)
    "COMBUSTION_3_BAND",
    "GREY",
    "SpectralBand",
    "SpectralRMCRT",
    "band_properties",
    "validate_bands",
    # Planck sampling
    "C2_UM_K",
    "PlanckTable",
    "default_band_edges",
    "fraction_inverse",
    "planck_fraction",
    # emissivity
    "MATERIALS",
    "TabulatedEmissivity",
    "named_emissivity",
    # model + tracer
    "SpectralModel",
    "kappa_scales_power_law",
    "SPECTRAL_STREAM",
    "SpectralResult",
    "SpectralTracer",
    "band_level_fields",
    "spectral_divq_from_sums",
    # scenarios + enclosure
    "SCENARIOS",
    "SpectralCase",
    "get_scenario",
    "EnclosureResult",
    "EnclosureScenario",
    "enforce_constraints",
    "parallel_plates_view_factor",
    "radiosity_solve",
    "view_factor_matrix",
]
