"""Packaged spectral radiation scenarios.

Named, fully-specified cases the CLI, tests, and EXPERIMENTS pages run
by name — each one pairs a scene (a Burns & Christon variant or a box
enclosure) with a :class:`SpectralModel`:

* ``gray-limit`` — the classic cold-black-wall Burns & Christon cube
  under the degenerate one-band model; the spectral tracer must
  reproduce the gray solver **bit-for-bit** here (CI smoke-checks it).
* ``combustion-3band`` — three equal-Planck bands with a wavelength
  power-law kappa (long wavelengths optically thick, the CO2/H2O
  shape); same scene, genuinely spectral transport.
* ``hot-wall-tungsten`` — hot gray-emissive walls with the tungsten
  emissivity table modulating them per band, the case where tabulated
  emissivity actually changes the answer (cold black walls make any
  table inert).
* ``enclosure`` — the surface-to-surface view-factor scenario (no
  participating medium): a unit-cube enclosure, one hot face, spectral
  ceramic walls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from repro.grid.grid import Grid
from repro.radiation.benchmark import BurnsChristonBenchmark
from repro.radiation.properties import RadiativeProperties
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.tracer import SpectralTracer
from repro.radiation.spectral.viewfactor import EnclosureScenario
from repro.util.errors import ReproError


@dataclass
class SpectralCase:
    """A volume-tracing spectral scenario: a Burns & Christon variant
    plus the spectral model to trace it under.

    ``wall_temperature``/``wall_emissivity`` override the benchmark's
    cold black walls — hot walls are what make emissivity tables (and
    the spectral wall treatment generally) observable.
    """

    name: str
    model: SpectralModel
    resolution: int = 16
    rays_per_cell: int = 16
    wall_temperature: float = 0.0
    wall_emissivity: float = 1.0
    threshold: float = 1e-4
    seed: int = 0

    def prepare(self) -> Tuple[Grid, RadiativeProperties]:
        bench = BurnsChristonBenchmark(resolution=self.resolution)
        grid = bench.single_level_grid()
        level = grid.finest_level
        props = RadiativeProperties.from_fields(
            level.domain_box,
            abskg=bench.abskg_field(level),
            sigma_t4=np.ones(level.domain_box.extent),
            wall_temperature=self.wall_temperature,
            wall_emissivity=self.wall_emissivity,
        )
        return grid, props

    def tracer(self, backend: str = "vectorized") -> SpectralTracer:
        return SpectralTracer(
            self.model,
            rays_per_cell=self.rays_per_cell,
            threshold=self.threshold,
            seed=self.seed,
            backend=backend,
        )

    def solve(self, backend: str = "vectorized"):
        grid, props = self.prepare()
        return self.tracer(backend).solve(grid, props)


def _gray_limit_case() -> SpectralCase:
    return SpectralCase(name="gray-limit", model=SpectralModel.gray_limit())


def _combustion_case() -> SpectralCase:
    return SpectralCase(
        name="combustion-3band",
        model=SpectralModel.build(
            bands=3, temperature=1400.0, kappa_exponent=0.8,
            name="combustion-3band",
        ),
    )


def _hot_wall_case() -> SpectralCase:
    return SpectralCase(
        name="hot-wall-tungsten",
        model=SpectralModel.build(
            bands=4, temperature=1200.0, kappa_exponent=0.4,
            emissivity="tungsten", name="hot-wall-tungsten",
        ),
        wall_temperature=0.6,   # benchmark units: sigma T^4 = 0.36 per band sum
        wall_emissivity=0.8,
    )


def _enclosure_case() -> EnclosureScenario:
    return EnclosureScenario(
        model=SpectralModel.build(
            bands=3, temperature=1200.0, emissivity="ceramic",
            name="enclosure-ceramic",
        ),
    )


#: scenario registry: name -> zero-arg factory. Factories (not
#: instances) so each lookup gets fresh, mutation-safe state.
SCENARIOS: Dict[str, Callable[[], object]] = {
    "gray-limit": _gray_limit_case,
    "combustion-3band": _combustion_case,
    "hot-wall-tungsten": _hot_wall_case,
    "enclosure": _enclosure_case,
}


def get_scenario(name: str):
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown spectral scenario {name!r}; "
            f"known: {', '.join(sorted(SCENARIOS))}"
        ) from None
    return factory()
