"""Surface-to-surface enclosure radiation: view factors + radiosity.

The optically-thin counterpart of the volume tracer: when the medium
between surfaces is transparent, radiative exchange is governed purely
by geometry (the view-factor matrix ``F``) and surface properties
(band emissivities). The machinery here:

* :func:`view_factor_matrix` — Monte Carlo view factors for the six
  faces of a rectangular box enclosure: uniform points on each face,
  cosine-weighted directions, exit-face counting. Drawn from seeded
  named streams (``streams.named("viewfactor", face)``) so the matrix
  is reproducible per seed.
* :func:`enforce_constraints` — projects the raw MC matrix onto the
  exact constraint set (reciprocity ``A_i F_ij = A_j F_ji`` and unit
  row sums) by alternating symmetrization and row normalisation; both
  then hold to round-off, which is what makes the radiosity solve
  conserve energy to round-off too.
* :func:`radiosity_solve` — the banded radiosity system
  ``(I - (1-eps_b) F) J_b = eps_b Eb_b`` per wavelength band, with
  band emissive powers from the Planck fraction function at each
  surface's own temperature.
* :class:`EnclosureScenario` — the packaged hot-wall box case.

The analytic oracle is :func:`parallel_plates_view_factor`, the
classical coaxial-rectangles formula (for the unit cube, opposite
faces see each other with F = 0.19982...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.perf import get_metrics, get_tracer
from repro.radiation.constants import SIGMA_SB
from repro.radiation.spectral.model import SpectralModel
from repro.radiation.spectral.planck import planck_fraction
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams

#: face index convention: 2*axis + side, side 0 at coordinate 0,
#: side 1 at coordinate L_axis
NFACES = 6


def face_areas(dims: Sequence[float]) -> np.ndarray:
    """(6,) face areas of an ``lx x ly x lz`` box, in face order."""
    lx, ly, lz = (float(d) for d in dims)
    per_axis = (ly * lz, lx * lz, lx * ly)
    return np.array([per_axis[f // 2] for f in range(NFACES)])


def parallel_plates_view_factor(a: float, b: float, c: float) -> float:
    """Analytic view factor between coaxial parallel ``a x b``
    rectangles separated by ``c`` (Modest, *Radiative Heat Transfer*,
    config 38). For the unit cube this is 0.1998...: the oracle the
    Monte Carlo matrix is validated against."""
    x, y = a / c, b / c
    x2, y2 = x * x, y * y
    rx, ry = math.sqrt(1.0 + x2), math.sqrt(1.0 + y2)
    term = (
        0.5 * math.log((1.0 + x2) * (1.0 + y2) / (1.0 + x2 + y2))
        + x * ry * math.atan(x / ry)
        + y * rx * math.atan(y / rx)
        - x * math.atan(x)
        - y * math.atan(y)
    )
    return 2.0 / (math.pi * x * y) * term


def _sample_face(
    rng: np.random.Generator, dims: Sequence[float], face: int, n: int
) -> Tuple[np.ndarray, np.ndarray]:
    """(points, directions) for ``n`` cosine-weighted rays leaving a
    face: points uniform over the face, directions cosine-distributed
    about the inward normal (the diffuse-surface emission law)."""
    axis, side = face // 2, face % 2
    t_axes = [k for k in range(3) if k != axis]
    pts = np.empty((n, 3))
    pts[:, axis] = float(dims[axis]) if side else 0.0
    pts[:, t_axes[0]] = rng.random(n) * float(dims[t_axes[0]])
    pts[:, t_axes[1]] = rng.random(n) * float(dims[t_axes[1]])

    u1 = rng.random(n)
    u2 = rng.random(n)
    sin_t = np.sqrt(u1)                     # cosine-weighted: sin^2 = u1
    cos_t = np.sqrt(1.0 - u1)
    phi = 2.0 * np.pi * u2
    dirs = np.empty((n, 3))
    dirs[:, axis] = cos_t if side == 0 else -cos_t   # inward normal
    dirs[:, t_axes[0]] = sin_t * np.cos(phi)
    dirs[:, t_axes[1]] = sin_t * np.sin(phi)
    return pts, dirs


def _exit_faces(
    pts: np.ndarray, dirs: np.ndarray, dims: Sequence[float]
) -> np.ndarray:
    """The face each interior ray exits through — nearest boundary
    plane along the direction (the box is convex, so exactly one)."""
    n = pts.shape[0]
    t = np.full((n, 3), np.inf)
    for k in range(3):
        d = dirs[:, k]
        fwd = d > 0.0
        bwd = d < 0.0
        t[fwd, k] = (float(dims[k]) - pts[fwd, k]) / d[fwd]
        t[bwd, k] = -pts[bwd, k] / d[bwd]
    hit_axis = np.argmin(t, axis=1)
    hit_side = (dirs[np.arange(n), hit_axis] > 0.0).astype(np.int64)
    return 2 * hit_axis + hit_side


def view_factor_matrix(
    dims: Sequence[float],
    samples_per_face: int = 20000,
    streams: Optional[RandomStreams] = None,
    seed: int = 0,
) -> np.ndarray:
    """Raw Monte Carlo view-factor matrix (6, 6) for a box enclosure.

    Rows sum to 1 exactly (every ray exits somewhere); reciprocity
    holds only to MC accuracy — run :func:`enforce_constraints` before
    a radiosity solve.
    """
    if samples_per_face < 1:
        raise ReproError(f"need >= 1 sample per face, got {samples_per_face}")
    if len(dims) != 3 or any(float(d) <= 0.0 for d in dims):
        raise ReproError(f"enclosure dims must be 3 positive lengths: {dims}")
    if streams is None:
        streams = RandomStreams(seed)
    metrics = get_metrics()
    f = np.zeros((NFACES, NFACES))
    with get_tracer().span(
        "viewfactor_mc", cat="spectral", samples=samples_per_face
    ):
        for face in range(NFACES):
            rng = streams.named("viewfactor", face)
            pts, dirs = _sample_face(rng, dims, face, samples_per_face)
            hits = _exit_faces(pts, dirs, dims)
            f[face] = np.bincount(hits, minlength=NFACES) / samples_per_face
    metrics.counter("spectral.viewfactor.rays").inc(NFACES * samples_per_face)
    return f


def enforce_constraints(
    f: np.ndarray, areas: np.ndarray, iterations: int = 64
) -> np.ndarray:
    """Project a raw MC view-factor matrix onto the constraint set.

    Alternates reciprocity symmetrization of the exchange areas
    ``S_ij = A_i F_ij`` with row normalisation; for a matrix already
    within MC noise of feasible this converges to round-off in a
    handful of sweeps. The last operation is symmetrization, so
    reciprocity is exact and row sums are exact to ~1e-15 — tight
    enough that radiosity energy balance closes to round-off.
    """
    if f.shape != (areas.size, areas.size):
        raise ReproError(f"view factor shape {f.shape} != ({areas.size},) squared")
    g = f.copy()
    for _ in range(iterations):
        g = g / g.sum(axis=1, keepdims=True)
        s = areas[:, None] * g
        s = 0.5 * (s + s.T)
        g = s / areas[:, None]
    return g


def band_emissive_power(
    model: SpectralModel, temperatures: np.ndarray
) -> np.ndarray:
    """(nfaces, nbands) band emissive powers ``f_b(T_i) * sigma T_i^4``.

    Band fractions use the Planck fraction function at each surface's
    *own* temperature (not the table's reference temperature) — a hot
    face emits with its own spectrum.
    """
    t = np.asarray(temperatures, dtype=np.float64)
    edges = np.asarray(model.table.edges_um)
    fr = planck_fraction(edges[None, :] * t[:, None])  # (nfaces, nbands+1)
    fractions = np.diff(fr, axis=1)
    return fractions * (SIGMA_SB * t[:, None] ** 4)


def radiosity_solve(
    f: np.ndarray, eps: np.ndarray, emissive: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve the banded radiosity system.

    ``f`` is the constrained view-factor matrix (nfaces, nfaces),
    ``eps`` band emissivities (nfaces, nbands), ``emissive`` band
    emissive powers (nfaces, nbands). Returns ``(J, q)`` — radiosity
    and net heat flux per face per band — from

        (I - (1 - eps_b) F) J_b = eps_b Eb_b,     q_b = J_b - F J_b.
    """
    nfaces, nbands = eps.shape
    if f.shape != (nfaces, nfaces) or emissive.shape != (nfaces, nbands):
        raise ReproError("radiosity inputs disagree on face/band counts")
    j = np.empty((nfaces, nbands))
    identity = np.eye(nfaces)
    for b in range(nbands):
        a = identity - (1.0 - eps[:, b])[:, None] * f
        j[:, b] = np.linalg.solve(a, eps[:, b] * emissive[:, b])
    q = j - f @ j
    return j, q


@dataclass
class EnclosureResult:
    """One enclosure solve: geometry factors and per-face energetics."""

    view_factors: np.ndarray      #: (6, 6) constrained matrix
    areas: np.ndarray             #: (6,) face areas
    radiosity: np.ndarray         #: (6, nbands) J
    band_flux: np.ndarray         #: (6, nbands) q per band
    flux: np.ndarray              #: (6,) net flux, bands summed
    face_power: np.ndarray        #: (6,) A_i * q_i
    rays_traced: int

    @property
    def energy_balance(self) -> float:
        """Net power out of the enclosure — zero for exact view
        factors; the residual measures constraint quality."""
        return float(self.face_power.sum())


@dataclass
class EnclosureScenario:
    """A box enclosure with per-face temperatures and spectral walls.

    The view-factor scenario of the spectral subsystem: no volume
    tracing at all, exchange is surface-to-surface through the model's
    band structure and emissivity table. ``face_temperatures`` follows
    the face order (x-, x+, y-, y+, z-, z+).
    """

    dims: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    face_temperatures: Tuple[float, ...] = (
        1500.0, 300.0, 900.0, 900.0, 900.0, 900.0,
    )
    model: SpectralModel = field(default_factory=SpectralModel.gray_limit)
    samples_per_face: int = 20000
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.face_temperatures) != NFACES:
            raise ReproError(
                f"need {NFACES} face temperatures, got {len(self.face_temperatures)}"
            )
        if any(t < 0.0 for t in self.face_temperatures):
            raise ReproError("face temperatures must be non-negative")

    def solve(self, streams: Optional[RandomStreams] = None) -> EnclosureResult:
        areas = face_areas(self.dims)
        raw = view_factor_matrix(
            self.dims, self.samples_per_face, streams=streams, seed=self.seed
        )
        f = enforce_constraints(raw, areas)
        temps = np.asarray(self.face_temperatures)
        eps = np.stack(
            [
                self.model.emissivity.band_values(b, temps)
                for b in range(self.model.nbands)
            ],
            axis=1,
        )
        emissive = band_emissive_power(self.model, temps)
        j, q_band = radiosity_solve(f, eps, emissive)
        flux = q_band.sum(axis=1)
        get_metrics().counter("spectral.enclosure.solves").inc()
        return EnclosureResult(
            view_factors=f,
            areas=areas,
            radiosity=j,
            band_flux=q_band,
            flux=flux,
            face_power=areas * flux,
            rays_traced=NFACES * self.samples_per_face,
        )
