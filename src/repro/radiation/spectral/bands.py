"""WSGG-style grey-band loop — the original spectral approximation.

This is the coarse end of the spectral subsystem: the spectrum as a
handful of grey bands with prescribed weights and kappa scales, each
solved by re-running the grey machinery. The wavelength-*sampled*
path (Planck-distribution band sampling per ray, tabulated surface
emissivity) lives in :mod:`repro.radiation.spectral.tracer`; this
module remains the cheap band-loop reference and the home of the
:class:`SpectralBand` set definitions.

Section III.A: "Adding spectral frequencies to RMCRT would entail
adding a loop over wave-lengths, eta and is part of future work."
This module implements that loop with the standard engineering model
for combustion gases, a weighted-sum-of-grey-gases (WSGG) style band
set: the spectrum is partitioned into ``n`` grey bands, band *i*
carrying a fraction ``weight_i`` of the black-body emissive power and a
band absorption coefficient ``kappa_scale_i * kappa_grey``. Each band
is solved with the existing grey RMCRT machinery on a re-scaled
property bundle and the divergences sum:

    del.q = sum_i del.q_grey(kappa_i, weight_i * sigma_t4)

With one band of weight 1 and scale 1 the model degenerates exactly to
the grey solver — the invariant the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.grid.grid import Grid
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError


@dataclass(frozen=True)
class SpectralBand:
    """One grey band of a WSGG-style set."""

    weight: float        #: fraction of total black-body emission
    kappa_scale: float   #: band kappa = kappa_scale * grey kappa

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight <= 1.0:
            raise ReproError(f"band weight {self.weight} outside [0, 1]")
        if self.kappa_scale < 0:
            raise ReproError(f"band kappa scale {self.kappa_scale} negative")


GREY = [SpectralBand(weight=1.0, kappa_scale=1.0)]

#: a representative 3-band combustion-gas set: an optically thick CO2/H2O
#: band, a moderate band, and a nearly transparent window
COMBUSTION_3_BAND = [
    SpectralBand(weight=0.35, kappa_scale=4.0),
    SpectralBand(weight=0.40, kappa_scale=1.0),
    SpectralBand(weight=0.25, kappa_scale=0.05),
]


def validate_bands(bands: Sequence[SpectralBand]) -> None:
    if not bands:
        raise ReproError("need at least one spectral band")
    total = sum(b.weight for b in bands)
    if abs(total - 1.0) > 1e-9:
        raise ReproError(f"band weights must sum to 1, got {total}")


def band_properties(props: RadiativeProperties, band: SpectralBand) -> RadiativeProperties:
    """The grey-equivalent property bundle for one band.

    Interior kappa scales by the band factor; emissive power (interior
    *and* walls) scales by the band weight. The wall ring of ``abskg``
    holds emissivity, which is spectral-surface property we keep grey
    (band-independent), matching the usual WSGG wall treatment.
    """
    abskg = props.abskg.copy()
    st4 = props.sigma_t4 * band.weight
    interior_sl = props.interior.slices(origin=props.origin)
    abskg[interior_sl] = abskg[interior_sl] * band.kappa_scale
    return RadiativeProperties(
        interior=props.interior,
        abskg=abskg,
        sigma_t4=st4,
        cell_type=props.cell_type,
    )


class SpectralRMCRT:
    """Band-looped RMCRT: wraps any grey solver with a ``solve(grid,
    props)`` interface (SingleLevelRMCRT, MultiLevelRMCRT, RMCRTSolver).

    Bands are solved with decorrelated ray streams (the grey solver's
    seed is offset per band) so band errors add in quadrature rather
    than coherently.
    """

    def __init__(self, grey_solver, bands: Optional[Sequence[SpectralBand]] = None):
        self.bands = list(bands) if bands is not None else list(GREY)
        validate_bands(self.bands)
        self.grey_solver = grey_solver
        if not hasattr(grey_solver, "solve") or not hasattr(grey_solver, "seed"):
            raise ReproError("grey solver must expose .solve(grid, props) and .seed")

    def solve(self, grid: Grid, props: RadiativeProperties):
        base_seed = self.grey_solver.seed
        divq = None
        rays = 0
        result = None
        try:
            for i, band in enumerate(self.bands):
                self.grey_solver.seed = base_seed + 7919 * i
                result = self.grey_solver.solve(grid, band_properties(props, band))
                divq = result.divq if divq is None else divq + result.divq
                rays += result.rays_traced
        finally:
            self.grey_solver.seed = base_seed
        result.divq = divq
        result.rays_traced = rays
        return result
