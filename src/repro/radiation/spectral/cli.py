"""``python -m repro spectral`` — the spectral subsystem's front end.

Subcommands:

* ``smoke`` — the CI gate: a small spectral solve cross-checked three
  ways (vectorized vs scalar backend, gray-limit vs the gray solver
  bit-for-bit, multi-band physical sanity). Exit 1 on any mismatch.
* ``run <scenario>`` — solve a named volume scenario and print the
  del.q summary and band census.
* ``enclosure`` — solve the view-factor enclosure scenario and print
  the view-factor matrix, per-face fluxes, and energy balance.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.util.errors import ReproError


def _cmd_smoke(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro spectral smoke",
        description="Cross-validate the spectral tracers (CI gate).",
    )
    parser.add_argument("--resolution", type=int, default=8)
    parser.add_argument("--rays-per-cell", type=int, default=8)
    parser.add_argument("--bands", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.core.single_level import SingleLevelRMCRT
    from repro.radiation.spectral.model import SpectralModel
    from repro.radiation.spectral.scenario import SpectralCase
    from repro.radiation.spectral.tracer import SpectralTracer

    failures = []

    # 1. gray limit must reproduce the gray solver bit-for-bit
    case = SpectralCase(
        name="smoke-gray",
        model=SpectralModel.gray_limit(),
        resolution=args.resolution,
        rays_per_cell=args.rays_per_cell,
        seed=args.seed,
    )
    grid, props = case.prepare()
    spectral = case.solve(backend="vectorized")
    gray = SingleLevelRMCRT(
        rays_per_cell=args.rays_per_cell, seed=args.seed
    ).solve(grid, props)
    if np.array_equal(spectral.divq, gray.divq):
        print(f"gray limit: bit-identical to gray solver "
              f"(divq mean {gray.divq.mean():.6f})")
    else:
        err = float(np.max(np.abs(spectral.divq - gray.divq)))
        failures.append(f"gray-limit mismatch vs gray solver: max |diff| {err:.3e}")

    # 2. vectorized vs scalar backend on a genuinely spectral model
    mcase = SpectralCase(
        name="smoke-multiband",
        model=SpectralModel.build(
            bands=args.bands, temperature=1400.0, kappa_exponent=0.8,
            emissivity="tungsten",
        ),
        resolution=args.resolution,
        rays_per_cell=args.rays_per_cell,
        wall_temperature=0.5,
        seed=args.seed,
    )
    vec = mcase.solve(backend="vectorized")
    sca = mcase.solve(backend="scalar")
    rel = float(
        np.max(np.abs(vec.divq - sca.divq)) / max(np.max(np.abs(sca.divq)), 1e-300)
    )
    if rel <= 1e-9:
        print(f"backends: vectorized matches scalar (rel max diff {rel:.3e}, "
              f"band census {vec.band_rays.tolist()})")
    else:
        failures.append(f"vectorized vs scalar rel max diff {rel:.3e} > 1e-9")

    # 3. physical sanity: every band sampled, finite positive-emission field
    if int(vec.band_rays.min()) <= 0:
        failures.append(f"band starved of rays: census {vec.band_rays.tolist()}")
    if not np.all(np.isfinite(vec.divq)):
        failures.append("non-finite del.q in spectral solve")

    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    print("spectral smoke:", "FAIL" if failures else "OK")
    return 1 if failures else 0


def _cmd_run(argv) -> int:
    from repro.radiation.spectral.scenario import SCENARIOS, get_scenario
    from repro.radiation.spectral.viewfactor import EnclosureScenario

    parser = argparse.ArgumentParser(
        prog="python -m repro spectral run",
        description="Solve a named spectral scenario.",
    )
    parser.add_argument("scenario", choices=sorted(SCENARIOS))
    parser.add_argument("--backend", choices=("vectorized", "scalar"),
                        default="vectorized")
    args = parser.parse_args(argv)

    case = get_scenario(args.scenario)
    if isinstance(case, EnclosureScenario):
        return _print_enclosure(case)
    result = case.solve(backend=args.backend)
    print(f"scenario {case.name}: model {case.model.name} "
          f"({case.model.nbands} band(s))")
    print(f"rays traced: {result.rays_traced:,}  "
          f"band census: {result.band_rays.tolist()}")
    print(f"del.q: mean {result.divq.mean():.4f}, "
          f"min {result.divq.min():.4f}, max {result.divq.max():.4f}")
    return 0


def _print_enclosure(case) -> int:
    result = case.solve()
    names = ("x-", "x+", "y-", "y+", "z-", "z+")
    print(f"enclosure {case.dims}, model {case.model.name} "
          f"({case.model.nbands} band(s)), "
          f"{case.samples_per_face:,} samples/face")
    print("view factors (constrained):")
    header = "      " + " ".join(f"{n:>8}" for n in names)
    print(header)
    for i, row in enumerate(result.view_factors):
        print(f"  {names[i]:<3} " + " ".join(f"{v:8.5f}" for v in row))
    print(f"{'face':>6} {'T [K]':>8} {'q [W/m^2]':>12} {'A*q [W]':>12}")
    for i, n in enumerate(names):
        print(f"{n:>6} {case.face_temperatures[i]:8.1f} "
              f"{result.flux[i]:12.2f} {result.face_power[i]:12.2f}")
    print(f"energy balance (sum A*q): {result.energy_balance:.3e} W")
    return 0


def _cmd_enclosure(argv) -> int:
    from repro.radiation.spectral.model import SpectralModel
    from repro.radiation.spectral.viewfactor import EnclosureScenario

    parser = argparse.ArgumentParser(
        prog="python -m repro spectral enclosure",
        description="Solve a box-enclosure view-factor problem.",
    )
    parser.add_argument("--samples", type=int, default=20000,
                        help="Monte Carlo samples per face")
    parser.add_argument("--bands", type=int, default=3)
    parser.add_argument("--emissivity", default="ceramic")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    case = EnclosureScenario(
        model=SpectralModel.build(
            bands=args.bands, temperature=1200.0, emissivity=args.emissivity,
        ),
        samples_per_face=args.samples,
        seed=args.seed,
    )
    return _print_enclosure(case)


def cmd_spectral(argv) -> int:
    argv = list(argv)
    commands = {
        "smoke": _cmd_smoke,
        "run": _cmd_run,
        "enclosure": _cmd_enclosure,
    }
    if not argv or argv[0] not in commands:
        print(
            "usage: python -m repro spectral {smoke,run,enclosure} ...",
            file=sys.stderr,
        )
        return 2
    try:
        return commands[argv[0]](argv[1:])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
