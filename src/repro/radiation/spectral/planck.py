"""Planck-distribution wavelength sampling.

Spectral RMCRT assigns every ray a wavelength band drawn from the
Planck (black-body) distribution at the medium temperature — rays then
march with that band's absorption coefficient and surface emissivity.
The machinery here is the banded Planck table:

* :func:`planck_fraction` — the black-body fraction function
  ``F(0 -> lambda*T)``, the fraction of total emissive power below a
  wavelength, via the standard converging series;
* :class:`PlanckTable` — band edges, per-band emission weights at a
  reference temperature, and inverse-CDF band sampling driven by a
  seeded generator (see :mod:`repro.util.rng`);
* :func:`default_band_edges` — equal-Planck-fraction edges, the
  sensible default when a spec names only a band count.

Everything is pure NumPy and deterministic: the same (table, stream)
pair always yields the same band sequence, which is what lets spectral
campaigns checkpoint and resume bit-identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.util.errors import ReproError

#: second radiation constant h*c/k_B in micrometre-kelvin
C2_UM_K = 14387.768775039337

#: Wien displacement constant in micrometre-kelvin (peak of Planck curve)
WIEN_UM_K = 2897.771955

#: series terms for the fraction function; the series converges like
#: exp(-n*xi)/n^4 so 100 terms is exact to double precision for any
#: lambda*T of practical interest
_SERIES_TERMS = 100


def planck_fraction(lambda_t) -> np.ndarray:
    """Black-body fraction function F(0 -> lambda*T).

    ``lambda_t`` is wavelength times temperature in um*K (scalar or
    array). Returns the fraction of total black-body emissive power at
    wavelengths below lambda, computed with the classical series

        F = (15/pi^4) sum_n exp(-n xi)/n * (xi^3 + 3 xi^2/n
                                            + 6 xi/n^2 + 6/n^3)

    where xi = C2/(lambda*T). F(0) = 0, F(inf) = 1, monotone.
    """
    lt = np.asarray(lambda_t, dtype=np.float64)
    out = np.zeros(lt.shape if lt.ndim else (1,))
    flat_lt = np.atleast_1d(lt)
    positive = flat_lt > 0.0
    infinite = np.isinf(flat_lt)
    finite = positive & ~infinite
    if np.any(finite):
        xi = C2_UM_K / flat_lt[finite]
        total = np.zeros_like(xi)
        for n in range(1, _SERIES_TERMS + 1):
            total += (
                np.exp(-n * xi)
                / n
                * (xi ** 3 + 3.0 * xi ** 2 / n + 6.0 * xi / n ** 2 + 6.0 / n ** 3)
            )
        out[finite] = (15.0 / math.pi ** 4) * total
    out[infinite] = 1.0
    np.clip(out, 0.0, 1.0, out=out)
    return out if lt.ndim else float(out[0])


def fraction_inverse(fraction: float, temperature: float) -> float:
    """Wavelength (um) below which ``fraction`` of the black-body power
    at ``temperature`` is emitted — the inverse of
    :func:`planck_fraction`, by bisection."""
    if not 0.0 < fraction < 1.0:
        raise ReproError(f"fraction must be in (0, 1), got {fraction}")
    if temperature <= 0.0:
        raise ReproError(f"temperature must be positive, got {temperature}")
    lo, hi = 1e-3, 1e6 / temperature  # lambda*T from 1e-3*T to 1e6 um*K
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if planck_fraction(mid * temperature) < fraction:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def default_band_edges(nbands: int, temperature: float) -> Tuple[float, ...]:
    """Equal-Planck-fraction band edges (um) at ``temperature``.

    Every band carries the same emission weight 1/nbands — the default
    banding when a spec gives only a band count. Edges run 0 to inf so
    the table covers the whole spectrum.
    """
    if nbands < 1:
        raise ReproError(f"need at least one band, got {nbands}")
    interior = [
        fraction_inverse(k / nbands, temperature) for k in range(1, nbands)
    ]
    return tuple([0.0] + interior + [math.inf])


@dataclass(frozen=True)
class PlanckTable:
    """Banded Planck distribution at a reference temperature.

    ``edges_um`` are nbands+1 increasing wavelength edges (um; the
    first may be 0 and the last inf); ``weights`` the per-band fraction
    of black-body emission, normalised to sum to 1 over the covered
    range; ``coverage`` the raw Planck fraction the edges span (1.0
    when they run 0 to inf).
    """

    edges_um: Tuple[float, ...]
    temperature: float
    weights: Tuple[float, ...]
    coverage: float
    #: cumulative weights for inverse-CDF sampling (last entry == 1)
    cdf: Tuple[float, ...] = field(repr=False, default=())

    @classmethod
    def from_edges(
        cls, edges_um: Sequence[float], temperature: float
    ) -> "PlanckTable":
        edges = tuple(float(e) for e in edges_um)
        if len(edges) < 2:
            raise ReproError(f"need >= 2 band edges, got {len(edges)}")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ReproError(f"band edges must be strictly increasing: {edges}")
        if edges[0] < 0.0:
            raise ReproError(f"band edges must be non-negative: {edges}")
        if temperature <= 0.0:
            raise ReproError(f"temperature must be positive, got {temperature}")
        fractions = planck_fraction(np.asarray(edges) * temperature)
        raw = np.diff(fractions)
        coverage = float(raw.sum())
        if coverage < 1e-9:
            raise ReproError(
                f"band edges {edges} cover a negligible fraction "
                f"({coverage:.2e}) of the Planck spectrum at {temperature} K"
            )
        weights = raw / coverage
        cdf = np.cumsum(weights)
        cdf[-1] = 1.0  # guard against rounding so sampling never overflows
        return cls(
            edges_um=edges,
            temperature=float(temperature),
            weights=tuple(float(w) for w in weights),
            coverage=coverage,
            cdf=tuple(float(c) for c in cdf),
        )

    @classmethod
    def equal_fraction(cls, nbands: int, temperature: float) -> "PlanckTable":
        """The default table: ``nbands`` equal-emission bands."""
        return cls.from_edges(default_band_edges(nbands, temperature), temperature)

    @property
    def nbands(self) -> int:
        return len(self.weights)

    def band_median_um(self, band: int) -> float:
        """The Planck-median wavelength of one band: the wavelength
        splitting the band's emission in half. Well-defined even for
        half-open bands (edges 0 or inf), unlike the midpoint."""
        if not 0 <= band < self.nbands:
            raise ReproError(f"band {band} outside [0, {self.nbands})")
        lo_f = float(planck_fraction(self.edges_um[band] * self.temperature))
        hi_f = float(planck_fraction(self.edges_um[band + 1] * self.temperature))
        return fraction_inverse(0.5 * (lo_f + hi_f), self.temperature)

    def band_medians_um(self) -> np.ndarray:
        return np.array([self.band_median_um(b) for b in range(self.nbands)])

    def sample_bands(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """``n`` band indices drawn from the Planck weights by inverse
        CDF over uniform draws — one draw per ray, vectorized.

        The scalar and vectorized tracers call this with the *same*
        named stream so their per-ray band assignments are identical
        (the cross-validation contract).
        """
        u = rng.random(n)
        bands = np.searchsorted(np.asarray(self.cdf), u, side="right")
        return np.minimum(bands, self.nbands - 1).astype(np.int64)
