"""Wavelength-sampled spectral RMCRT tracers.

Every ray gets a Planck-sampled wavelength band and marches with that
band's optics: interior ``kappa`` scaled by the band's kappa scale,
surface emissivity multiplied by the tabulated band emissivity at the
local surface temperature. Band sampling uses importance weights: a
ray lands in band ``b`` with the Planck probability ``w_b``, marches
against the *unscaled* emission field (the ``w_b`` of emission and the
``1/w_b`` of the estimator cancel), and its incoming intensity is
weighted by ``kappa_scale[b]`` at the origin cell, so

    del.q[c] = 4 pi kappa[c] (pm * sigma_t4[c]/pi
                              - mean_r kappa_scale[b(r)] * sumI_r)

with ``pm = sum_b w_b kappa_scale[b]`` the Planck-mean scale. With one
full-spectrum band of scale 1 this degenerates *exactly* — including
the RNG draws, because band sampling uses its own named stream — to
the gray solver, the subsystem's load-bearing invariant.

Two backends share every draw and differ only in the march:

* ``vectorized`` — rays grouped by band, each group marched through
  the band's fields by the batched SoA DDA kernel (the "GPU" path);
* ``scalar`` — the per-ray reference loop (the "CPU" oracle).

Cross-validation of the two is a test *and* a CI smoke gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.cpu_kernel import march_single_ray
from repro.core.dda import RayBatch, march
from repro.core.fields import LevelFields
from repro.core.kernels import DEFAULT_CHUNK_RAYS
from repro.core.rays import generate_patch_rays
from repro.core.single_level import RMCRTResult, _whole_domain_patch
from repro.grid.box import Box
from repro.grid.celltype import CellType
from repro.grid.grid import Grid
from repro.perf import get_metrics, get_tracer
from repro.radiation.constants import SIGMA_SB
from repro.radiation.properties import RadiativeProperties
from repro.radiation.spectral.model import SpectralModel
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams
from repro.util.timing import TimerRegistry

#: the named RNG stream family for per-ray band sampling — separate
#: from the per-patch ray streams so spectral draws never perturb the
#: ray sequence (gray-limit bit-identity depends on this)
SPECTRAL_STREAM = "spectral"


@dataclass
class SpectralResult(RMCRTResult):
    """A spectral solve's output: the gray result surface plus the
    per-band ray census (how the Planck sampler spent its budget)."""

    band_rays: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))


def band_level_fields(
    props: RadiativeProperties, model: SpectralModel, band: int
) -> RadiativeProperties:
    """The property bundle one band's rays march through.

    Interior (FLOW) kappa scales by the band's kappa scale; surface
    cells (wall ring and intrusions, where ``abskg`` holds emissivity)
    multiply by the tabulated band emissivity at the local surface
    temperature. ``sigma_t4`` is deliberately untouched — emission
    band-weighting cancels against the Planck importance sampling.
    """
    abskg = props.abskg.copy()
    flow = props.cell_type == CellType.FLOW
    scale = float(model.kappa_scales[band])
    if scale != 1.0:
        abskg[flow] *= scale
    if not model.emissivity.is_gray:
        surf = ~flow
        t_surf = (props.sigma_t4[surf] / SIGMA_SB) ** 0.25
        abskg[surf] *= model.emissivity.band_values(band, t_surf)
    return RadiativeProperties(
        interior=props.interior,
        abskg=abskg,
        sigma_t4=props.sigma_t4,
        cell_type=props.cell_type,
    )


def spectral_divq_from_sums(
    fields: LevelFields, box: Box, weighted_mean: np.ndarray, planck_mean_scale: float
) -> np.ndarray:
    """Reduce band-weighted mean incoming intensity to del.q.

    The spectral analogue of :func:`repro.core.kernels.divq_from_sums`:
    emission carries the Planck-mean kappa scale, absorption the
    per-ray band weights already folded into ``weighted_mean``. Solid
    cells are zeroed exactly as in the gray reduction.
    """
    sl = box.slices(origin=fields.ring_lo)
    kappa = fields.abskg[sl]
    st4 = fields.sigma_t4[sl]
    mean = weighted_mean.reshape(box.extent)
    divq = 4.0 * np.pi * kappa * ((st4 * planck_mean_scale) / np.pi - mean)
    solid = fields.cell_type[sl] != CellType.FLOW
    if solid.any():
        divq = np.where(solid, 0.0, divq)
    return divq


class SpectralTracer:
    """Single-level spectral RMCRT with Planck band sampling.

    Mirrors :class:`~repro.core.single_level.SingleLevelRMCRT` (same
    patch loop, same per-patch ray streams) plus a second, *named*
    stream per patch for band sampling. Passing an external
    :class:`RandomStreams` lets campaigns own the stream positions —
    that is what makes spectral checkpoints resume bit-identically.
    """

    def __init__(
        self,
        model: SpectralModel,
        rays_per_cell: int = 25,
        threshold: float = 1e-4,
        seed: int = 0,
        backend: str = "vectorized",
        centered_origins: bool = False,
    ) -> None:
        if backend not in ("vectorized", "scalar"):
            raise ReproError(f"unknown backend {backend!r}")
        self.model = model
        self.rays_per_cell = int(rays_per_cell)
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.backend = backend
        self.centered_origins = bool(centered_origins)

    def solve(
        self,
        grid: Grid,
        props: RadiativeProperties,
        streams: Optional[RandomStreams] = None,
    ) -> SpectralResult:
        level = grid.finest_level
        fields = LevelFields.from_properties(level, props)
        band_fields = self._band_fields(level, props)
        if streams is None:
            streams = RandomStreams(self.seed)
        timers = TimerRegistry()
        tracer = get_tracer()
        metrics = get_metrics()

        divq = np.empty(level.domain_box.extent)
        band_rays = np.zeros(self.model.nbands, dtype=np.int64)
        patches = level.patches or [_whole_domain_patch(level)]
        rays = 0
        with timers("spectral_solve"), tracer.span(
            "spectral_solve", cat="spectral",
            bands=self.model.nbands, backend=self.backend,
        ):
            for patch in patches:
                pdivq, counts = self._solve_patch(
                    fields, band_fields, patch, streams, timers, tracer
                )
                divq[patch.box.slices(origin=level.domain_box.lo)] = pdivq
                band_rays += counts
                rays += patch.box.volume * self.rays_per_cell
        metrics.counter("spectral.rays.traced", backend=self.backend).inc(rays)
        metrics.counter("spectral.solves", backend=self.backend).inc()
        return SpectralResult(
            divq=divq, rays_traced=rays, timers=timers, band_rays=band_rays
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _band_fields(self, level, props: RadiativeProperties) -> List[LevelFields]:
        """Per-band marching fields, built once per solve."""
        return [
            LevelFields.from_properties(
                level, band_level_fields(props, self.model, b)
            )
            for b in range(self.model.nbands)
        ]

    def _solve_patch(
        self, fields, band_fields, patch, streams: RandomStreams, timers, tracer
    ):
        ray_rng = streams.for_patch(patch.patch_id)
        band_rng = streams.named(SPECTRAL_STREAM, patch.patch_id)
        _, origins, directions = generate_patch_rays(
            fields, patch.box, self.rays_per_cell, ray_rng,
            centered_origins=self.centered_origins,
        )
        n = origins.shape[0]
        bands = self.model.table.sample_bands(band_rng, n)
        counts = np.bincount(bands, minlength=self.model.nbands).astype(np.int64)

        sum_i = np.empty(n)
        with timers("kernel"), tracer.span(
            "spectral_kernel", cat="spectral", patch=patch.patch_id, rays=n,
        ):
            if self.backend == "vectorized":
                self._march_vectorized(band_fields, origins, directions, bands, sum_i)
            else:
                self._march_scalar(band_fields, origins, directions, bands, sum_i)

        weighted = sum_i * self.model.kappa_scales[bands]
        mean = weighted.reshape(-1, self.rays_per_cell).mean(axis=1)
        pdivq = spectral_divq_from_sums(
            fields, patch.box, mean, self.model.planck_mean_scale
        )
        return pdivq, counts

    def _march_vectorized(self, band_fields, origins, directions, bands, sum_i):
        """Group rays by band, march each group with the batched SoA
        DDA kernel (chunked so device memory stays bounded)."""
        for b in range(self.model.nbands):
            idx = np.nonzero(bands == b)[0]
            if idx.size == 0:
                continue
            lf = band_fields[b]
            for start in range(0, idx.size, DEFAULT_CHUNK_RAYS):
                chunk = idx[start:start + DEFAULT_CHUNK_RAYS]
                batch = RayBatch.fresh(origins[chunk], directions[chunk])
                march(batch=batch, fields=lf, threshold=self.threshold)
                sum_i[chunk] = batch.sum_i

    def _march_scalar(self, band_fields, origins, directions, bands, sum_i):
        """The per-ray reference loop: one ray at a time through its
        band's fields — the differential oracle for the batch path."""
        for r in range(origins.shape[0]):
            sum_i[r], _, _, _ = march_single_ray(
                band_fields[bands[r]],
                origins[r],
                directions[r],
                threshold=self.threshold,
            )
