"""Tabulated, temperature-dependent spectral surface emissivity.

A :class:`TabulatedEmissivity` holds band emissivities on a grid of
temperatures and interpolates linearly in temperature (clamping at the
table ends, the usual engineering convention for sparse property
data). Values act as *multipliers* on the scene's gray wall emissivity
(the wall ring of ``abskg``): the gray table (all ones) leaves every
surface untouched, which is the gray-limit invariant the tests pin.

The named material catalog builds tables from the power-law model

    eps(lambda, T) = clamp(eps0 * (lambda/lambda0)^alpha
                           * (1 + slope*(T - t_ref)/t_ref), 0.01, 0.99)

evaluated at a band structure's Planck-median wavelengths — the
tabulated-spectral-emissivity shape of the GPU Monte Carlo exemplars.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.radiation.spectral.planck import PlanckTable
from repro.util.errors import ReproError


@dataclass
class TabulatedEmissivity:
    """Band emissivity vs temperature, linearly interpolated.

    ``temperatures`` is (nT,) strictly increasing in kelvin;
    ``values`` is (nT, nbands) with entries in (0, 1].
    """

    temperatures: np.ndarray
    values: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        self.temperatures = np.asarray(self.temperatures, dtype=np.float64)
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.temperatures.ndim != 1 or self.temperatures.size < 1:
            raise ReproError("emissivity table needs >= 1 temperature row")
        if np.any(np.diff(self.temperatures) <= 0):
            raise ReproError("emissivity table temperatures must increase")
        if self.values.shape != (self.temperatures.size, self.nbands_guess()):
            raise ReproError(
                f"emissivity values shape {self.values.shape} != "
                f"(nT={self.temperatures.size}, nbands)"
            )
        if np.any(self.values <= 0.0) or np.any(self.values > 1.0):
            raise ReproError("band emissivities must lie in (0, 1]")

    def nbands_guess(self) -> int:
        return self.values.shape[1] if self.values.ndim == 2 else -1

    @property
    def nbands(self) -> int:
        return self.values.shape[1]

    @property
    def is_gray(self) -> bool:
        """True when the table is the identity modifier (all ones)."""
        return bool(np.all(self.values == 1.0))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def eps_at(self, temperature: float) -> np.ndarray:
        """(nbands,) band emissivities at one temperature."""
        return self.band_values(
            np.arange(self.nbands), np.full(self.nbands, float(temperature))
        )

    def band_values(self, band, temperature) -> np.ndarray:
        """Emissivity for ``band`` (int or array) at ``temperature``
        (array, broadcast against band) — the vectorized lookup the
        tracer uses per surface cell."""
        t = np.asarray(temperature, dtype=np.float64)
        temps = self.temperatures
        if temps.size == 1:
            return np.broadcast_to(
                self.values[0, band], np.broadcast_shapes(t.shape, np.shape(band))
            ).copy()
        idx = np.clip(np.searchsorted(temps, t, side="right") - 1, 0, temps.size - 2)
        t0, t1 = temps[idx], temps[idx + 1]
        w = np.clip((t - t0) / (t1 - t0), 0.0, 1.0)
        v0 = self.values[idx, band]
        v1 = self.values[idx + 1, band]
        return (1.0 - w) * v0 + w * v1

    # ------------------------------------------------------------------
    # identity (fingerprint surface)
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 of the table contents — what the spec fingerprint
        folds in, so two specs differing only in emissivity data cache
        (and route) distinctly."""
        h = hashlib.sha256()
        h.update(self.name.encode())
        h.update(str(self.values.shape).encode())
        h.update(np.ascontiguousarray(self.temperatures).tobytes())
        h.update(np.ascontiguousarray(self.values).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def gray(cls, nbands: int) -> "TabulatedEmissivity":
        """The identity table: every band, every temperature, eps 1."""
        return cls(
            temperatures=np.array([300.0]),
            values=np.ones((1, nbands)),
            name="gray",
        )

    @classmethod
    def power_law(
        cls,
        table: PlanckTable,
        eps0: float = 0.8,
        lambda0_um: float = 2.0,
        alpha: float = 0.0,
        slope: float = 0.0,
        t_ref: float = 1000.0,
        temperatures: Sequence[float] = (300.0, 800.0, 1300.0, 1800.0),
        name: str = "power-law",
    ) -> "TabulatedEmissivity":
        """Tabulate the power-law emissivity model on a band structure.

        Band wavelengths are the table's Planck medians; rows are the
        given temperatures with the linear temperature correction.
        """
        lam = table.band_medians_um()
        temps = np.asarray(sorted(temperatures), dtype=np.float64)
        base = eps0 * (lam / lambda0_um) ** alpha
        correction = 1.0 + slope * (temps[:, None] - t_ref) / t_ref
        values = np.clip(base[None, :] * correction, 0.01, 0.99)
        return cls(temperatures=temps, values=values, name=name)


#: named material catalog: power-law parameters per material.
#: "gray" is the identity; the others are engineering-order-of-magnitude
#: spectral shapes (tungsten brightens toward short wavelengths and with
#: temperature; oxidized ceramic is high-emissivity and nearly flat;
#: polished steel is low-emissivity, dropping with wavelength).
MATERIALS: Dict[str, Dict[str, float]] = {
    "tungsten": dict(eps0=0.45, lambda0_um=1.0, alpha=-0.35, slope=0.25),
    "ceramic": dict(eps0=0.90, lambda0_um=4.0, alpha=0.05, slope=-0.05),
    "steel": dict(eps0=0.25, lambda0_um=2.0, alpha=-0.20, slope=0.15),
}


def named_emissivity(name: str, table: PlanckTable) -> TabulatedEmissivity:
    """Build a catalog material's table for a band structure.

    ``gray`` yields the identity modifier; unknown names raise with the
    catalog listed (specs are untrusted input).
    """
    if name == "gray":
        return TabulatedEmissivity.gray(table.nbands)
    try:
        params = MATERIALS[name]
    except KeyError:
        known = ["gray"] + sorted(MATERIALS)
        raise ReproError(
            f"unknown emissivity table {name!r}; known: {', '.join(known)}"
        ) from None
    return TabulatedEmissivity.power_law(table, name=name, **params)
