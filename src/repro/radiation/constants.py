"""Physical constants for radiative transfer."""

#: Stefan-Boltzmann constant [W m^-2 K^-4]
SIGMA_SB = 5.670374419e-8

#: Temperature at which sigma*T^4 == 1 W/m^2 — the Burns & Christon
#: benchmark medium temperature (the paper's benchmark normalizes the
#: black-body emissive power to unity).
T_UNIT_EMISSION = (1.0 / SIGMA_SB) ** 0.25  # ~64.804 K
