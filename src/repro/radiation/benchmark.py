"""The Burns & Christon benchmark (paper refs [30], [3]).

The standard verification problem for participating-media radiation
used throughout the paper's evaluation: a unit cube of hot medium with
a spatially varying absorption coefficient

    kappa(x, y, z) = C * (1 - 2|x - 1/2|) (1 - 2|y - 1/2|) (1 - 2|z - 1/2|) + K0

(C = 0.9, K0 = 0.1 in Uintah's benchmark initialization: kappa peaks at
1.0 in the centre and falls to 0.1 at the walls), uniform medium
temperature normalized so sigma*T^4 = 1, and cold black walls. The
quantity of interest is the divergence of the heat flux, del.q, whose
centreline profile is the published comparison curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.grid.box import Box
from repro.grid.grid import Grid, build_single_level_grid, build_two_level_grid
from repro.grid.level import Level
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import GridError


def burns_christon_abskg(
    x: np.ndarray, y: np.ndarray, z: np.ndarray, c: float = 0.9, k0: float = 0.1
) -> np.ndarray:
    """The benchmark absorption coefficient at points (broadcastable)."""
    return (
        c
        * (1.0 - 2.0 * np.abs(x - 0.5))
        * (1.0 - 2.0 * np.abs(y - 0.5))
        * (1.0 - 2.0 * np.abs(z - 0.5))
        + k0
    )


@dataclass
class BurnsChristonBenchmark:
    """Benchmark problem factory.

    ``resolution`` is the fine-mesh cells per dimension. The physical
    domain is the unit cube; the medium emissive power sigma*T^4 is 1
    everywhere and the walls are cold (sigma*T^4 = 0) and black
    (emissivity 1), so every computed intensity lies in [0, 1).
    """

    resolution: int = 41
    c: float = 0.9
    k0: float = 0.1

    def abskg_field(self, level: Level, box: Optional[Box] = None) -> np.ndarray:
        b = box if box is not None else level.domain_box
        x, y, z = level.cell_centers(b)
        return burns_christon_abskg(
            x[:, None, None], y[None, :, None], z[None, None, :], self.c, self.k0
        )

    def properties_for_level(self, level: Level) -> RadiativeProperties:
        """Analytic property bundle evaluated at a level's resolution."""
        abskg = self.abskg_field(level)
        sigma_t4 = np.ones(level.domain_box.extent)
        return RadiativeProperties.from_fields(
            level.domain_box,
            abskg=abskg,
            sigma_t4=sigma_t4,
            wall_temperature=0.0,
            wall_emissivity=1.0,
        )

    # ------------------------------------------------------------------
    # grids
    # ------------------------------------------------------------------
    def single_level_grid(self, patch_size: Optional[int] = None) -> Grid:
        return build_single_level_grid(self.resolution, patch_size=patch_size)

    def two_level_grid(
        self,
        refinement_ratio: int = 4,
        fine_patch_size: Optional[int] = None,
        coarse_patch_size: Optional[int] = None,
    ) -> Grid:
        return build_two_level_grid(
            self.resolution,
            refinement_ratio=refinement_ratio,
            fine_patch_size=fine_patch_size,
            coarse_patch_size=coarse_patch_size,
        )

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def centerline(self, divq: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(x, del.q) along the x axis through the cube centre.

        For even resolutions the two central rows are averaged, matching
        how the published profiles are sampled.
        """
        n = divq.shape[0]
        if divq.shape != (n, n, n):
            raise GridError(f"expected a cubic field, got {divq.shape}")
        x = (np.arange(n) + 0.5) / n
        if n % 2 == 1:
            mid = n // 2
            line = divq[:, mid, mid]
        else:
            m = n // 2
            line = 0.25 * (
                divq[:, m - 1, m - 1]
                + divq[:, m - 1, m]
                + divq[:, m, m - 1]
                + divq[:, m, m]
            )
        return x, line

    def expected_divq_bounds(self) -> Tuple[float, float]:
        """Loose physical bounds on del.q for this problem.

        del.q = 4*pi*kappa*(sigma_t4/pi - sumI/N) with sigma_t4 = 1,
        kappa in [k0, k0+c], and incoming intensity in [0, 1): the
        divergence is positive (net emission everywhere, cold walls)
        and bounded by 4*kappa_max.
        """
        kappa_max = self.k0 + self.c
        return 0.0, 4.0 * kappa_max


MEDIUM_PROBLEM = dict(fine_cells=256, refinement_ratio=4, rays_per_cell=100)
"""Figure 2's problem: 256^3 fine + 64^3 coarse = 17.04M cells."""

LARGE_PROBLEM = dict(fine_cells=512, refinement_ratio=4, rays_per_cell=100)
"""Figure 3's problem: 512^3 fine + 128^3 coarse = 136.31M cells."""
