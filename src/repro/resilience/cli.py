"""``python -m repro resilience`` — checkpoint, restore, drill.

Three subcommands:

``checkpoint``
    Run a small campaign with checkpointing on cadence and report what
    landed on disk (steps, chunks written vs reused, bytes).

``restore``
    Load the latest *valid* checkpoint from a directory, print its
    summary, and optionally continue the run — the operator's "did my
    checkpoints survive, and can I resume from them?" probe.

``drill``
    The kill-and-recover smoke used by CI: run an uninterrupted gold
    campaign, then the same campaign distributed under a seeded
    :class:`~repro.resilience.faultplan.FaultPlan` (>= 1 rank death,
    newest checkpoint corrupted), recover through the orchestrator,
    and demand the recovered final field equal gold **byte for byte**.
    Exits non-zero unless the fields match AND at least one recovery
    actually happened.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.util.atomic import atomic_write_text
from repro.util.errors import ReproError


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--steps", type=int, default=6, help="timesteps to run")
    parser.add_argument("--resolution", type=int, default=12, help="fine cells per edge")
    parser.add_argument("--patch-size", type=int, default=6, help="fine patch edge")
    parser.add_argument("--rays-per-cell", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)


def _make_campaign(args, num_ranks: int):
    from repro.resilience.orchestrator import RadiationCampaign

    return RadiationCampaign(
        resolution=args.resolution,
        fine_patch_size=args.patch_size,
        rays_per_cell=args.rays_per_cell,
        seed=args.seed,
        num_ranks=num_ranks,
    )


# ----------------------------------------------------------------------
def cmd_checkpoint(argv) -> int:
    from repro.perf.metrics import get_metrics
    from repro.resilience.checkpoint import Checkpointer
    from repro.resilience.orchestrator import RecoveryOrchestrator

    parser = argparse.ArgumentParser(
        prog="python -m repro resilience checkpoint",
        description="Run a campaign with checkpointing and report the result.",
    )
    _add_campaign_args(parser)
    parser.add_argument("--dir", default="checkpoints", help="checkpoint root directory")
    parser.add_argument("--every", type=int, default=2, help="checkpoint every N steps")
    parser.add_argument("--keep", type=int, default=5, help="manifests to retain")
    parser.add_argument("--ranks", type=int, default=1, help="simulated MPI ranks")
    args = parser.parse_args(argv)

    campaign = _make_campaign(args, num_ranks=args.ranks)
    ckpt = Checkpointer(args.dir, every_steps=args.every, keep=args.keep)
    RecoveryOrchestrator(campaign, ckpt).run(args.steps)

    metrics = get_metrics()
    steps = ckpt.steps()
    print(f"campaign: {args.steps} steps on {args.ranks} rank(s), seed {args.seed}")
    print(f"checkpoints in {args.dir}: steps {steps}")
    print(
        f"chunks written {int(metrics.value('resilience.checkpoint.chunks_written'))}, "
        f"reused {int(metrics.value('resilience.checkpoint.chunks_reused'))}, "
        f"bytes {int(metrics.value('resilience.checkpoint.bytes_written'))}"
    )
    return 0


# ----------------------------------------------------------------------
def cmd_restore(argv) -> int:
    from repro.resilience.checkpoint import Checkpointer

    parser = argparse.ArgumentParser(
        prog="python -m repro resilience restore",
        description="Validate and summarise the latest restorable checkpoint.",
    )
    _add_campaign_args(parser)
    parser.add_argument("--dir", default="checkpoints", help="checkpoint root directory")
    parser.add_argument(
        "--continue-to",
        type=int,
        default=None,
        metavar="STEP",
        help="resume the campaign and run to this step count",
    )
    args = parser.parse_args(argv)

    ckpt = Checkpointer(args.dir)
    state, step = ckpt.load_latest_valid()
    arrays = state.arrays()
    print(f"latest valid checkpoint: step {step} (t={state.time:.6g})")
    print(f"  {len(arrays)} arrays, {state.nbytes} bytes")
    print(f"  rng streams captured: {len((state.rng or {}).get('streams', {}))}")
    if state.layout:
        for lvl in state.layout["levels"]:
            print(
                f"  level {lvl['index']}: [{lvl['lo']}, {lvl['hi']}) "
                f"{len(lvl['patches'])} patches"
            )
    if args.continue_to is not None:
        campaign = _make_campaign(args, num_ranks=1)
        campaign.restore(state)
        campaign.run(args.continue_to)
        print(
            f"resumed from step {step} and ran to step {campaign.step}: "
            f"emissive mean {campaign.emissive.mean():.6f}"
        )
    return 0


# ----------------------------------------------------------------------
def cmd_drill(argv) -> int:
    from repro.resilience.checkpoint import Checkpointer
    from repro.resilience.faultplan import FaultPlan
    from repro.resilience.orchestrator import RecoveryOrchestrator

    parser = argparse.ArgumentParser(
        prog="python -m repro resilience drill",
        description="Seeded kill-and-recover drill: inject rank deaths and "
        "checkpoint corruption, recover, and verify bit-identical results.",
    )
    _add_campaign_args(parser)
    parser.add_argument("--ranks", type=int, default=4, help="simulated MPI ranks")
    parser.add_argument("--deaths", type=int, default=1, help="rank deaths to inject")
    parser.add_argument("--every", type=int, default=2, help="checkpoint every N steps")
    parser.add_argument("--dir", default=None, help="checkpoint dir (default: temp)")
    parser.add_argument(
        "--report", default="drill_report.json", help="drill report output path"
    )
    args = parser.parse_args(argv)

    # gold: the same campaign, serial, never interrupted
    gold = _make_campaign(args, num_ranks=1).run(args.steps)

    import tempfile

    if args.dir is not None:
        ckpt_dir = args.dir
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-drill-")
        ckpt_dir = cleanup.name
    try:
        plan = FaultPlan.seeded(
            args.seed,
            num_steps=args.steps,
            num_ranks=args.ranks,
            deaths=args.deaths,
            checkpoint_every=args.every,
        )
        campaign = _make_campaign(args, num_ranks=args.ranks)
        ckpt = Checkpointer(ckpt_dir, every_steps=args.every)
        # postmortems go next to the report, not into the (possibly
        # temporary) checkpoint dir — they must survive the drill
        orchestrator = RecoveryOrchestrator(
            campaign, ckpt, plan,
            flightrec_dir=str(Path(args.report).resolve().parent),
        )
        report = orchestrator.run(args.steps)
        recovered = campaign.emissive
        identical = bool(
            recovered.shape == gold.shape and np.array_equal(recovered, gold)
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    doc = {
        "seed": args.seed,
        "steps": args.steps,
        "fault_plan": plan.as_dicts(),
        "report": report.as_dict(),
        "bit_identical_to_gold": identical,
        "max_abs_diff": float(np.abs(recovered - gold).max()),
    }
    atomic_write_text(Path(args.report), json.dumps(doc, indent=2, sort_keys=True) + "\n")

    print(f"fault plan ({len(plan)} events): {plan.counts()}")
    for rec in report.recoveries:
        print(
            f"  step {rec.at_step}: ranks {rec.dead_ranks} died -> "
            f"{rec.survivors} survivors, restored step {rec.restored_step} "
            f"(replayed {rec.steps_replayed}), {rec.patches_rehomed} patches rehomed"
        )
    for fault in report.chunk_faults:
        print(f"  checkpoint damage: {fault['kind']} on step {fault['step']}")
    print(
        f"finished step {report.final_step}/{args.steps} on "
        f"{report.final_ranks}/{report.initial_ranks} ranks; "
        f"checkpoints saved {report.checkpoints_saved}"
    )
    verdict = "bit-identical to gold" if identical else "DIVERGED from gold"
    print(f"recovered result: {verdict} (report: {args.report})")
    if not identical:
        return 1
    if not report.recoveries:
        print("error: drill injected no recoverable failure", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
def run_resilience(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {
        "checkpoint": cmd_checkpoint,
        "restore": cmd_restore,
        "drill": cmd_drill,
    }
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: python -m repro resilience {checkpoint|restore|drill} [options]"
        )
        return 0 if argv else 2
    cmd = argv[0]
    if cmd not in commands:
        print(f"error: unknown resilience command {cmd!r} "
              f"(use {'|'.join(commands)})", file=sys.stderr)
        return 2
    try:
        return commands[cmd](argv[1:])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
