"""Recovery orchestration: kill-and-recover drills on a live campaign.

:class:`RadiationCampaign` is a miniature multi-timestep production
run: a Burns & Christon two-level grid, the 3-task RMCRT pipeline
executed serially or across simulated MPI ranks, and an evolving
emissive-power field coupled back from del.q each step (plus per-patch
stochastic forcing, so the RNG streams genuinely advance and resume
must genuinely restore them). Because the pipeline's randomness is
keyed per patch — never per rank — the same campaign produces
*byte-identical* fields under any decomposition, which is the property
that makes recovery-by-re-decomposition exact rather than approximate.

:class:`RecoveryOrchestrator` drives a campaign under a
:class:`~repro.resilience.faultplan.FaultPlan`: it checkpoints on
cadence, injects the scripted failures (rank deaths, corrupt/torn
checkpoint chunks), and on each death restores from the latest *valid*
checkpoint, re-homes the dead rank's patches onto the survivors, and
replays. A drill passes when the recovered run's final field equals the
uninterrupted gold run's, byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.driver import drain_before_snapshot
from repro.core.distributed import DIVQ, DistributedRMCRT
from repro.dw.datawarehouse import DataWarehouse
from repro.dw.label import cc, per_level, reduction
from repro.dw.variables import CCVariable, ReductionVariable
from repro.grid.celltype import CellType
from repro.grid.loadbalance import LoadBalancer, compact_ranks, reassign_on_failure
from repro.perf.flightrec import get_flight_recorder
from repro.radiation.benchmark import BurnsChristonBenchmark
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faultplan import FaultEvent, FaultPlan
from repro.resilience.state import SimulationState, capture_state, verify_layout
from repro.runtime.scheduler import DistributedScheduler, SerialScheduler, gather_cc
from repro.util.errors import ResilienceError
from repro.util.rng import RandomStreams
from repro.util.timing import Timer

#: RNG purpose for the per-patch stochastic forcing (trace rays use 0,
#: boundary-flux rays use 1 — see core.distributed)
NOISE_PURPOSE = 3

EMISSIVE = per_level("emissive")
ABSKG_CKPT = cc("abskg")
DIVQ_TOTAL = reduction("divq_total")


class RadiationCampaign:
    """A resumable multi-timestep RMCRT run on the Burns & Christon box.

    ``num_ranks == 1`` runs the serial scheduler; more ranks run the
    distributed scheduler over simulated MPI with an SFC assignment.
    The rank count may shrink mid-campaign (that is the point).
    """

    def __init__(
        self,
        resolution: int = 12,
        refinement_ratio: int = 4,
        fine_patch_size: int = 6,
        rays_per_cell: int = 2,
        halo: int = 2,
        seed: int = 0,
        num_ranks: int = 1,
        alpha: float = 0.05,
        noise_amp: float = 0.01,
        dt: float = 1e-3,
    ) -> None:
        self.params = {
            "resolution": resolution,
            "refinement_ratio": refinement_ratio,
            "fine_patch_size": fine_patch_size,
            "rays_per_cell": rays_per_cell,
            "halo": halo,
            "seed": seed,
            "alpha": alpha,
            "noise_amp": noise_amp,
            "dt": dt,
        }
        self.bench = BurnsChristonBenchmark(resolution)
        self.grid = self.bench.two_level_grid(
            refinement_ratio=refinement_ratio, fine_patch_size=fine_patch_size
        )
        self.fine = self.grid.finest_level
        self.seed = int(seed)
        self.alpha = float(alpha)
        self.noise_amp = float(noise_amp)
        self.dt = float(dt)
        self.streams = RandomStreams(seed)
        self.step = 0
        self.time = 0.0
        self.last_divq_total = 0.0
        self.last_drain_s = 0.0
        #: static absorption coefficient over the whole fine level
        self._abskg = self.bench.abskg_field(self.fine)
        #: the evolving emissive-power field (checkpointed state)
        self.emissive = np.ones(self.fine.domain_box.extent)
        self.num_ranks = int(num_ranks)
        if self.num_ranks > 1:
            self.assignment = LoadBalancer(self.num_ranks).assign(self.fine.patches)
        else:
            self.assignment = {p.patch_id: 0 for p in self.fine.patches}
        self.rmcrt = DistributedRMCRT(
            self.grid,
            self._property_init,
            rays_per_cell=rays_per_cell,
            halo=halo,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def _property_init(self, level, box) -> Dict[str, np.ndarray]:
        origin = self.fine.domain_box.lo
        sl = box.slices(origin=origin)
        return {
            "abskg": self._abskg[sl].copy(),
            "sigma_t4": self.emissive[sl].copy(),
            "cell_type": np.full(box.extent, CellType.FLOW, dtype=np.int8),
        }

    # ------------------------------------------------------------------
    # timestepping
    # ------------------------------------------------------------------
    def step_once(self) -> np.ndarray:
        """Execute one timestep; returns the gathered del.q field."""
        fine_idx = self.grid.num_levels - 1
        if self.num_ranks == 1:
            graph = self.rmcrt.build_graph()
            rank_dws = {0: SerialScheduler().execute(graph)}
        else:
            graph = self.rmcrt.build_graph(
                assignment=self.assignment, num_ranks=self.num_ranks
            )
            sched = DistributedScheduler(self.num_ranks)
            rank_dws = sched.execute(graph)
            # consistent-cut barrier: no in-flight traffic may survive
            # into a snapshot taken after this step
            self.last_drain_s = drain_before_snapshot(sched.fabric)
        divq = gather_cc(graph, rank_dws, DIVQ, fine_idx)
        self.last_divq_total = float(divq.sum())
        origin = self.fine.domain_box.lo
        self.emissive = self.emissive - self.alpha * divq
        # per-patch stochastic forcing: streams keyed by patch id, so
        # the update is identical under any decomposition, and the
        # streams advance statefully (what checkpoints must capture)
        for patch in sorted(self.fine.patches, key=lambda p: p.patch_id):
            gen = self.streams.for_patch(patch.patch_id, purpose=NOISE_PURPOSE)
            sl = patch.box.slices(origin=origin)
            self.emissive[sl] += self.noise_amp * gen.standard_normal(patch.box.extent)
        np.clip(self.emissive, 1e-6, None, out=self.emissive)
        self.step += 1
        self.time += self.dt
        return divq

    def run(self, num_steps: int) -> np.ndarray:
        """Run to ``num_steps`` completed steps; returns the final field."""
        while self.step < num_steps:
            self.step_once()
        return self.emissive.copy()

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def capture(self) -> SimulationState:
        """Snapshot the campaign as a checkpointable state.

        The static absorption field rides along as per-patch CC
        variables — unchanged content whose chunks dedupe across every
        checkpoint, exercising the incremental path — while the
        evolving emissive field and RNG positions carry the actual
        resume burden.
        """
        fine_idx = self.grid.num_levels - 1
        dw = DataWarehouse(generation=self.step)
        origin = self.fine.domain_box.lo
        for patch in sorted(self.fine.patches, key=lambda p: p.patch_id):
            sl = patch.box.slices(origin=origin)
            dw.put(ABSKG_CKPT, patch.patch_id, CCVariable(patch.box, self._abskg[sl].copy()))
        dw.put_level(EMISSIVE, fine_idx, self.emissive.copy())
        dw.put_reduction(DIVQ_TOTAL, ReductionVariable(self.last_divq_total, "sum"))
        return capture_state(
            dw,
            step=self.step,
            time=self.time,
            grid=self.grid,
            streams=self.streams,
            assignment=self.assignment,
        )

    def restore(self, state: SimulationState) -> None:
        """Adopt a captured state (mesh must match; decomposition need
        not — the current assignment, possibly post-failure, stands)."""
        verify_layout(self.grid, state.layout)
        fine_idx = self.grid.num_levels - 1
        entry = next(
            (e for e in state.level_entries
             if e.name == EMISSIVE.name and e.level_index == fine_idx),
            None,
        )
        if entry is None:
            raise ResilienceError("checkpoint has no emissive field; not a campaign state")
        self.emissive = entry.array.copy()
        self.step = state.step
        self.time = state.time
        state.restore_streams(self.streams)
        for name, value, _op in state.reductions:
            if name == DIVQ_TOTAL.name:
                self.last_divq_total = value

    # ------------------------------------------------------------------
    # failure response
    # ------------------------------------------------------------------
    def lose_ranks(self, dead_ranks: List[int]) -> Dict[str, object]:
        """Re-home the dead ranks' patches onto survivors and renumber.

        Returns a summary of the re-decomposition (who inherited how
        many patches). Raises :class:`~repro.util.errors.GridError` via
        the load balancer if nobody survives.
        """
        before = dict(self.assignment)
        reassigned = reassign_on_failure(self.fine.patches, self.assignment, dead_ranks)
        self.assignment, self.num_ranks = compact_ranks(reassigned)
        moved = sum(
            1 for pid in before
            if before[pid] in set(dead_ranks)
        )
        return {
            "dead_ranks": sorted(int(r) for r in dead_ranks),
            "surviving_ranks": self.num_ranks,
            "patches_rehomed": moved,
        }


# ----------------------------------------------------------------------
# the drill
# ----------------------------------------------------------------------
@dataclass
class RecoveryEvent:
    """One death-and-restore cycle."""

    at_step: int
    dead_ranks: List[int]
    survivors: int
    restored_step: int
    steps_replayed: int
    restore_seconds: float
    patches_rehomed: int

    def as_dict(self) -> dict:
        return {
            "at_step": self.at_step,
            "dead_ranks": self.dead_ranks,
            "survivors": self.survivors,
            "restored_step": self.restored_step,
            "steps_replayed": self.steps_replayed,
            "restore_seconds": self.restore_seconds,
            "patches_rehomed": self.patches_rehomed,
        }


@dataclass
class DrillReport:
    """What a kill-and-recover drill did and how it ended."""

    num_steps: int
    initial_ranks: int
    final_ranks: int
    checkpoints_saved: int = 0
    chunk_faults: List[dict] = field(default_factory=list)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    final_step: int = 0
    #: flight-recorder postmortems written for killed ranks
    flightrec_dumps: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "num_steps": self.num_steps,
            "initial_ranks": self.initial_ranks,
            "final_ranks": self.final_ranks,
            "checkpoints_saved": self.checkpoints_saved,
            "chunk_faults": self.chunk_faults,
            "recoveries": [r.as_dict() for r in self.recoveries],
            "final_step": self.final_step,
            "flightrec_dumps": self.flightrec_dumps,
        }


class RecoveryOrchestrator:
    """Run a campaign to completion under a fault plan.

    Each loop iteration either injects the failures scheduled before
    the next step or executes that step; every injected event fires at
    most once, so the replay after a restore passes cleanly through the
    step where the failure originally struck (as a real re-submitted
    job would — the node is already gone).
    """

    def __init__(
        self,
        campaign: RadiationCampaign,
        checkpointer: Checkpointer,
        fault_plan: Optional[FaultPlan] = None,
        flightrec_dir: Optional[str] = None,
    ) -> None:
        self.campaign = campaign
        self.checkpointer = checkpointer
        self.plan = fault_plan if fault_plan is not None else FaultPlan()
        self._fired: set = set()
        #: where rank-death postmortems land (None = next to the
        #: checkpoint store)
        self.flightrec_dir = (
            flightrec_dir if flightrec_dir is not None else str(checkpointer.root)
        )
        #: flightrec_rank<k>.json paths written by recoveries this run
        self.flightrec_dumps: List[str] = []

    # ------------------------------------------------------------------
    def run(self, num_steps: int) -> DrillReport:
        campaign = self.campaign
        report = DrillReport(
            num_steps=num_steps,
            initial_ranks=campaign.num_ranks,
            final_ranks=campaign.num_ranks,
        )
        # step-0 checkpoint: recovery always has a valid floor to land on
        self.checkpointer.save(campaign.capture())
        report.checkpoints_saved += 1
        while campaign.step < num_steps:
            next_step = campaign.step + 1
            for event in self.plan.chunk_faults_at(next_step):
                key = ("chunk", event.kind, event.step, event.target)
                if key in self._fired:
                    continue
                self._fired.add(key)
                applied = self._apply_chunk_fault(event)
                if applied:
                    report.chunk_faults.append(applied)
            deaths = [
                r for r in self.plan.rank_deaths_at(next_step)
                if ("death", next_step, r) not in self._fired
            ]
            if deaths and campaign.num_ranks > 1:
                for r in deaths:
                    self._fired.add(("death", next_step, r))
                self._recover(next_step, deaths, report)
                continue
            campaign.step_once()
            if campaign.step < num_steps and self.checkpointer.should_checkpoint(
                campaign.step
            ):
                self.checkpointer.save(campaign.capture())
                report.checkpoints_saved += 1
        report.final_step = campaign.step
        report.final_ranks = campaign.num_ranks
        report.flightrec_dumps = list(self.flightrec_dumps)
        return report

    # ------------------------------------------------------------------
    def _recover(
        self, at_step: int, plan_targets: List[int], report: DrillReport
    ) -> None:
        campaign = self.campaign
        # plan targets are rank ids of the original configuration; map
        # them onto the current (possibly already shrunken) rank set and
        # always leave at least one survivor
        dead = sorted({int(r) % campaign.num_ranks for r in plan_targets})
        if len(dead) >= campaign.num_ranks:
            dead = dead[: campaign.num_ranks - 1]
        # the black box comes off the wreck first: dump each killed
        # rank's recent history before its entries age out of the ring
        recorder = get_flight_recorder()
        recorder.record(
            "failure", "rank-death", step=at_step, dead_ranks=list(dead)
        )
        for r in dead:
            path = recorder.dump(
                self.flightrec_dir, rank=r,
                reason=f"rank {r} killed at step {at_step}",
            )
            self.flightrec_dumps.append(str(path))
        rehoming = campaign.lose_ranks(dead)
        t = Timer("restore")
        with t:
            state, restored_step = self.checkpointer.load_latest_valid(
                before=campaign.step
            )
            campaign.restore(state)
        report.recoveries.append(
            RecoveryEvent(
                at_step=at_step,
                dead_ranks=dead,
                survivors=campaign.num_ranks,
                restored_step=restored_step,
                steps_replayed=(at_step - 1) - restored_step,
                restore_seconds=t.elapsed,
                patches_rehomed=int(rehoming["patches_rehomed"]),
            )
        )

    # ------------------------------------------------------------------
    def _apply_chunk_fault(self, event: FaultEvent) -> Optional[dict]:
        """Damage a chunk of the newest checkpoint on disk.

        Prefers a chunk unique to the newest manifest (content
        addressing shares unchanged chunks across checkpoints, and
        corrupting a shared one would take out the fallback too — a
        correlated failure the drill is not scripting)."""
        ckpt = self.checkpointer
        steps = ckpt.steps()
        if len(steps) < 2:
            # never damage the only checkpoint: the drill scripts a
            # survivable corruption, not an unrecoverable run
            return None
        newest = steps[-1]

        def chunk_digests(step: int) -> List[str]:
            try:
                manifest = json.loads(ckpt.manifest_path(step).read_text())
                refs = manifest["payload"]["chunks"]
                return [refs[k]["sha256"] for k in sorted(refs)]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                return []

        shared = set()
        for step in steps[:-1]:
            shared.update(chunk_digests(step))
        digests = chunk_digests(newest)
        if not digests:
            return None
        unique = [d for d in digests if d not in shared]
        digest = (unique or digests)[0]
        path = ckpt.chunk_path(digest)
        if not path.exists():
            return None
        data = bytearray(path.read_bytes())
        if event.kind == "chunk-torn":
            data = data[: max(1, len(data) // 2)]
        else:
            data[len(data) // 2] ^= 0xFF
        # deliberately NOT atomic: this models the storage layer
        # damaging a committed file, not a torn writer
        path.write_bytes(bytes(data))  # repro: allow(fs-non-atomic-publish)
        return {"kind": event.kind, "step": newest, "sha256": digest}
