"""Content-addressed, incremental checkpointing.

Layout on disk::

    <root>/
      chunks/<aa>/<sha256>.npy     # one array each, named by content hash
      ckpt-000042.json             # manifest: payload + integrity hash

Each array in a :class:`~repro.resilience.state.SimulationState` is
serialized to ``.npy`` bytes, hashed, and stored once per distinct
content — arrays unchanged since the previous checkpoint are *reused*,
not rewritten, which is what keeps checkpoint cost proportional to the
amount of state that actually changed (the paper's runs checkpoint a
136M-cell warehouse; rewriting static geometry every cadence would
swamp the PFS). Chunk files and manifests are published with
write-then-rename (:mod:`repro.util.atomic`), so a writer killed
mid-checkpoint leaves either no manifest (the checkpoint simply never
happened) or a complete one.

Integrity is verified end-to-end on load: the manifest carries a
SHA-256 of its own canonical payload (detects torn or hand-edited
manifests) and every chunk is re-hashed against its name (detects
storage-layer corruption). A chunk that fails verification is
*quarantined* — deleted — before the error propagates; this matters
because content addressing dedupes on file existence, so a corrupt
chunk left in place would poison every future checkpoint that produces
the same content.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
import time as _time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.perf.metrics import MetricsRegistry, get_metrics, timed
from repro.resilience.state import SimulationState
from repro.util.atomic import atomic_write_bytes, atomic_write_text
from repro.util.errors import ResilienceError

MANIFEST_RE = re.compile(r"^ckpt-(\d{6})\.json$")


def _array_bytes(array: np.ndarray) -> bytes:
    buf = io.BytesIO()
    np.save(buf, array, allow_pickle=False)
    return buf.getvalue()


def _payload_digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Checkpointer:
    """Writes, prunes, validates, and restores checkpoints.

    Cadence is every ``every_steps`` timesteps, OR'd with an optional
    wall-clock interval ``every_seconds`` (whichever fires first), so
    cheap steps don't starve durability and expensive steps don't
    checkpoint redundantly.
    """

    def __init__(
        self,
        root,
        every_steps: int = 1,
        every_seconds: Optional[float] = None,
        keep: int = 5,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if every_steps < 1:
            raise ResilienceError(f"every_steps must be >= 1, got {every_steps}")
        if keep < 1:
            raise ResilienceError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.chunk_dir = self.root / "chunks"
        self.chunk_dir.mkdir(parents=True, exist_ok=True)
        self.every_steps = int(every_steps)
        self.every_seconds = every_seconds
        self.keep = int(keep)
        self.metrics = metrics if metrics is not None else get_metrics()
        self._last_checkpoint_wall: Optional[float] = None

    # ------------------------------------------------------------------
    # cadence
    # ------------------------------------------------------------------
    def should_checkpoint(self, step: int, now: Optional[float] = None) -> bool:
        if step % self.every_steps == 0:
            return True
        if self.every_seconds is not None:
            now = _time.monotonic() if now is None else now
            last = self._last_checkpoint_wall
            if last is None or now - last >= self.every_seconds:
                return True
        return False

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def manifest_path(self, step: int) -> Path:
        return self.root / f"ckpt-{step:06d}.json"

    def chunk_path(self, digest: str) -> Path:
        return self.chunk_dir / digest[:2] / f"{digest}.npy"

    def steps(self) -> List[int]:
        """Steps with a manifest on disk, ascending (validity untested)."""
        out = []
        for p in self.root.iterdir():
            m = MANIFEST_RE.match(p.name)
            if m:
                out.append(int(m.group(1)))
        return sorted(out)

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------
    def save(self, state: SimulationState) -> Path:
        """Write one checkpoint; returns the manifest path.

        Chunks are published before the manifest: the manifest is the
        commit record, so a crash at any point before its rename leaves
        only unreferenced chunks (garbage-collected by :meth:`prune`),
        never a manifest pointing at missing data.
        """
        with timed(self.metrics, "resilience.checkpoint"):
            chunks: Dict[str, dict] = {}
            written = reused = 0
            bytes_written = 0
            for key, array in state.arrays():
                data = _array_bytes(array)
                digest = hashlib.sha256(data).hexdigest()
                path = self.chunk_path(digest)
                if path.exists():
                    reused += 1
                else:
                    path.parent.mkdir(parents=True, exist_ok=True)
                    atomic_write_bytes(path, data)
                    written += 1
                    bytes_written += len(data)
                chunks[key] = {"sha256": digest, "nbytes": len(data)}
            payload = {
                "format": 1,
                "step": state.step,
                "meta": state.metadata(),
                "chunks": chunks,
            }
            manifest = {"payload": payload, "sha256": _payload_digest(payload)}
            path = self.manifest_path(state.step)
            atomic_write_text(path, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
            self._last_checkpoint_wall = _time.monotonic()
            self.prune()
        self.metrics.counter("resilience.checkpoint.saved").inc()
        self.metrics.counter("resilience.checkpoint.chunks_written").inc(written)
        self.metrics.counter("resilience.checkpoint.chunks_reused").inc(reused)
        self.metrics.counter("resilience.checkpoint.bytes_written").inc(bytes_written)
        self.metrics.gauge("resilience.checkpoint.last_step").set(state.step)
        return path

    # ------------------------------------------------------------------
    # load
    # ------------------------------------------------------------------
    def load(self, step: int) -> SimulationState:
        """Load and fully verify the checkpoint at ``step``.

        Raises :class:`ResilienceError` on a missing manifest, a torn
        or tampered manifest (payload hash mismatch), a missing chunk,
        or a chunk whose content no longer matches its name. Bad chunk
        files are deleted so a later re-save of identical content
        rewrites them instead of deduping against corruption.
        """
        with timed(self.metrics, "resilience.restore"):
            path = self.manifest_path(step)
            if not path.exists():
                raise ResilienceError(f"no checkpoint manifest for step {step} in {self.root}")
            try:
                manifest = json.loads(path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ResilienceError(
                    f"checkpoint manifest {path.name} is not valid JSON "
                    f"(torn write or corruption): {exc}"
                ) from exc
            payload = manifest.get("payload")
            recorded = manifest.get("sha256")
            if not isinstance(payload, dict) or recorded is None:
                raise ResilienceError(f"checkpoint manifest {path.name} is malformed")
            if _payload_digest(payload) != recorded:
                raise ResilienceError(
                    f"checkpoint manifest {path.name} failed its integrity hash"
                )
            arrays: Dict[str, np.ndarray] = {}
            for key, ref in payload.get("chunks", {}).items():
                arrays[key] = self._read_chunk(key, ref["sha256"])
            return SimulationState.from_metadata(payload["meta"], arrays)

    def _read_chunk(self, key: str, digest: str) -> np.ndarray:
        path = self.chunk_path(digest)
        if not path.exists():
            raise ResilienceError(f"checkpoint chunk for {key} missing: {path.name}")
        data = path.read_bytes()
        if hashlib.sha256(data).hexdigest() != digest:
            self._quarantine(path)
            raise ResilienceError(
                f"checkpoint chunk for {key} failed verification "
                f"(expected sha256 {digest[:12]}...); chunk quarantined"
            )
        try:
            return np.load(io.BytesIO(data), allow_pickle=False)
        except ValueError as exc:
            self._quarantine(path)
            raise ResilienceError(
                f"checkpoint chunk for {key} is not a valid .npy file: {exc}"
            ) from exc

    def _quarantine(self, path: Path) -> None:
        """Remove a chunk that failed verification. Content addressing
        dedupes on existence, so leaving the file would make the
        corruption permanent."""
        try:
            path.unlink()
        except OSError:
            pass
        self.metrics.counter("resilience.checkpoint.quarantined").inc()

    def load_latest_valid(
        self, before: Optional[int] = None
    ) -> Tuple[SimulationState, int]:
        """Newest checkpoint that passes full verification.

        Walks manifests newest-first (optionally only those at steps
        ``<= before``), skipping any that fail validation — this is the
        recovery path's answer to torn and corrupt checkpoints. Raises
        :class:`ResilienceError` only when *no* checkpoint survives.
        """
        candidates = [s for s in self.steps() if before is None or s <= before]
        errors: List[str] = []
        for step in reversed(candidates):
            try:
                return self.load(step), step
            except ResilienceError as exc:
                self.metrics.counter("resilience.checkpoint.invalid").inc()
                errors.append(f"step {step}: {exc}")
        detail = ("; ".join(errors)) or "no manifests on disk"
        raise ResilienceError(f"no valid checkpoint in {self.root} ({detail})")

    # ------------------------------------------------------------------
    # retention
    # ------------------------------------------------------------------
    def prune(self) -> List[int]:
        """Keep the newest ``keep`` manifests; GC unreferenced chunks.

        Returns the dropped steps. Chunk GC runs against the union of
        chunks referenced by *surviving* manifests, so shared (deduped)
        chunks stay as long as any retained checkpoint needs them.
        Manifests that fail to parse still count against retention age
        but contribute no references.
        """
        steps = self.steps()
        dropped = steps[:-self.keep] if len(steps) > self.keep else []
        for step in dropped:
            try:
                self.manifest_path(step).unlink()
            except OSError:
                pass
        referenced = set()
        for step in steps[-self.keep:]:
            try:
                manifest = json.loads(self.manifest_path(step).read_text())
                for ref in manifest["payload"]["chunks"].values():
                    referenced.add(ref["sha256"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
        removed_chunks = 0
        for sub in self.chunk_dir.iterdir():
            if not sub.is_dir():
                continue
            for chunk in sub.iterdir():
                if chunk.suffix == ".npy" and chunk.stem not in referenced:
                    try:
                        chunk.unlink()
                        removed_chunks += 1
                    except OSError:
                        pass
        if dropped:
            self.metrics.counter("resilience.checkpoint.pruned").inc(len(dropped))
        if removed_chunks:
            self.metrics.counter("resilience.checkpoint.chunks_collected").inc(removed_chunks)
        return dropped
