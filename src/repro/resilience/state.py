"""Checkpointable simulation state.

A :class:`SimulationState` is everything a run needs to resume
bit-identically: the DataWarehouse contents (cell-centred, per-level,
and reduction variables), the timestep counter and simulated time, the
positions of every live RNG stream, and the grid/assignment layout the
state was captured under. It is a plain in-memory container — the
:mod:`~repro.resilience.checkpoint` module handles durability — so the
same capture path serves checkpoints, in-memory rollback in the
recovery orchestrator, and tests.

The layout block is *descriptive*, not prescriptive: restore verifies
the mesh matches (a checkpoint from a 128^3 run must not silently feed
a 64^3 run) but deliberately ignores the rank assignment, because
recovering from a rank death means restoring old state under a *new*
decomposition. Decomposition independence of results is guaranteed by
the RNG keying (per-patch, never per-rank — see :mod:`repro.util.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dw.datawarehouse import DataWarehouse
from repro.dw.label import cc, per_level, reduction
from repro.dw.variables import CCVariable, ReductionVariable
from repro.grid.box import Box
from repro.grid.grid import Grid
from repro.util.errors import ResilienceError
from repro.util.rng import RandomStreams


@dataclass
class CCEntry:
    """One cell-centred variable on one patch."""

    name: str
    patch_id: int
    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]
    array: np.ndarray

    @property
    def key(self) -> str:
        return f"cc/{self.name}/{self.patch_id}"


@dataclass
class LevelEntry:
    """One per-level variable."""

    name: str
    level_index: int
    array: np.ndarray

    @property
    def key(self) -> str:
        return f"level/{self.name}/{self.level_index}"


@dataclass
class SimulationState:
    """A resumable snapshot of one generation of simulation state."""

    step: int = 0
    time: float = 0.0
    generation: int = 0
    cc_entries: List[CCEntry] = field(default_factory=list)
    level_entries: List[LevelEntry] = field(default_factory=list)
    reductions: List[Tuple[str, float, str]] = field(default_factory=list)
    rng: Optional[dict] = None
    layout: Optional[dict] = None
    extra: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # array access (the checkpointer's chunking surface)
    # ------------------------------------------------------------------
    def arrays(self) -> List[Tuple[str, np.ndarray]]:
        """Every array in the state as deterministic ``(key, array)``
        pairs — the unit of content-addressed chunking."""
        out: List[Tuple[str, np.ndarray]] = []
        for entry in self.cc_entries:
            out.append((entry.key, entry.array))
        for entry in self.level_entries:
            out.append((entry.key, entry.array))
        return out

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for _, a in self.arrays())

    # ------------------------------------------------------------------
    # metadata payload (everything except the array bytes)
    # ------------------------------------------------------------------
    def metadata(self) -> dict:
        """The JSON-able manifest payload; arrays are referenced by key
        only, their bytes live in checkpoint chunks."""
        return {
            "step": self.step,
            "time": self.time,
            "generation": self.generation,
            "cc": [
                {
                    "name": e.name,
                    "patch_id": e.patch_id,
                    "lo": list(e.lo),
                    "hi": list(e.hi),
                    "key": e.key,
                }
                for e in self.cc_entries
            ],
            "level": [
                {"name": e.name, "level_index": e.level_index, "key": e.key}
                for e in self.level_entries
            ],
            "reductions": [
                {"name": n, "value": v, "op": op} for n, v, op in self.reductions
            ],
            "rng": self.rng,
            "layout": self.layout,
            "extra": self.extra,
        }

    @classmethod
    def from_metadata(
        cls, meta: dict, arrays: Dict[str, np.ndarray]
    ) -> "SimulationState":
        """Rebuild a state from a manifest payload plus fetched arrays."""
        state = cls(
            step=int(meta["step"]),
            time=float(meta["time"]),
            generation=int(meta.get("generation", 0)),
            rng=meta.get("rng"),
            layout=meta.get("layout"),
            extra=dict(meta.get("extra", {})),
        )
        for e in meta.get("cc", []):
            key = e["key"]
            if key not in arrays:
                raise ResilienceError(f"checkpoint payload references missing array {key}")
            state.cc_entries.append(
                CCEntry(
                    name=e["name"],
                    patch_id=int(e["patch_id"]),
                    lo=tuple(int(x) for x in e["lo"]),
                    hi=tuple(int(x) for x in e["hi"]),
                    array=arrays[key],
                )
            )
        for e in meta.get("level", []):
            key = e["key"]
            if key not in arrays:
                raise ResilienceError(f"checkpoint payload references missing array {key}")
            state.level_entries.append(
                LevelEntry(
                    name=e["name"],
                    level_index=int(e["level_index"]),
                    array=arrays[key],
                )
            )
        for r in meta.get("reductions", []):
            state.reductions.append((r["name"], float(r["value"]), r["op"]))
        return state

    # ------------------------------------------------------------------
    # DataWarehouse round-trip
    # ------------------------------------------------------------------
    def build_dw(self) -> DataWarehouse:
        """Materialise the state as a fresh DataWarehouse generation."""
        dw = DataWarehouse(generation=self.generation)
        for e in self.cc_entries:
            var = CCVariable(Box(e.lo, e.hi), e.array.copy())
            dw.put(cc(e.name), e.patch_id, var)
        for e in self.level_entries:
            dw.put_level(per_level(e.name), e.level_index, e.array.copy())
        for name, value, op in self.reductions:
            dw.put_reduction(reduction(name), ReductionVariable(value, op))
        return dw

    def restore_streams(self, streams: RandomStreams) -> None:
        """Rewind ``streams`` to the captured positions (no-op if the
        state carries no RNG block)."""
        if self.rng is not None:
            streams.set_state(self.rng)


def capture_state(
    dw: DataWarehouse,
    step: int,
    time: float = 0.0,
    grid: Optional[Grid] = None,
    streams: Optional[RandomStreams] = None,
    assignment: Optional[Dict[int, int]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> SimulationState:
    """Snapshot a DataWarehouse (plus RNG / layout context) for resume.

    Array data is *copied* so the captured state stays valid if the run
    keeps mutating the warehouse in place.
    """
    state = SimulationState(
        step=int(step),
        time=float(time),
        generation=dw.generation,
        rng=streams.get_state() if streams is not None else None,
        layout=grid_layout(grid, assignment) if grid is not None else None,
        extra=dict(extra or {}),
    )
    for name, patch_id, var in dw.cc_items():
        state.cc_entries.append(
            CCEntry(name, patch_id, var.box.lo, var.box.hi, var.data.copy())
        )
    for name, level_index, data in dw.level_items():
        state.level_entries.append(LevelEntry(name, level_index, np.array(data, copy=True)))
    for name, var in dw.reduction_items():
        state.reductions.append((name, float(var.value), var.op))
    return state


# ----------------------------------------------------------------------
# grid layout description
# ----------------------------------------------------------------------
def grid_layout(
    grid: Grid, assignment: Optional[Dict[int, int]] = None
) -> dict:
    """A JSON-able description of the mesh (and, optionally, which rank
    owned each patch when the state was captured)."""
    return {
        "levels": [
            {
                "index": lvl.index,
                "lo": list(lvl.domain_box.lo),
                "hi": list(lvl.domain_box.hi),
                "dx": list(lvl.dx),
                "refinement_ratio": list(lvl.refinement_ratio),
                "patches": [
                    {"id": p.patch_id, "lo": list(p.lo), "hi": list(p.hi)}
                    for p in lvl.patches
                ],
            }
            for lvl in grid.levels
        ],
        "assignment": (
            {str(pid): int(rank) for pid, rank in sorted(assignment.items())}
            if assignment is not None
            else None
        ),
    }


def verify_layout(grid: Grid, layout: Optional[dict]) -> None:
    """Check that ``grid`` has the same mesh a checkpoint was taken on.

    Only the mesh is compared — domains, spacings, and patch tilings
    per level. The recorded rank assignment is informational: restoring
    onto fewer ranks after a failure is the whole point.
    """
    if layout is None:
        return
    recorded = layout.get("levels", [])
    if len(recorded) != grid.num_levels:
        raise ResilienceError(
            f"checkpoint has {len(recorded)} levels, grid has {grid.num_levels}"
        )
    for meta, lvl in zip(recorded, grid.levels):
        if tuple(meta["lo"]) != lvl.domain_box.lo or tuple(meta["hi"]) != lvl.domain_box.hi:
            raise ResilienceError(
                f"level {lvl.index} domain mismatch: checkpoint "
                f"[{meta['lo']}, {meta['hi']}) vs grid {lvl.domain_box}"
            )
        recorded_patches = {
            int(p["id"]): (tuple(p["lo"]), tuple(p["hi"])) for p in meta["patches"]
        }
        live_patches = {
            p.patch_id: (p.lo, p.hi) for p in lvl.patches
        }
        if recorded_patches != live_patches:
            raise ResilienceError(
                f"level {lvl.index} patch tiling differs from checkpoint "
                f"({len(recorded_patches)} recorded vs {len(live_patches)} live patches)"
            )
