"""Checkpoint/restart, fault injection, and recovery orchestration.

At the paper's scale — 16384 GPUs for hours — node failure is an
operating condition, not an anomaly; production campaigns live on
checkpoint/restart. This package is the reproduction's resilience
layer:

* :mod:`repro.resilience.state` — :class:`SimulationState`, the
  checkpointable snapshot of a DataWarehouse generation plus timestep,
  RNG stream positions, and grid layout;
* :mod:`repro.resilience.checkpoint` — :class:`Checkpointer`,
  content-addressed incremental snapshots (SHA-256-named chunks,
  atomic publication, manifest integrity hashes, retention pruning);
* :mod:`repro.resilience.faultplan` — :class:`FaultPlan`, scripted and
  seeded-random failure injection (rank deaths, worker deaths, solve
  faults, checkpoint corruption);
* :mod:`repro.resilience.orchestrator` — :class:`RadiationCampaign`
  and :class:`RecoveryOrchestrator`, the kill-and-recover drill that
  proves restores are bit-identical and rank deaths are survivable via
  re-decomposition onto the survivors;
* :mod:`repro.resilience.cli` — ``python -m repro resilience
  [checkpoint|restore|drill]``.
"""

from repro.resilience.state import (
    CCEntry,
    LevelEntry,
    SimulationState,
    capture_state,
    grid_layout,
    verify_layout,
)
from repro.resilience.checkpoint import Checkpointer
from repro.resilience.faultplan import FaultEvent, FaultPlan
from repro.resilience.orchestrator import (
    DrillReport,
    RadiationCampaign,
    RecoveryEvent,
    RecoveryOrchestrator,
)
from repro.util.errors import InjectedFault, ResilienceError

__all__ = [
    "CCEntry",
    "Checkpointer",
    "DrillReport",
    "FaultEvent",
    "FaultPlan",
    "InjectedFault",
    "LevelEntry",
    "RadiationCampaign",
    "RecoveryEvent",
    "RecoveryOrchestrator",
    "ResilienceError",
    "SimulationState",
    "capture_state",
    "grid_layout",
    "verify_layout",
]
