"""Scripted and seeded-random fault injection.

A :class:`FaultPlan` is a declarative list of failures to inject into a
run — which rank dies at which step, which worker shard is dead on
arrival, which checkpoint gets torn or corrupted, which service solve
throws. Drills build a plan (scripted for unit tests, seeded-random for
the CI kill-and-recover smoke), hand it to the component under test,
and then assert that recovery produced correct results *and* that the
failure recovered from was the injected one (every injected failure
raises :class:`~repro.util.errors.InjectedFault`).

This generalises the ad-hoc ``fault_hook`` the service worker pool grew
for retry testing: :meth:`FaultPlan.service_hook` adapts a plan to that
hook signature, so the same plan object can script worker retries,
rank deaths, and checkpoint corruption in one drill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.util.errors import InjectedFault, ResilienceError
from repro.util.rng import spawn_stream

#: recognised fault kinds
KINDS = (
    "rank-death",      # a scheduler rank disappears before `step` executes
    "worker-death",    # a service worker shard is dead (routes to survivors)
    "solve-fault",     # a service solve raises on its first `attempts` tries
    "chunk-corrupt",   # flip a byte in a chunk of the newest checkpoint
    "chunk-torn",      # truncate a chunk of the newest checkpoint
    # doctor-drill causes (repro.perf.doctor): fleet-level injections
    # whose root cause the diagnosis engine must name from telemetry
    "shard-death",     # SIGKILL the busiest fabric shard mid-claim
    "worker-slowdown", # a serve worker solves `attempts`x slower
    "cache-poison",    # corrupt every payload in the disk result cache
)

#: the subset a doctor drill injects, in drill order
DOCTOR_KINDS = ("shard-death", "worker-slowdown", "cache-poison")

#: spawn-key purpose for seeded plan generation (see util.rng)
_PLAN_STREAM_PURPOSE = 7401


@dataclass(frozen=True)
class FaultEvent:
    """One scripted failure.

    ``step`` scopes step-indexed kinds (rank-death, chunk-*);
    ``target`` is the dying rank / worker id; ``match`` is a request
    fingerprint prefix for solve faults (``None`` = any); ``attempts``
    is how many consecutive tries of a matching solve fail before it is
    allowed to succeed (retry testing).
    """

    kind: str
    step: Optional[int] = None
    target: Optional[int] = None
    match: Optional[str] = None
    attempts: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ResilienceError(f"unknown fault kind {self.kind!r} (use {KINDS})")

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "step": self.step,
            "target": self.target,
            "match": self.match,
            "attempts": self.attempts,
        }


@dataclass
class FaultPlan:
    """An ordered collection of :class:`FaultEvent` with query helpers."""

    events: List[FaultEvent] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        num_steps: int,
        num_ranks: int,
        deaths: int = 1,
        corrupt_checkpoint: bool = True,
        checkpoint_every: int = 2,
    ) -> "FaultPlan":
        """A reproducible random plan for kill-and-recover drills.

        Deaths land mid-run, no earlier than the first cadence
        checkpoint (``checkpoint_every`` must match the drill's
        checkpointer) — early enough that recovery matters, late enough
        that corrupting the newest checkpoint still leaves an older
        valid one. When ``corrupt_checkpoint`` is set, that corruption
        is scheduled just before the first death, so recovery must
        *skip* the damaged checkpoint and fall back — the
        torn-checkpoint path gets exercised on every drill.
        """
        if num_ranks < 2:
            raise ResilienceError("seeded plans need >= 2 ranks (someone must survive)")
        deaths = min(deaths, num_ranks - 1)
        gen = spawn_stream(seed, _PLAN_STREAM_PURPOSE)
        lo = min(max(1, num_steps // 3, checkpoint_every + 1), num_steps)
        hi = min(max(lo + 1, (2 * num_steps) // 3), num_steps + 1)
        victims = gen.choice(num_ranks, size=deaths, replace=False)
        events: List[FaultEvent] = []
        first_death_step: Optional[int] = None
        for rank in sorted(int(r) for r in victims):
            step = int(gen.integers(lo, hi))
            if first_death_step is None or step < first_death_step:
                first_death_step = step
            events.append(FaultEvent("rank-death", step=step, target=rank))
        if corrupt_checkpoint and first_death_step is not None:
            events.append(FaultEvent("chunk-corrupt", step=first_death_step))
        events.sort(key=lambda e: (e.step if e.step is not None else -1, e.kind, e.target or 0))
        return cls(events)

    @classmethod
    def from_dicts(cls, dicts: Sequence[dict]) -> "FaultPlan":
        return cls([FaultEvent(**d) for d in dicts])

    def as_dicts(self) -> List[dict]:
        return [e.as_dict() for e in self.events]

    # ------------------------------------------------------------------
    # step-indexed queries (recovery orchestrator)
    # ------------------------------------------------------------------
    def rank_deaths_at(self, step: int) -> List[int]:
        """Ranks that die before ``step`` executes (sorted, deduped)."""
        return sorted(
            {
                e.target
                for e in self.events
                if e.kind == "rank-death" and e.step == step and e.target is not None
            }
        )

    def chunk_faults_at(self, step: int) -> List[FaultEvent]:
        """Checkpoint corruptions to apply before ``step`` executes."""
        return [
            e
            for e in self.events
            if e.kind in ("chunk-corrupt", "chunk-torn") and e.step == step
        ]

    # ------------------------------------------------------------------
    # service-side queries (worker pool)
    # ------------------------------------------------------------------
    def dead_workers(self) -> List[int]:
        """Worker shards that are dead for the whole run."""
        return sorted(
            {
                e.target
                for e in self.events
                if e.kind == "worker-death" and e.target is not None
            }
        )

    def worker_dead(self, worker_id: int) -> bool:
        return worker_id in self.dead_workers()

    def service_hook(self) -> Callable[[str, int], None]:
        """Adapt solve faults to the worker pool's ``fault_hook``
        protocol: ``hook(fingerprint, attempt)`` raising to fail that
        attempt. A solve-fault event fails matching fingerprints while
        ``attempt <= attempts``, then lets retries succeed."""
        events = [e for e in self.events if e.kind == "solve-fault"]

        def hook(fingerprint: str, attempt: int) -> None:
            for e in events:
                if e.match is not None and not fingerprint.startswith(e.match):
                    continue
                if attempt <= e.attempts:
                    raise InjectedFault(
                        f"injected solve fault (attempt {attempt}/{e.attempts}) "
                        f"for {fingerprint[:12]}"
                    )

        return hook

    # ------------------------------------------------------------------
    # doctor-drill queries (repro.perf.doctor)
    # ------------------------------------------------------------------
    def doctor_events(self) -> List[FaultEvent]:
        """The fleet-level injections a doctor drill performs, in plan
        order; each one's ``kind`` is the ground-truth root cause the
        doctor's top-ranked hypothesis must name."""
        return [e for e in self.events if e.kind in DOCTOR_KINDS]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
