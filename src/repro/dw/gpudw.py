"""The GPU DataWarehouse with a per-mesh-level database.

Contribution (ii) of the paper: Titan's K20X has 6 GB of device memory
against 32 GB host-side, and the naive port copied the coarse radiation
mesh's properties to the GPU *once per fine patch task* — redundant
copies that blew the device budget and saturated PCIe. The fix was a
level database inside the GPU DW: one device-resident copy of each
per-level variable, shared by every patch task running on that GPU.

This model keeps the arrays (host memory doubles as "device" memory in
this reproduction) and does exact byte accounting: capacity checks,
H2D/D2H traffic, and peak usage. The ``use_level_db`` flag switches
between the shared-copy design and the legacy per-task-copy behaviour,
which is what the E7 ablation measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.dw.label import VarKind, VarLabel
from repro.dw.variables import CCVariable
from repro.util.errors import DataWarehouseError

#: K20X global memory
DEFAULT_CAPACITY_BYTES = 6 * 1024 ** 3


@dataclass
class PCIeStats:
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    h2d_transfers: int = 0
    d2h_transfers: int = 0


class GPUDataWarehouse:
    """Device-side variable store with capacity and traffic accounting."""

    def __init__(
        self,
        device_id: int = 0,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        use_level_db: bool = True,
    ) -> None:
        if capacity_bytes <= 0:
            raise DataWarehouseError("capacity must be positive")
        self.device_id = device_id
        self.capacity_bytes = int(capacity_bytes)
        self.use_level_db = bool(use_level_db)
        self.stats = PCIeStats()
        self.usage = 0
        self.peak_usage = 0
        # per-patch device variables: (name, patch) -> (array, nbytes)
        self._patch_vars: Dict[Tuple[str, int], Tuple[np.ndarray, int]] = {}
        # shared level database: (name, level) -> (array, nbytes)
        self._level_db: Dict[Tuple[str, int], Tuple[np.ndarray, int]] = {}
        # legacy mode: per-task level copies: (name, level, task) -> nbytes
        self._task_level_copies: Dict[Tuple[str, int, int], Tuple[np.ndarray, int]] = {}

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    def _reserve(self, nbytes: int, what: str) -> None:
        if self.usage + nbytes > self.capacity_bytes:
            raise DataWarehouseError(
                f"GPU {self.device_id} out of memory uploading {what}: "
                f"{self.usage + nbytes} > capacity {self.capacity_bytes} bytes"
            )
        self.usage += nbytes
        self.peak_usage = max(self.peak_usage, self.usage)

    def _release_bytes(self, nbytes: int) -> None:
        self.usage -= nbytes
        if self.usage < 0:
            raise DataWarehouseError("GPU DW byte accounting went negative")

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.usage

    # ------------------------------------------------------------------
    # per-patch variables (one copy per patch task, as on the CPU side)
    # ------------------------------------------------------------------
    def upload_patch_var(self, label: VarLabel, patch_id: int, var: CCVariable) -> np.ndarray:
        key = (label.name, patch_id)
        if key in self._patch_vars:
            return self._patch_vars[key][0]  # already resident
        nbytes = var.nbytes
        self._reserve(nbytes, f"{label.name}@patch{patch_id}")
        device = var.data  # host array doubles as device memory
        self._patch_vars[key] = (device, nbytes)
        self.stats.h2d_bytes += nbytes
        self.stats.h2d_transfers += 1
        return device

    def get_patch_var(self, label: VarLabel, patch_id: int) -> np.ndarray:
        try:
            return self._patch_vars[(label.name, patch_id)][0]
        except KeyError:
            raise DataWarehouseError(
                f"{label.name} not resident on GPU {self.device_id} for patch {patch_id}"
            ) from None

    def download_patch_var(self, label: VarLabel, patch_id: int) -> np.ndarray:
        data = self.get_patch_var(label, patch_id)
        self.stats.d2h_bytes += data.nbytes
        self.stats.d2h_transfers += 1
        return data

    def release_patch_var(self, label: VarLabel, patch_id: int) -> None:
        key = (label.name, patch_id)
        entry = self._patch_vars.pop(key, None)
        if entry is None:
            raise DataWarehouseError(f"release of non-resident {key}")
        self._release_bytes(entry[1])

    # ------------------------------------------------------------------
    # level variables
    # ------------------------------------------------------------------
    def upload_level_var(
        self,
        label: VarLabel,
        level_index: int,
        data: np.ndarray,
        task_id: Optional[int] = None,
    ) -> np.ndarray:
        """Make a per-level variable device-resident for a task.

        With the level DB the first caller pays the transfer and every
        later task shares the single copy; in legacy mode every task
        uploads (and holds) its own copy — ``task_id`` is required so
        the copies can be released per task.
        """
        if label.kind is not VarKind.PER_LEVEL:
            raise DataWarehouseError(f"upload_level_var needs a PER_LEVEL label")
        if self.use_level_db:
            key = (label.name, level_index)
            if key in self._level_db:
                return self._level_db[key][0]
            nbytes = data.nbytes
            self._reserve(nbytes, f"level:{label.name}@L{level_index}")
            self._level_db[key] = (data, nbytes)
            self.stats.h2d_bytes += nbytes
            self.stats.h2d_transfers += 1
            return data
        if task_id is None:
            raise DataWarehouseError("legacy mode needs task_id for level uploads")
        tkey = (label.name, level_index, task_id)
        if tkey in self._task_level_copies:
            return self._task_level_copies[tkey][0]
        nbytes = data.nbytes
        self._reserve(nbytes, f"level-copy:{label.name}@L{level_index}/task{task_id}")
        self._task_level_copies[tkey] = (data, nbytes)
        self.stats.h2d_bytes += nbytes
        self.stats.h2d_transfers += 1
        return data

    def get_level_var(
        self, label: VarLabel, level_index: int, task_id: Optional[int] = None
    ) -> np.ndarray:
        if self.use_level_db:
            try:
                return self._level_db[(label.name, level_index)][0]
            except KeyError:
                raise DataWarehouseError(
                    f"level var {label.name}@L{level_index} not in level DB"
                ) from None
        try:
            return self._task_level_copies[(label.name, level_index, task_id)][0]
        except KeyError:
            raise DataWarehouseError(
                f"level var {label.name}@L{level_index} not resident for task {task_id}"
            ) from None

    def release_task(self, task_id: int) -> None:
        """Free a finishing task's private level copies (legacy mode)."""
        dead = [k for k in self._task_level_copies if k[2] == task_id]
        for k in dead:
            self._release_bytes(self._task_level_copies.pop(k)[1])

    def clear_level_db(self) -> None:
        """Drop shared level data (end of radiation timestep)."""
        for _, nbytes in self._level_db.values():
            self._release_bytes(nbytes)
        self._level_db.clear()

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def resident_summary(self) -> Dict[str, int]:
        return {
            "patch_vars": len(self._patch_vars),
            "level_db_entries": len(self._level_db),
            "task_level_copies": len(self._task_level_copies),
            "usage": self.usage,
            "peak_usage": self.peak_usage,
        }
