"""Variable labels — typed names for simulation state.

A :class:`VarLabel` identifies a variable in the DataWarehouse the way
Uintah's ``VarLabel`` does: a unique name plus a storage kind that
determines how the runtime distributes and communicates it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class VarKind(Enum):
    #: cell-centred, one array per patch, halo-exchanged
    CELL_CENTERED = "cc"
    #: one array per mesh level, shared by every task on the level
    #: (the radiative properties of the coarse radiation mesh)
    PER_LEVEL = "level"
    #: a scalar combined across patches/ranks with a reduction op
    REDUCTION = "reduction"


@dataclass(frozen=True)
class VarLabel:
    name: str
    kind: VarKind = VarKind.CELL_CENTERED

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("label name must be non-empty")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VarLabel({self.name}, {self.kind.value})"


def cc(name: str) -> VarLabel:
    return VarLabel(name, VarKind.CELL_CENTERED)


def per_level(name: str) -> VarLabel:
    return VarLabel(name, VarKind.PER_LEVEL)


def reduction(name: str) -> VarLabel:
    return VarLabel(name, VarKind.REDUCTION)
