"""The DataWarehouse subsystem: variable labels, grid variables, the
host on-demand warehouse, and the GPU warehouse with its per-level
database (paper contribution ii)."""

from repro.dw.label import VarKind, VarLabel, cc, per_level, reduction
from repro.dw.variables import CCVariable, ReductionVariable
from repro.dw.datawarehouse import DataWarehouse, DataWarehouseManager
from repro.dw.gpudw import GPUDataWarehouse, PCIeStats, DEFAULT_CAPACITY_BYTES
from repro.dw.archive import DataArchive

__all__ = [
    "DataArchive",
    "VarKind",
    "VarLabel",
    "cc",
    "per_level",
    "reduction",
    "CCVariable",
    "ReductionVariable",
    "DataWarehouse",
    "DataWarehouseManager",
    "GPUDataWarehouse",
    "PCIeStats",
    "DEFAULT_CAPACITY_BYTES",
]
