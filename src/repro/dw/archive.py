"""The data archiver: UDA-style output and checkpoint/restart.

Uintah persists simulation state into "uda" directories — one
subdirectory per saved timestep holding every variable of every patch —
from which runs are post-processed or restarted. This is that system in
miniature: a :class:`DataArchive` saves DataWarehouse generations into
``t00042/``-style subdirectories (arrays in one ``.npz``, metadata in
JSON) and reconstructs an equivalent warehouse for restart, which the
:class:`~repro.runtime.controller.SimulationController` accepts as its
starting state. Restarted runs continue bit-identically — the
checkpoint/restart invariant Uintah's regression suite enforces.
"""

from __future__ import annotations

import json
import re
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dw.datawarehouse import DataWarehouse
from repro.dw.label import VarKind, VarLabel, cc, per_level
from repro.dw.variables import CCVariable, ReductionVariable
from repro.grid.box import Box
from repro.util.atomic import atomic_savez, atomic_write_text
from repro.util.errors import DataWarehouseError

_STEP_DIR = re.compile(r"^t(\d{5,})$")


class DataArchive:
    """A uda-like on-disk archive of timestep states."""

    def __init__(self, root, every: int = 1) -> None:
        if every < 1:
            raise DataWarehouseError("archive interval must be >= 1")
        self.root = Path(root)
        self.every = int(every)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # saving
    # ------------------------------------------------------------------
    def should_save(self, step: int) -> bool:
        return step % self.every == 0

    def save(self, dw: DataWarehouse, step: int, time: float = 0.0) -> Path:
        """Persist one warehouse generation."""
        tdir = self.root / f"t{step:05d}"
        if tdir.exists():
            raise DataWarehouseError(f"timestep {step} already archived at {tdir}")
        tdir.mkdir()

        arrays: Dict[str, np.ndarray] = {}
        meta: Dict = {
            "step": step,
            "time": time,
            "generation": dw.generation,
            "cc": [],
            "level": [],
            "reductions": [],
        }
        for name, patch_id, var in dw.cc_items():
            key = f"cc::{name}::{patch_id}"
            arrays[key] = var.data
            meta["cc"].append(
                {"name": name, "patch": patch_id, "lo": list(var.box.lo),
                 "hi": list(var.box.hi), "key": key}
            )
        for name, level_index, data in dw.level_items():
            key = f"level::{name}::{level_index}"
            arrays[key] = np.asarray(data)
            meta["level"].append({"name": name, "level": level_index, "key": key})
        for name, red in dw.reduction_items():
            meta["reductions"].append(
                {"name": name, "value": float(red.value), "op": red.op}
            )

        # arrays first, metadata last: meta.json is the commit marker
        # (timesteps()/load() ignore a step dir without it), and each
        # file is published atomically, so an interrupted writer leaves
        # an invisible step, never a torn one
        atomic_savez(tdir / "data.npz", **arrays)
        atomic_write_text(tdir / "meta.json", json.dumps(meta, indent=1))
        return tdir

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def timesteps(self) -> List[int]:
        out = []
        for child in self.root.iterdir():
            m = _STEP_DIR.match(child.name)
            if m and (child / "meta.json").exists():
                out.append(int(m.group(1)))
        return sorted(out)

    def load(self, step: int) -> Tuple[DataWarehouse, Dict]:
        """Reconstruct the warehouse and return (dw, metadata).

        A corrupt or partially-written step directory (interrupted
        writer, truncated copy) raises :class:`DataWarehouseError` —
        never a bare ``KeyError``/``JSONDecodeError`` — so restart
        logic can fall back to an earlier step.
        """
        tdir = self.root / f"t{step:05d}"
        meta_path = tdir / "meta.json"
        if not meta_path.exists():
            raise DataWarehouseError(f"no archived timestep {step} under {self.root}")
        try:
            meta = json.loads(meta_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise DataWarehouseError(
                f"corrupt archive metadata {meta_path}: {exc}"
            ) from exc
        npz_path = tdir / "data.npz"
        if not npz_path.exists():
            raise DataWarehouseError(
                f"archived timestep {step} is missing {npz_path.name} "
                f"(partially written {tdir}?)"
            )
        try:
            with np.load(npz_path) as arrays:
                dw = DataWarehouse(generation=meta["generation"])
                for entry in meta["cc"]:
                    box = Box(tuple(entry["lo"]), tuple(entry["hi"]))
                    dw.put(cc(entry["name"]), entry["patch"],
                           CCVariable(box, arrays[entry["key"]].copy()))
                for entry in meta["level"]:
                    dw.put_level(
                        per_level(entry["name"]), entry["level"],
                        arrays[entry["key"]].copy(),
                    )
                for entry in meta["reductions"]:
                    dw.put_reduction(
                        VarLabel(entry["name"], VarKind.REDUCTION),
                        ReductionVariable(entry["value"], entry["op"]),
                    )
        except KeyError as exc:
            raise DataWarehouseError(
                f"archive {tdir} metadata and arrays disagree: missing {exc}"
            ) from exc
        except (zipfile.BadZipFile, ValueError, OSError, TypeError) as exc:
            raise DataWarehouseError(f"corrupt archive data {npz_path}: {exc}") from exc
        return dw, meta

    def latest(self) -> Optional[int]:
        steps = self.timesteps()
        return steps[-1] if steps else None
