"""Grid variables: array data bound to index-space regions.

:class:`CCVariable` is a cell-centred field over a box (possibly a
patch interior grown by ghost cells); :class:`ReductionVariable`
carries a scalar and its combining operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.grid.box import Box
from repro.util.errors import DataWarehouseError


class CCVariable:
    """A cell-centred array anchored at ``box.lo``."""

    def __init__(self, box: Box, data: np.ndarray = None, dtype=np.float64) -> None:
        if box.empty:
            raise DataWarehouseError(f"CCVariable over empty box {box}")
        self.box = box
        if data is None:
            self.data = np.zeros(box.extent, dtype=dtype)
        else:
            data = np.asarray(data)
            if tuple(data.shape) != box.extent:
                raise DataWarehouseError(
                    f"data shape {data.shape} != box extent {box.extent}"
                )
            self.data = data

    def view(self, region: Box) -> np.ndarray:
        """Array view of ``region`` (must be inside this variable's box)."""
        if not self.box.contains_box(region):
            raise DataWarehouseError(f"region {region} outside variable box {self.box}")
        return self.data[region.slices(origin=self.box.lo)]

    def copy_region_from(self, other: "CCVariable", region: Box) -> None:
        """Copy ``region`` (must lie in both variables) from ``other``."""
        self.view(region)[...] = other.view(region)

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def copy(self) -> "CCVariable":
        return CCVariable(self.box, self.data.copy())


_REDUCTION_OPS: Dict[str, Callable] = {
    "sum": lambda a, b: a + b,
    "min": min,
    "max": max,
}


@dataclass
class ReductionVariable:
    """A scalar plus its combiner (sum/min/max)."""

    value: float
    op: str = "sum"

    def __post_init__(self) -> None:
        if self.op not in _REDUCTION_OPS:
            raise DataWarehouseError(
                f"unknown reduction op {self.op!r} (use {sorted(_REDUCTION_OPS)})"
            )

    def combine(self, other: "ReductionVariable") -> "ReductionVariable":
        if other.op != self.op:
            raise DataWarehouseError(
                f"cannot combine reduction ops {self.op!r} and {other.op!r}"
            )
        return ReductionVariable(_REDUCTION_OPS[self.op](self.value, other.value), self.op)
