"""The on-demand DataWarehouse.

Uintah tasks never exchange data directly: they ``put`` results into
and ``get`` inputs from a DataWarehouse keyed by (label, patch), and
the runtime satisfies ghost-cell requirements behind the scenes — "the
illusion the application has access to memory it does not actually
own" (paper Section III.C). This host-side DW supports:

* per-patch cell-centred variables with ghost-region assembly from
  neighbouring patches and from *foreign* pieces received over MPI,
* per-level variables (the coarse radiation mesh's global halo
  requirement collapses to one of these), and
* scalar reduction variables.

Two warehouse generations (old/new) flow through a timestep, swapped by
:meth:`DataWarehouseManager.advance`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.grid.box import Box
from repro.grid.level import Level
from repro.dw.label import VarKind, VarLabel
from repro.dw.variables import CCVariable, ReductionVariable
from repro.util.errors import DataWarehouseError


@dataclass
class DWStats:
    """Operation counts for one warehouse generation — plain integer
    increments on the access paths, flushed to a metrics registry via
    :meth:`DataWarehouse.publish_metrics`."""

    puts: int = 0
    gets: int = 0
    foreign_adds: int = 0
    region_assemblies: int = 0
    level_puts: int = 0
    level_gets: int = 0
    reduction_puts: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class DataWarehouse:
    """One generation of simulation state."""

    def __init__(self, generation: int = 0) -> None:
        self.generation = generation
        self.stats = DWStats()
        self._cc: Dict[Tuple[str, int], CCVariable] = {}
        self._foreign: Dict[Tuple[str, int], List[CCVariable]] = {}
        self._level: Dict[Tuple[str, int], np.ndarray] = {}
        self._reductions: Dict[str, ReductionVariable] = {}

    # ------------------------------------------------------------------
    # cell-centred per-patch variables
    # ------------------------------------------------------------------
    def put(self, label: VarLabel, patch_id: int, var: CCVariable) -> None:
        if label.kind is not VarKind.CELL_CENTERED:
            raise DataWarehouseError(f"put() needs a CC label, got {label}")
        key = (label.name, patch_id)
        if key in self._cc:
            raise DataWarehouseError(
                f"{label.name} already computed on patch {patch_id} "
                f"(double-compute)"
            )
        self.stats.puts += 1
        self._cc[key] = var

    def exists(self, label: VarLabel, patch_id: int) -> bool:
        return (label.name, patch_id) in self._cc

    def get(self, label: VarLabel, patch_id: int) -> CCVariable:
        self.stats.gets += 1
        try:
            return self._cc[(label.name, patch_id)]
        except KeyError:
            raise DataWarehouseError(
                f"{label.name} not found on patch {patch_id} in DW "
                f"generation {self.generation}"
            ) from None

    def modify(self, label: VarLabel, patch_id: int) -> CCVariable:
        """Like :meth:`get` but signals in-place mutation intent."""
        return self.get(label, patch_id)

    # ------------------------------------------------------------------
    # foreign variables (ghost pieces received over MPI)
    # ------------------------------------------------------------------
    def add_foreign(self, label: VarLabel, patch_id: int, var: CCVariable) -> None:
        """Stage a piece of a *remote* patch's data needed locally."""
        self.stats.foreign_adds += 1
        self._foreign.setdefault((label.name, patch_id), []).append(var)

    def get_region(
        self,
        label: VarLabel,
        level: Level,
        region: Box,
        default: Optional[float] = None,
    ) -> np.ndarray:
        """Assemble ``region`` from local patches + foreign pieces.

        Every cell of ``region`` intersecting the level's domain must be
        covered unless ``default`` is given (used for regions poking
        into the wall ring, which no patch owns).
        """
        self.stats.region_assemblies += 1
        out = np.full(region.extent, np.nan)
        covered = 0
        for patch in level.patches_intersecting(region):
            if not self.exists(label, patch.patch_id):
                continue
            var = self.get(label, patch.patch_id)
            overlap = var.box.intersect(region)
            if overlap.empty:
                continue
            out[overlap.slices(origin=region.lo)] = var.view(overlap)
            covered += overlap.volume
        for (name, _pid), pieces in self._foreign.items():
            if name != label.name:
                continue
            for var in pieces:
                overlap = var.box.intersect(region)
                if overlap.empty:
                    continue
                out[overlap.slices(origin=region.lo)] = var.view(overlap)
        missing = np.isnan(out)
        if missing.any():
            if default is None:
                raise DataWarehouseError(
                    f"{label.name}: {int(missing.sum())} of {region.volume} cells "
                    f"of {region} are not covered by local or foreign data"
                )
            out[missing] = default
        return out

    # ------------------------------------------------------------------
    # per-level variables
    # ------------------------------------------------------------------
    def put_level(self, label: VarLabel, level_index: int, data: np.ndarray) -> None:
        if label.kind is not VarKind.PER_LEVEL:
            raise DataWarehouseError(f"put_level() needs a PER_LEVEL label, got {label}")
        key = (label.name, level_index)
        if key in self._level:
            raise DataWarehouseError(
                f"level variable {label.name} already exists on level {level_index}"
            )
        self.stats.level_puts += 1
        self._level[key] = data

    def get_level(self, label: VarLabel, level_index: int) -> np.ndarray:
        self.stats.level_gets += 1
        try:
            return self._level[(label.name, level_index)]
        except KeyError:
            raise DataWarehouseError(
                f"level variable {label.name} not found on level {level_index}"
            ) from None

    def has_level(self, label: VarLabel, level_index: int) -> bool:
        return (label.name, level_index) in self._level

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def put_reduction(self, label: VarLabel, var: ReductionVariable) -> None:
        if label.kind is not VarKind.REDUCTION:
            raise DataWarehouseError(f"put_reduction() needs a REDUCTION label")
        self.stats.reduction_puts += 1
        existing = self._reductions.get(label.name)
        self._reductions[label.name] = var if existing is None else existing.combine(var)

    def get_reduction(self, label: VarLabel) -> ReductionVariable:
        try:
            return self._reductions[label.name]
        except KeyError:
            raise DataWarehouseError(f"reduction {label.name} not found") from None

    # ------------------------------------------------------------------
    # bulk iteration (archive / checkpoint support)
    # ------------------------------------------------------------------
    def cc_items(self) -> List[Tuple[str, int, CCVariable]]:
        """Every cell-centred variable as ``(name, patch_id, var)``,
        in deterministic (name, patch) order — the serialization
        surface used by :class:`~repro.dw.archive.DataArchive` and the
        resilience checkpointer."""
        return [
            (name, pid, self._cc[(name, pid)])
            for name, pid in sorted(self._cc)
        ]

    def level_items(self) -> List[Tuple[str, int, np.ndarray]]:
        """Every per-level variable as ``(name, level_index, data)``."""
        return [
            (name, idx, self._level[(name, idx)])
            for name, idx in sorted(self._level)
        ]

    def reduction_items(self) -> List[Tuple[str, ReductionVariable]]:
        """Every reduction as ``(name, var)``."""
        return [(name, self._reductions[name]) for name in sorted(self._reductions)]

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        total = sum(v.nbytes for v in self._cc.values())
        total += sum(v.nbytes for pieces in self._foreign.values() for v in pieces)
        total += sum(a.nbytes for a in self._level.values())
        return total

    def variable_names(self) -> List[str]:
        names = {n for n, _ in self._cc} | {n for n, _ in self._level}
        names |= set(self._reductions)
        return sorted(names)

    def publish_metrics(self, registry, **labels) -> None:
        """Flush this generation's operation counts and footprint into a
        metrics registry (call once per warehouse, e.g. at gather)."""
        for name, value in self.stats.as_dict().items():
            if value:
                registry.counter(f"dw.{name}", **labels).inc(value)
        registry.gauge("dw.nbytes", **labels).set(self.nbytes)
        registry.gauge("dw.variables", **labels).set(len(self.variable_names()))


class DataWarehouseManager:
    """Old/new DW pair with timestep advancement."""

    def __init__(self) -> None:
        self._generation = 0
        self.old_dw: Optional[DataWarehouse] = None
        self.new_dw = DataWarehouse(generation=0)

    def advance(self) -> None:
        """End of timestep: new becomes old, a fresh new is created."""
        self._generation += 1
        self.old_dw = self.new_dw
        self.new_dw = DataWarehouse(generation=self._generation)

    @property
    def generation(self) -> int:
        return self._generation
