"""A byte-accurate heap model.

Section IV.B's failure mode is an *address-space* phenomenon:
persistent small allocations sprinkled between transient large ones pin
the break pointer up, so the heap footprint keeps growing even though
live bytes stay flat — it "acts as though a significant memory leak
still existed". To reproduce it we model the heap as an integer
address space with a free list:

* :class:`SimulatedHeap` — glibc-style first-fit (or best-fit) with
  splitting, coalescing, and sbrk growth at the top.
* :class:`SizeClassHeap` — a tcmalloc-style segregated allocator:
  small sizes are rounded to classes and carved out of pages; a page is
  only returned when every slot in it is free, so one persistent object
  pins a whole page (why tcmalloc "reduced but did not eliminate" the
  fragmentation).

The interesting outputs are :attr:`footprint` (how much address space
the allocator holds) versus :attr:`live_bytes` (what the application
actually has allocated); their ratio is the fragmentation factor.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.util.errors import AllocationError


class SimulatedHeap:
    """Free-list heap over integer addresses [0, heap_end)."""

    def __init__(self, policy: str = "first_fit", alignment: int = 16) -> None:
        if policy not in ("first_fit", "best_fit"):
            raise AllocationError(f"unknown policy {policy!r}")
        if alignment < 1:
            raise AllocationError("alignment must be >= 1")
        self.policy = policy
        self.alignment = int(alignment)
        self.heap_end = 0
        #: free blocks as (addr, size), sorted by addr, non-adjacent
        self._free: List[Tuple[int, int]] = []
        #: allocated addr -> size
        self._live: Dict[int, int] = {}
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.malloc_calls = 0
        self.free_calls = 0

    # ------------------------------------------------------------------
    def _round(self, size: int) -> int:
        a = self.alignment
        return ((size + a - 1) // a) * a

    def malloc(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"malloc of non-positive size {size}")
        size = self._round(size)
        self.malloc_calls += 1
        idx = self._find_block(size)
        if idx is not None:
            addr, bsize = self._free[idx]
            if bsize == size:
                self._free.pop(idx)
            else:
                self._free[idx] = (addr + size, bsize - size)
        else:
            addr = self.heap_end
            self.heap_end += size  # sbrk
        self._live[addr] = size
        self.live_bytes += size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return addr

    def _find_block(self, size: int) -> Optional[int]:
        if self.policy == "first_fit":
            for i, (_, bsize) in enumerate(self._free):
                if bsize >= size:
                    return i
            return None
        best, best_size = None, None
        for i, (_, bsize) in enumerate(self._free):
            if bsize >= size and (best_size is None or bsize < best_size):
                best, best_size = i, bsize
        return best

    def free(self, addr: int) -> None:
        size = self._live.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unallocated address {addr}")
        self.free_calls += 1
        self.live_bytes -= size
        # insert sorted and coalesce with neighbours
        i = bisect.bisect_left(self._free, (addr, 0))
        lo = hi = None
        if i > 0 and self._free[i - 1][0] + self._free[i - 1][1] == addr:
            lo = i - 1
        if i < len(self._free) and addr + size == self._free[i][0]:
            hi = i
        if lo is not None and hi is not None:
            a, s = self._free[lo]
            self._free[lo] = (a, s + size + self._free[hi][1])
            self._free.pop(hi)
        elif lo is not None:
            a, s = self._free[lo]
            self._free[lo] = (a, s + size)
        elif hi is not None:
            self._free[hi] = (addr, size + self._free[hi][1])
        else:
            self._free.insert(i, (addr, size))
        # release a trailing free block back to the OS (brk shrink),
        # as glibc does only when the top of the heap frees
        if self._free and self._free[-1][0] + self._free[-1][1] == self.heap_end:
            a, s = self._free.pop()
            self.heap_end = a

    # ------------------------------------------------------------------
    @property
    def footprint(self) -> int:
        """Address space held from the OS."""
        return self.heap_end

    @property
    def free_bytes(self) -> int:
        return sum(s for _, s in self._free)

    @property
    def fragmentation(self) -> float:
        """Held-but-unused fraction of the footprint (0 = none)."""
        if self.heap_end == 0:
            return 0.0
        return (self.heap_end - self.live_bytes) / self.heap_end

    def largest_free_block(self) -> int:
        return max((s for _, s in self._free), default=0)

    def publish_metrics(self, registry, **labels) -> None:
        """Snapshot the heap's accounting into a metrics registry."""
        g = lambda name: registry.gauge(
            name, allocator=f"heap-{self.policy}", **labels
        )
        g("alloc.footprint_bytes").set(self.footprint)
        g("alloc.live_bytes").set(self.live_bytes)
        g("alloc.peak_live_bytes").set(self.peak_live_bytes)
        g("alloc.fragmentation").set(self.fragmentation)
        g("alloc.malloc_calls").set(self.malloc_calls)
        g("alloc.free_calls").set(self.free_calls)
        g("alloc.largest_free_block").set(self.largest_free_block())

    def check_invariants(self) -> None:
        """Free list is sorted, disjoint, non-adjacent, inside the heap;
        free + live cover exactly the footprint."""
        prev_end = None
        for addr, size in self._free:
            if size <= 0 or addr < 0 or addr + size > self.heap_end:
                raise AllocationError(f"corrupt free block ({addr}, {size})")
            if prev_end is not None and addr < prev_end:
                raise AllocationError("free list overlapping/unsorted")
            if prev_end is not None and addr == prev_end:
                raise AllocationError("free list has uncoalesced neighbours")
            prev_end = addr + size
        if self.free_bytes + self.live_bytes != self.heap_end:
            raise AllocationError(
                f"accounting mismatch: free {self.free_bytes} + live "
                f"{self.live_bytes} != heap_end {self.heap_end}"
            )


class SizeClassHeap:
    """tcmalloc-style: pages carved into power-of-two size classes.

    Allocations above ``page_size // 2`` go to an internal first-fit
    large-object heap (tcmalloc's page heap).
    """

    def __init__(self, page_size: int = 4096) -> None:
        if page_size < 64:
            raise AllocationError("page_size must be >= 64")
        self.page_size = int(page_size)
        self._large = SimulatedHeap(policy="first_fit")
        # per class: list of pages; each page: (base_addr, bitmap of used slots)
        self._pages: Dict[int, List[Tuple[int, List[bool]]]] = {}
        self._addr_class: Dict[int, Tuple[int, int, int]] = {}  # addr -> (cls, page idx key, slot)
        self._next_page_addr = 1 << 40  # small pages live far from the large heap
        self.pages_mapped = 0
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self.malloc_calls = 0
        self.free_calls = 0

    def _size_class(self, size: int) -> int:
        cls = 16
        while cls < size:
            cls <<= 1
        return cls

    def malloc(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"malloc of non-positive size {size}")
        self.malloc_calls += 1
        if size > self.page_size // 2:
            addr = self._large.malloc(size)
            self.live_bytes += size
            self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
            self._addr_class[addr] = (-1, -1, size)
            return addr
        cls = self._size_class(size)
        pages = self._pages.setdefault(cls, [])
        for base, used in pages:
            for slot, taken in enumerate(used):
                if not taken:
                    used[slot] = True
                    addr = base + slot * cls
                    self._addr_class[addr] = (cls, base, slot)
                    self.live_bytes += cls
                    self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
                    return addr
        # map a fresh page for this class
        base = self._next_page_addr
        self._next_page_addr += self.page_size
        self.pages_mapped += 1
        used = [False] * (self.page_size // cls)
        used[0] = True
        pages.append((base, used))
        self._addr_class[base] = (cls, base, 0)
        self.live_bytes += cls
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return base

    def free(self, addr: int) -> None:
        meta = self._addr_class.pop(addr, None)
        if meta is None:
            raise AllocationError(f"free of unallocated address {addr}")
        self.free_calls += 1
        cls, base, slot_or_size = meta
        if cls == -1:
            self._large.free(addr)
            self.live_bytes -= slot_or_size
            return
        pages = self._pages[cls]
        for i, (b, used) in enumerate(pages):
            if b == base:
                used[slot_or_size] = False
                self.live_bytes -= cls
                if not any(used):
                    pages.pop(i)  # whole page free: unmap
                    self.pages_mapped -= 1
                return
        raise AllocationError("size-class metadata corrupt")

    @property
    def footprint(self) -> int:
        return self.pages_mapped * self.page_size + self._large.footprint

    @property
    def fragmentation(self) -> float:
        fp = self.footprint
        return 0.0 if fp == 0 else (fp - self.live_bytes) / fp

    def publish_metrics(self, registry, **labels) -> None:
        """Snapshot the size-class heap's accounting into a registry."""
        g = lambda name: registry.gauge(name, allocator="sizeclass", **labels)
        g("alloc.footprint_bytes").set(self.footprint)
        g("alloc.live_bytes").set(self.live_bytes)
        g("alloc.peak_live_bytes").set(self.peak_live_bytes)
        g("alloc.fragmentation").set(self.fragmentation)
        g("alloc.malloc_calls").set(self.malloc_calls)
        g("alloc.free_calls").set(self.free_calls)
        g("alloc.pages_mapped").set(self.pages_mapped)
