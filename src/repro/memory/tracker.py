"""Allocation tracking.

The paper's future work ("extend the use of our custom memory
allocators and trackers ... to identify allocation patterns that do not
scale") — implemented here: every allocation is recorded with a tag
and lifetime, and two runs' summaries can be diffed to find the tags
whose footprint grows with scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.util.errors import AllocationError


@dataclass
class TagSummary:
    count: int = 0
    bytes_total: int = 0
    bytes_peak_live: int = 0
    _live: int = 0

    def on_alloc(self, size: int) -> None:
        self.count += 1
        self.bytes_total += size
        self._live += size
        self.bytes_peak_live = max(self.bytes_peak_live, self._live)

    def on_free(self, size: int) -> None:
        self._live -= size


class AllocationTracker:
    """Tag-keyed accounting layered over any allocator-like object."""

    def __init__(self) -> None:
        self._tags: Dict[str, TagSummary] = {}
        self._live: Dict[int, tuple] = {}  # addr -> (tag, size)

    def record_alloc(self, tag: str, addr: int, size: int) -> None:
        if addr in self._live:
            raise AllocationError(f"tracker saw address {addr} allocated twice")
        self._live[addr] = (tag, size)
        self._tags.setdefault(tag, TagSummary()).on_alloc(size)

    def record_free(self, addr: int) -> None:
        entry = self._live.pop(addr, None)
        if entry is None:
            raise AllocationError(f"tracker saw free of untracked address {addr}")
        tag, size = entry
        self._tags[tag].on_free(size)

    def summary(self) -> Dict[str, TagSummary]:
        return dict(self._tags)

    @property
    def live_allocations(self) -> int:
        return len(self._live)

    def leaked_by_tag(self) -> Dict[str, int]:
        """Live bytes per tag — nonzero at shutdown means a leak."""
        out: Dict[str, int] = {}
        for _, (tag, size) in self._live.items():
            out[tag] = out.get(tag, 0) + size
        return out

    @staticmethod
    def compare(small_run: "AllocationTracker", big_run: "AllocationTracker",
                scale_factor: float) -> List[str]:
        """Tags whose peak live bytes grew faster than ``scale_factor``
        between two runs — allocation patterns that do not scale."""
        flagged = []
        for tag, big in big_run.summary().items():
            small = small_run.summary().get(tag)
            if small is None or small.bytes_peak_live == 0:
                continue
            growth = big.bytes_peak_live / small.bytes_peak_live
            if growth > scale_factor * 1.05:
                flagged.append(tag)
        return sorted(flagged)
