"""The mmap arena allocator for large allocations.

The paper's fix for large transient objects (MPI buffers,
GridVariables): bypass the heap entirely and serve each allocation from
its own anonymous mapping, returned to the OS at free. Address space
cannot fragment because mappings are independent — the cost is the
(modelled) syscall, which is irrelevant for infrequent large
allocations (Section IV.B.1).
"""

from __future__ import annotations

from typing import Dict

from repro.util.errors import AllocationError

#: 4 KiB pages, as on Titan's Opterons
PAGE_SIZE = 4096


class ArenaAllocator:
    """One anonymous mapping per allocation, page-granular."""

    def __init__(self, page_size: int = PAGE_SIZE) -> None:
        if page_size < 1:
            raise AllocationError("page_size must be >= 1")
        self.page_size = int(page_size)
        self._next_addr = 1 << 44  # distinct "mmap region" of address space
        self._live: Dict[int, tuple] = {}  # addr -> (mapped, requested)
        self.mapped_bytes = 0
        self.peak_mapped_bytes = 0
        self.live_bytes = 0
        self.mmap_calls = 0
        self.munmap_calls = 0

    def _round_pages(self, size: int) -> int:
        p = self.page_size
        return ((size + p - 1) // p) * p

    def malloc(self, size: int) -> int:
        if size <= 0:
            raise AllocationError(f"mmap of non-positive size {size}")
        mapped = self._round_pages(size)
        addr = self._next_addr
        self._next_addr += mapped
        self._live[addr] = (mapped, size)
        self.mapped_bytes += mapped
        self.peak_mapped_bytes = max(self.peak_mapped_bytes, self.mapped_bytes)
        self.live_bytes += size
        self.mmap_calls += 1
        return addr

    def free(self, addr: int) -> None:
        entry = self._live.pop(addr, None)
        if entry is None:
            raise AllocationError(f"munmap of unmapped address {addr}")
        mapped, requested = entry
        self.mapped_bytes -= mapped
        self.live_bytes -= requested
        self.munmap_calls += 1

    @property
    def footprint(self) -> int:
        return self.mapped_bytes

    @property
    def fragmentation(self) -> float:
        """Only page-rounding waste — bounded by one page per mapping."""
        if self.mapped_bytes == 0:
            return 0.0
        return (self.mapped_bytes - self.live_bytes) / self.mapped_bytes

    def publish_metrics(self, registry, **labels) -> None:
        """Snapshot the arena's accounting into a metrics registry."""
        g = lambda name: registry.gauge(name, allocator="arena", **labels)
        g("alloc.footprint_bytes").set(self.footprint)
        g("alloc.live_bytes").set(self.live_bytes)
        g("alloc.peak_footprint_bytes").set(self.peak_mapped_bytes)
        g("alloc.fragmentation").set(self.fragmentation)
        g("alloc.malloc_calls").set(self.mmap_calls)
        g("alloc.free_calls").set(self.munmap_calls)
