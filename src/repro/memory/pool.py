"""The lock-free small-object pool over the arena.

Frequent small transient allocations (communication records, task
metadata) were the throughput problem: many threads hitting a global
heap lock (Section IV.B.1: "frequent small allocations from multiple
threads caused a performance degradation due to contention of shared
resources"). The fix layers per-size-class free lists, each guarded by
its own try-lock (the Python stand-in for a CAS loop on the list
head), on top of arena chunks — threads in different classes never
touch the same lock, and threads in the same class fall through to a
fresh chunk rather than blocking.

:class:`GlobalLockAllocator` is the before-picture: one lock around a
shared heap, used by the contention benchmark.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.memory.arena import ArenaAllocator
from repro.memory.heap import SimulatedHeap
from repro.util.errors import AllocationError


class GlobalLockAllocator:
    """One big lock around a shared heap — the contended baseline.

    ``hold_time`` models the critical-section work (free-list walk,
    coalescing) with a GIL-releasing sleep so Python threads really do
    pile up on the lock; ``contended_acquires`` counts how often a
    thread found the lock already held — the serialization the paper's
    per-object flags eliminate.
    """

    def __init__(self, heap: Optional[SimulatedHeap] = None, hold_time: float = 0.0) -> None:
        self.heap = heap if heap is not None else SimulatedHeap()
        self._lock = threading.Lock()
        self.hold_time = float(hold_time)
        self.contended_acquires = 0

    def _acquire(self) -> None:
        if not self._lock.acquire(blocking=False):
            self.contended_acquires += 1
            # the blocking fall-through IS the contended baseline under test
            self._lock.acquire()  # repro: allow(blocking-call)

    def malloc(self, size: int) -> int:
        self._acquire()
        try:
            if self.hold_time:
                _hold(self.hold_time)
            return self.heap.malloc(size)
        finally:
            self._lock.release()

    def free(self, addr: int) -> None:
        self._acquire()
        try:
            if self.hold_time:
                _hold(self.hold_time)
            self.heap.free(addr)
        finally:
            self._lock.release()

    @property
    def footprint(self) -> int:
        return self.heap.footprint


def _hold(duration: float) -> None:
    """Critical-section work stand-in that RELEASES the GIL, so lock
    contention between Python threads is real rather than masked."""
    import time

    time.sleep(duration)


class _ClassList:
    __slots__ = ("lock", "free_addrs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.free_addrs: List[int] = []


class SizeClassPool:
    """Per-class free lists on arena chunks; O(1) allocate/free.

    Chunks of ``chunk_slots`` objects are carved from the arena per
    class; freed objects push onto their class's list. Chunks are never
    unmapped while the pool lives (slab semantics) — steady-state
    footprint is bounded by the high-water mark per class, which for
    transient objects is small and constant, not growing.
    """

    def __init__(
        self,
        arena: Optional[ArenaAllocator] = None,
        max_size: int = 2048,
        chunk_slots: int = 64,
        hold_time: float = 0.0,
    ) -> None:
        if max_size < 16:
            raise AllocationError("max_size must be >= 16")
        self.arena = arena if arena is not None else ArenaAllocator()
        self.max_size = int(max_size)
        self.chunk_slots = int(chunk_slots)
        self.hold_time = float(hold_time)
        self._classes: Dict[int, _ClassList] = {}
        self._classes_lock = threading.Lock()
        self._addr_class: Dict[int, int] = {}
        self._meta_lock = threading.Lock()
        self.live_objects = 0
        self.chunk_maps = 0
        self.contended_acquires = 0

    def _size_class(self, size: int) -> int:
        if size > self.max_size:
            raise AllocationError(
                f"size {size} exceeds pool max {self.max_size}; route large "
                f"allocations to the arena directly"
            )
        cls = 16
        while cls < size:
            cls <<= 1
        return cls

    def _class_list(self, cls: int) -> _ClassList:
        lst = self._classes.get(cls)
        if lst is None:
            with self._classes_lock:
                lst = self._classes.setdefault(cls, _ClassList())
        return lst

    def malloc(self, size: int) -> int:
        cls = self._size_class(size)
        lst = self._class_list(cls)
        # fast path: try-lock pop (a CAS on the list head in C++)
        if lst.lock.acquire(blocking=False):
            try:
                if self.hold_time:
                    _hold(self.hold_time)
                if lst.free_addrs:
                    addr = lst.free_addrs.pop()
                    with self._meta_lock:
                        self.live_objects += 1
                    return addr
            finally:
                lst.lock.release()
        # slow path: carve a fresh chunk (no blocking on the class lock)
        base = self.arena.malloc(cls * self.chunk_slots)
        with self._meta_lock:
            self.chunk_maps += 1
            self.live_objects += 1
        extras = [base + i * cls for i in range(1, self.chunk_slots)]
        with lst.lock:
            lst.free_addrs.extend(extras)
        with self._meta_lock:
            self._addr_class[base] = cls
            for a in extras:
                self._addr_class[a] = cls
        return base

    def free(self, addr: int) -> None:
        with self._meta_lock:
            cls = self._addr_class.get(addr)
        if cls is None:
            raise AllocationError(f"pool free of unknown address {addr}")
        lst = self._class_list(cls)
        if not lst.lock.acquire(blocking=False):
            self.contended_acquires += 1
            # frees must land on their own class list; waiting here is
            # the measured cost the try-lock fast path avoids
            lst.lock.acquire()  # repro: allow(blocking-call)
        try:
            if self.hold_time:
                _hold(self.hold_time)
            if addr in lst.free_addrs:
                raise AllocationError(f"double free of pool address {addr}")
            lst.free_addrs.append(addr)
        finally:
            lst.lock.release()
        with self._meta_lock:
            self.live_objects -= 1

    @property
    def footprint(self) -> int:
        return self.arena.mapped_bytes

    def publish_metrics(self, registry, **labels) -> None:
        """Snapshot the pool's accounting into a metrics registry."""
        g = lambda name: registry.gauge(name, allocator="pool", **labels)
        g("alloc.footprint_bytes").set(self.footprint)
        g("alloc.live_objects").set(self.live_objects)
        g("alloc.chunk_maps").set(self.chunk_maps)
        g("alloc.contended_acquires").set(self.contended_acquires)
