"""The RMCRT allocation workload and allocator stacks.

Section IV.B diagnosed the heap growth with exactly this mixture:
*persistent small* allocations (metadata that lives for the whole run)
interleaved with *transient large* ones (MPI message buffers and grid
variables created and destroyed every timestep). This module generates
that trace and replays it through three allocator stacks:

* ``glibc``   — everything on one first-fit heap (the before-picture),
* ``tcmalloc``— size-class heap (better, "but the mixture ... still
  resulted in unacceptable fragmentation"),
* ``custom``  — the paper's design: large -> mmap arena, small
  transient -> lock-free pool, small persistent -> heap.

The replay reports footprint growth across timesteps and the final
fragmentation factor, the E6 experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.memory.arena import ArenaAllocator
from repro.memory.heap import SimulatedHeap, SizeClassHeap
from repro.memory.pool import SizeClassPool
from repro.util.errors import AllocationError

#: object categories: (small?, persistent?)
CATEGORIES = {
    "mpi_buffer": dict(small=False, persistent=False),     # transient large
    "grid_variable": dict(small=False, persistent=False),  # per-timestep large
    "comm_record": dict(small=True, persistent=False),     # transient small
    "metadata": dict(small=True, persistent=True),         # persistent small
}


@dataclass
class TraceEvent:
    op: str          # "alloc" | "free"
    obj_id: int
    tag: str = ""
    size: int = 0


def generate_trace(
    timesteps: int = 20,
    large_per_step: int = 24,
    small_transient_per_step: int = 200,
    persistent_per_step: int = 12,
    large_size_range: Tuple[int, int] = (256 * 1024, 4 * 1024 * 1024),
    small_size_range: Tuple[int, int] = (32, 512),
    overlap: bool = True,
    seed: int = 0,
) -> List[TraceEvent]:
    """The fragmentation recipe as a flat event list.

    Each timestep allocates large transients (MPI buffers, grid
    variables), a flurry of small transients (comm records), and a few
    *persistent* small allocations (never freed). With ``overlap``
    (the realistic mode) step t's transients are released interleaved
    with step t+1's allocations — asynchronous MPI buffers drain while
    the next timestep is already allocating — which is what ratchets a
    first-fit heap upward: new large blocks cannot reuse holes that are
    not yet free, and the persistent allocations pin the heap top.
    """
    rng = np.random.default_rng(seed)
    events: List[TraceEvent] = []
    next_id = 0
    pending_frees: List[TraceEvent] = []
    for _ in range(timesteps):
        allocs: List[TraceEvent] = []
        step_transients: List[int] = []
        # message volume varies step to step (AMR regridding, radiation
        # vs CFD-only timesteps): the size diversity is what defeats
        # hole reuse in a first-fit heap
        step_scale = float(rng.uniform(0.5, 2.0))
        for _ in range(large_per_step):
            tag = "mpi_buffer" if rng.random() < 0.5 else "grid_variable"
            size = int(step_scale * rng.integers(*large_size_range))
            allocs.append(TraceEvent("alloc", next_id, tag, size))
            step_transients.append(next_id)
            next_id += 1
        for _ in range(small_transient_per_step):
            size = int(rng.integers(*small_size_range))
            allocs.append(TraceEvent("alloc", next_id, "comm_record", size))
            step_transients.append(next_id)
            next_id += 1
        for _ in range(persistent_per_step):
            size = int(rng.integers(*small_size_range))
            allocs.append(TraceEvent("alloc", next_id, "metadata", size))
            next_id += 1
        rng.shuffle(allocs)
        frees = [TraceEvent("free", oid) for oid in step_transients]
        rng.shuffle(frees)
        if overlap:
            # previous step's frees interleave with this step's allocs
            merged = allocs + pending_frees
            rng.shuffle(merged)
            events.extend(merged)
            pending_frees = frees
        else:
            events.extend(allocs)
            events.extend(frees)
    events.extend(pending_frees)
    return events


class AllocatorStack:
    """Routes allocations to sub-allocators by category."""

    def __init__(self, kind: str) -> None:
        if kind == "glibc":
            self.heap = SimulatedHeap(policy="first_fit")
            self.arena = None
            self.pool = None
        elif kind == "tcmalloc":
            self.heap = SizeClassHeap()
            self.arena = None
            self.pool = None
        elif kind == "custom":
            self.heap = SimulatedHeap(policy="first_fit")
            self.arena = ArenaAllocator()
            self.pool = SizeClassPool(arena=ArenaAllocator())
        else:
            raise AllocationError(f"unknown allocator stack {kind!r}")
        self.kind = kind
        self._route: Dict[int, object] = {}

    def _allocator_for(self, tag: str) -> object:
        cat = CATEGORIES[tag]
        if self.kind != "custom":
            return self.heap
        if not cat["small"]:
            return self.arena       # large -> mmap
        if not cat["persistent"]:
            return self.pool        # small transient -> lock-free pool
        return self.heap            # infrequent persistent small -> heap

    def malloc(self, tag: str, size: int, obj_id: int) -> None:
        alloc = self._allocator_for(tag)
        addr = alloc.malloc(size)
        self._route[obj_id] = (alloc, addr, size)

    def free(self, obj_id: int) -> None:
        alloc, addr, _size = self._route.pop(obj_id)
        alloc.free(addr)

    def free_size(self, obj_id: int) -> int:
        """Free and return the requested size (replay bookkeeping)."""
        alloc, addr, size = self._route.pop(obj_id)
        alloc.free(addr)
        return size

    @property
    def footprint(self) -> int:
        total = self.heap.footprint
        if self.arena is not None:
            total += self.arena.footprint
        if self.pool is not None:
            total += self.pool.footprint
        return total

    @property
    def live_bytes(self) -> int:
        total = self.heap.live_bytes
        if self.arena is not None:
            total += self.arena.live_bytes
        if self.pool is not None:
            # pool live tracked in objects; footprint bound is what matters
            total += self.pool.footprint - 0
        return total


@dataclass
class ReplayResult:
    kind: str
    footprint_series: List[int]       #: sampled every ``record_every`` events
    live_series: List[int]            #: live application bytes at each sample
    final_footprint: int
    peak_footprint: int
    peak_live_bytes: int
    persistent_live_bytes: int

    @property
    def fragmentation_series(self) -> List[float]:
        """footprint/live at each sample — the leak-like creep signal."""
        return [
            f / l if l else 1.0
            for f, l in zip(self.footprint_series, self.live_series)
        ]

    @property
    def growth_factor(self) -> float:
        """Peak footprint / earliest sampled footprint — how much the
        allocator's address-space hold ratcheted up over the run."""
        first = next((f for f in self.footprint_series if f > 0), 0)
        return self.peak_footprint / first if first else float("inf")

    @property
    def fragmentation_factor(self) -> float:
        """Peak footprint / peak live bytes (1.0 = no waste)."""
        return (
            self.peak_footprint / self.peak_live_bytes
            if self.peak_live_bytes
            else float("inf")
        )


def replay_trace(kind: str, events: List[TraceEvent], record_every: int = 200) -> ReplayResult:
    stack = AllocatorStack(kind)
    series: List[int] = []
    live_series: List[int] = []
    persistent_bytes = 0
    peak_fp = 0
    live = 0
    peak_live = 0
    for n, ev in enumerate(events):
        if ev.op == "alloc":
            stack.malloc(ev.tag, ev.size, ev.obj_id)
            live += ev.size
            peak_live = max(peak_live, live)
            if CATEGORIES[ev.tag]["persistent"]:
                persistent_bytes += ev.size
        else:
            live -= stack.free_size(ev.obj_id)
        fp = stack.footprint
        peak_fp = max(peak_fp, fp)
        if n % record_every == 0:
            series.append(fp)
            live_series.append(live)
    return ReplayResult(
        kind=kind,
        footprint_series=series,
        live_series=live_series,
        final_footprint=stack.footprint,
        peak_footprint=peak_fp,
        peak_live_bytes=peak_live,
        persistent_live_bytes=persistent_bytes,
    )
