"""Memory-management substrate (paper Section IV.B): heap models,
the mmap arena, the lock-free small-object pool, allocation tracking,
and the fragmentation workload replay."""

from repro.memory.heap import SimulatedHeap, SizeClassHeap
from repro.memory.arena import ArenaAllocator, PAGE_SIZE
from repro.memory.pool import GlobalLockAllocator, SizeClassPool
from repro.memory.tracker import AllocationTracker, TagSummary
from repro.memory.workload import (
    AllocatorStack,
    CATEGORIES,
    ReplayResult,
    TraceEvent,
    generate_trace,
    replay_trace,
)

__all__ = [
    "SimulatedHeap",
    "SizeClassHeap",
    "ArenaAllocator",
    "PAGE_SIZE",
    "GlobalLockAllocator",
    "SizeClassPool",
    "AllocationTracker",
    "TagSummary",
    "AllocatorStack",
    "CATEGORIES",
    "ReplayResult",
    "TraceEvent",
    "generate_trace",
    "replay_trace",
]
