"""Mesh patches — the unit of work distribution.

A :class:`Patch` is a rectangular sub-box of one level's index space.
Uintah assigns patches to ranks, schedules one task per (task-type,
patch), and communicates ghost regions between neighbouring patches;
this class carries exactly the geometry those steps need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.grid.box import Box


@dataclass(frozen=True)
class Patch:
    """An immutable patch: identity plus its interior cell box."""

    patch_id: int
    level_index: int
    box: Box

    @property
    def lo(self):
        return self.box.lo

    @property
    def hi(self):
        return self.box.hi

    @property
    def num_cells(self) -> int:
        return self.box.volume

    def ghost_box(self, num_ghost: int) -> Box:
        """Interior plus ``num_ghost`` halo cells per side."""
        return self.box.grow(num_ghost)

    def ghost_region(self, num_ghost: int):
        """Halo-only region: ``ghost_box \\ interior`` as disjoint boxes."""
        return self.ghost_box(num_ghost).subtract(self.box)

    def centroid_index(self) -> Tuple[float, float, float]:
        """Fractional index-space centre, used for SFC ordering."""
        return (
            0.5 * (self.box.lo[0] + self.box.hi[0]),
            0.5 * (self.box.lo[1] + self.box.hi[1]),
            0.5 * (self.box.lo[2] + self.box.hi[2]),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Patch(id={self.patch_id}, L{self.level_index}, {self.box})"
