"""Mesh levels: one resolution of the AMR hierarchy.

A :class:`Level` owns an index-space domain box, the physical cell
spacing, and the set of patches tiling the domain. Level 0 is the
coarsest (Uintah convention); each finer level refines the one below it
by an integer refinement ratio per dimension.

For the RMCRT data-onion problems every level spans the *entire*
physical domain — the fine CFD mesh and the coarse radiation mesh cover
the same cube at different resolutions — which is what lets a ray
switch to coarse data once it leaves the fine region of interest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.box import Box, IntVec, ivec
from repro.grid.patch import Patch
from repro.util.errors import GridError

FloatVec = Tuple[float, float, float]


class Level:
    """One resolution level of a :class:`~repro.grid.grid.Grid`."""

    def __init__(
        self,
        index: int,
        domain_box: Box,
        dx: Sequence[float],
        anchor: Sequence[float] = (0.0, 0.0, 0.0),
        refinement_ratio: Sequence[int] = (1, 1, 1),
    ) -> None:
        if domain_box.empty:
            raise GridError("level domain box must be non-empty")
        self.index = int(index)
        self.domain_box = domain_box
        self.dx: FloatVec = tuple(float(v) for v in dx)  # type: ignore[assignment]
        if any(v <= 0 for v in self.dx):
            raise GridError(f"cell spacing must be positive, got {self.dx}")
        self.anchor: FloatVec = tuple(float(v) for v in anchor)  # type: ignore[assignment]
        #: ratio to the NEXT COARSER level (meaningless for level 0)
        self.refinement_ratio: IntVec = ivec(refinement_ratio)
        self.patches: List[Patch] = []
        self._patch_by_id: Dict[int, Patch] = {}

    # ------------------------------------------------------------------
    # patches
    # ------------------------------------------------------------------
    def add_patch(self, patch: Patch) -> None:
        if patch.level_index != self.index:
            raise GridError(
                f"patch level {patch.level_index} != level index {self.index}"
            )
        if not self.domain_box.contains_box(patch.box):
            raise GridError(f"{patch} extends outside level domain {self.domain_box}")
        for existing in self.patches:
            if existing.box.intersects(patch.box):
                raise GridError(f"{patch} overlaps {existing}")
        if patch.patch_id in self._patch_by_id:
            raise GridError(f"duplicate patch id {patch.patch_id}")
        self._register_patch(patch)

    def _register_patch(self, patch: Patch) -> None:
        """Trusted registration (no overlap scan) — used by tilings that
        guarantee disjointness by construction."""
        self.patches.append(patch)
        self._patch_by_id[patch.patch_id] = patch

    def patch(self, patch_id: int) -> Patch:
        try:
            return self._patch_by_id[patch_id]
        except KeyError:
            raise GridError(f"no patch {patch_id} on level {self.index}") from None

    @property
    def num_patches(self) -> int:
        return len(self.patches)

    @property
    def num_cells(self) -> int:
        return self.domain_box.volume

    def is_fully_tiled(self) -> bool:
        """True when the patches exactly tile the domain box."""
        return sum(p.num_cells for p in self.patches) == self.domain_box.volume

    def patches_intersecting(self, region: Box) -> List[Patch]:
        return [p for p in self.patches if p.box.intersects(region)]

    def containing_patch(self, cell: Sequence[int]) -> Optional[Patch]:
        for p in self.patches:
            if p.box.contains_point(cell):
                return p
        return None

    # ------------------------------------------------------------------
    # physical <-> index space
    # ------------------------------------------------------------------
    def cell_position(self, cell: Sequence[int]) -> np.ndarray:
        """Physical position of a cell centre."""
        c = ivec(cell)
        return np.array(
            [self.anchor[d] + (c[d] + 0.5) * self.dx[d] for d in range(3)]
        )

    def cell_index(self, position: Sequence[float]) -> IntVec:
        """Cell containing a physical point (points on faces round down)."""
        return tuple(
            int(np.floor((float(position[d]) - self.anchor[d]) / self.dx[d]))
            for d in range(3)
        )  # type: ignore[return-value]

    def cell_centers(self, box: Optional[Box] = None) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """1-D centre-coordinate arrays (x, y, z) for ``box`` (default: domain)."""
        b = box if box is not None else self.domain_box
        return tuple(
            self.anchor[d] + (np.arange(b.lo[d], b.hi[d]) + 0.5) * self.dx[d]
            for d in range(3)
        )  # type: ignore[return-value]

    @property
    def physical_lower(self) -> np.ndarray:
        return np.array(
            [self.anchor[d] + self.domain_box.lo[d] * self.dx[d] for d in range(3)]
        )

    @property
    def physical_upper(self) -> np.ndarray:
        return np.array(
            [self.anchor[d] + self.domain_box.hi[d] * self.dx[d] for d in range(3)]
        )

    # ------------------------------------------------------------------
    # level-to-level index mapping
    # ------------------------------------------------------------------
    def map_cell_to_coarser(self, cell: Sequence[int]) -> IntVec:
        c = ivec(cell)
        r = self.refinement_ratio
        return (c[0] // r[0], c[1] // r[1], c[2] // r[2])

    def map_box_to_coarser(self, box: Box) -> Box:
        return box.coarsen(self.refinement_ratio)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        e = self.domain_box.extent
        return (
            f"Level({self.index}, {e[0]}x{e[1]}x{e[2]} cells, "
            f"{self.num_patches} patches, dx={self.dx})"
        )
