"""Inter-level data operators: fine->coarse projection and
coarse->fine prolongation.

The multi-level RMCRT algorithm projects the fine CFD mesh's radiative
properties (absorption coefficient, sigma*T^4, cell type) onto every
coarser radiation level before ray tracing (paper Section III.C). The
projection must be *conservative* for the scalar properties — the mean
over each coarse cell equals the mean of its fine children — which the
tests enforce as a property-based invariant.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grid.box import ivec
from repro.util.errors import GridError


def _check_ratio(shape: Sequence[int], ratio) -> tuple:
    r = ivec(ratio) if not isinstance(ratio, int) else (ratio,) * 3
    if any(c < 1 for c in r):
        raise GridError(f"refinement ratio must be >= 1, got {r}")
    for d in range(3):
        if shape[d] % r[d] != 0:
            raise GridError(
                f"array shape {tuple(shape)} not divisible by ratio {r} in dim {d}"
            )
    return r


def coarsen_average(fine: np.ndarray, ratio) -> np.ndarray:
    """Conservative restriction: each coarse cell is the arithmetic mean
    of its ``rx*ry*rz`` fine children.

    Used for kappa and sigmaT4. Vectorized via a reshape to the
    (coarse, ratio) block structure — no Python loops.
    """
    r = _check_ratio(fine.shape, ratio)
    nx, ny, nz = (fine.shape[d] // r[d] for d in range(3))
    blocks = fine.reshape(nx, r[0], ny, r[1], nz, r[2])
    return blocks.mean(axis=(1, 3, 5))


def coarsen_max(fine: np.ndarray, ratio) -> np.ndarray:
    """Restriction by max — used for cell types so that any solid fine
    cell marks the whole coarse cell solid (conservative for opacity:
    a ray must not march through a coarse cell hiding an intrusion)."""
    r = _check_ratio(fine.shape, ratio)
    nx, ny, nz = (fine.shape[d] // r[d] for d in range(3))
    blocks = fine.reshape(nx, r[0], ny, r[1], nz, r[2])
    return blocks.max(axis=(1, 3, 5))


def refine_inject(coarse: np.ndarray, ratio) -> np.ndarray:
    """Piecewise-constant prolongation: every fine child copies its
    coarse parent. The exact right-inverse of :func:`coarsen_average`
    (coarsen(refine(x)) == x)."""
    r = ivec(ratio) if not isinstance(ratio, int) else (ratio,) * 3
    if any(c < 1 for c in r):
        raise GridError(f"refinement ratio must be >= 1, got {r}")
    out = np.repeat(coarse, r[0], axis=0)
    out = np.repeat(out, r[1], axis=1)
    return np.repeat(out, r[2], axis=2)


def project_properties(fine_fields: dict, ratio) -> dict:
    """Project an RMCRT property bundle one level down.

    ``abskg``/``sigma_t4`` coarsen by averaging; ``cell_type`` by max.
    Unknown keys coarsen by averaging (scalar fields by default).
    """
    out = {}
    for name, arr in fine_fields.items():
        if name == "cell_type":
            out[name] = coarsen_max(arr, ratio)
        else:
            out[name] = coarsen_average(arr, ratio)
    return out
