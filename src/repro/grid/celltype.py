"""Cell classification — RMCRT's ``cellType`` field.

Every computational cell is either interior *flow* (participating
medium), a domain-boundary *wall* (emitting/absorbing surface), or an
*intrusion* (solid geometry inside the domain, e.g. boiler tubes).
Rays march through flow cells and terminate (or reflect) at wall and
intrusion cells.
"""

from __future__ import annotations

from enum import IntEnum

import numpy as np

from repro.grid.box import Box


class CellType(IntEnum):
    FLOW = 0
    WALL = 1
    INTRUSION = 2


def domain_cell_types(interior: Box, with_boundary_layer: bool = True) -> np.ndarray:
    """Cell-type array for ``interior`` plus a one-cell wall layer.

    Returns an array shaped ``interior.grow(1).extent`` when
    ``with_boundary_layer`` (the usual RMCRT layout: the walls live in
    the ghost ring so a marching ray indexes them directly), else
    shaped ``interior.extent`` and all-FLOW.
    """
    if not with_boundary_layer:
        return np.full(interior.extent, CellType.FLOW, dtype=np.int8)
    outer = interior.grow(1)
    ct = np.full(outer.extent, CellType.WALL, dtype=np.int8)
    ct[interior.slices(origin=outer.lo)] = CellType.FLOW
    return ct


def mark_intrusion(cell_types: np.ndarray, region: Box, origin, domain: Box) -> None:
    """Mark ``region`` (clipped to ``domain``) as INTRUSION in-place.

    ``origin`` is the index of ``cell_types[0,0,0]`` so callers can pass
    arrays with or without the wall ring.
    """
    clipped = region.intersect(domain)
    if clipped.empty:
        return
    cell_types[clipped.slices(origin=origin)] = CellType.INTRUSION
