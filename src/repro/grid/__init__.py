"""Structured AMR grid substrate.

Boxes, patches, levels, grid hierarchies, regular decomposition,
inter-level transfer operators, space-filling curves and the SFC load
balancer — the geometric machinery beneath the RMCRT solvers and the
task runtime.
"""

from repro.grid.box import Box, ivec, union_volume
from repro.grid.patch import Patch
from repro.grid.level import Level
from repro.grid.grid import Grid, build_two_level_grid, build_single_level_grid
from repro.grid.decomposition import decompose_level, tile_box, patch_count
from repro.grid.celltype import CellType, domain_cell_types, mark_intrusion
from repro.grid.refinement import (
    coarsen_average,
    coarsen_max,
    refine_inject,
    project_properties,
)
from repro.grid.sfc import morton_encode, morton_decode, hilbert_encode, hilbert_decode, curve_order
from repro.grid.loadbalance import (
    LoadBalancer,
    compact_ranks,
    reassign_on_failure,
    round_robin_assign,
)
from repro.grid.regrid import TiledRegridder, flagged_tiles, flags_from_field

__all__ = [
    "TiledRegridder",
    "flagged_tiles",
    "flags_from_field",
    "Box",
    "ivec",
    "union_volume",
    "Patch",
    "Level",
    "Grid",
    "build_two_level_grid",
    "build_single_level_grid",
    "decompose_level",
    "tile_box",
    "patch_count",
    "CellType",
    "domain_cell_types",
    "mark_intrusion",
    "coarsen_average",
    "coarsen_max",
    "refine_inject",
    "project_properties",
    "morton_encode",
    "morton_decode",
    "hilbert_encode",
    "hilbert_decode",
    "curve_order",
    "LoadBalancer",
    "compact_ranks",
    "reassign_on_failure",
    "round_robin_assign",
]
