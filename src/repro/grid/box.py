"""Integer index boxes — the region algebra under all AMR machinery.

A :class:`Box` is a half-open axis-aligned region of cell indices
``[lo, hi)`` in 3-D index space, mirroring Uintah's
``Patch::getCellLowIndex/getCellHighIndex`` convention. All patch,
ghost-region, and coarse/fine arithmetic in :mod:`repro.grid` reduces
to operations on boxes.

Boxes are immutable and hashable so they can key dependency maps in the
task graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.util.errors import GridError

IntVec = Tuple[int, int, int]


def ivec(value: Sequence[int]) -> IntVec:
    """Coerce a length-3 sequence to an integer tuple."""
    t = tuple(int(v) for v in value)
    if len(t) != 3:
        raise GridError(f"expected a length-3 index vector, got {value!r}")
    return t  # type: ignore[return-value]


def ivec_add(a: IntVec, b: IntVec) -> IntVec:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def ivec_sub(a: IntVec, b: IntVec) -> IntVec:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def ivec_mul(a: IntVec, b: IntVec) -> IntVec:
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


def ivec_min(a: IntVec, b: IntVec) -> IntVec:
    return (min(a[0], b[0]), min(a[1], b[1]), min(a[2], b[2]))


def ivec_max(a: IntVec, b: IntVec) -> IntVec:
    return (max(a[0], b[0]), max(a[1], b[1]), max(a[2], b[2]))


def floor_div(a: IntVec, b: IntVec) -> IntVec:
    """Component-wise floor division (correct for negative indices)."""
    return (a[0] // b[0], a[1] // b[1], a[2] // b[2])


def ceil_div(a: IntVec, b: IntVec) -> IntVec:
    """Component-wise ceiling division (correct for negative indices)."""
    return (-((-a[0]) // b[0]), -((-a[1]) // b[1]), -((-a[2]) // b[2]))


@dataclass(frozen=True)
class Box:
    """Half-open integer region ``[lo, hi)``.

    ``hi[d] <= lo[d]`` in any dimension denotes the empty box; all empty
    boxes compare unequal unless their bounds match, so use
    :attr:`empty` rather than equality to test emptiness.
    """

    lo: IntVec
    hi: IntVec

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", ivec(self.lo))
        object.__setattr__(self, "hi", ivec(self.hi))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_extent(lo: Sequence[int], extent: Sequence[int]) -> "Box":
        lo_v = ivec(lo)
        return Box(lo_v, ivec_add(lo_v, ivec(extent)))

    @staticmethod
    def cube(n: int, lo: Sequence[int] = (0, 0, 0)) -> "Box":
        """An ``n**3`` box anchored at ``lo``."""
        return Box.from_extent(lo, (n, n, n))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def extent(self) -> IntVec:
        return (
            max(0, self.hi[0] - self.lo[0]),
            max(0, self.hi[1] - self.lo[1]),
            max(0, self.hi[2] - self.lo[2]),
        )

    @property
    def shape(self) -> IntVec:
        """Alias for :attr:`extent`, matching numpy vocabulary."""
        return self.extent

    @property
    def volume(self) -> int:
        e = self.extent
        return e[0] * e[1] * e[2]

    @property
    def empty(self) -> bool:
        return self.volume == 0

    def contains_point(self, p: Sequence[int]) -> bool:
        q = ivec(p)
        return all(self.lo[d] <= q[d] < self.hi[d] for d in range(3))

    def contains_box(self, other: "Box") -> bool:
        if other.empty:
            return True
        return all(
            self.lo[d] <= other.lo[d] and other.hi[d] <= self.hi[d]
            for d in range(3)
        )

    def intersects(self, other: "Box") -> bool:
        return not self.intersect(other).empty

    # ------------------------------------------------------------------
    # region algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Box") -> "Box":
        return Box(ivec_max(self.lo, other.lo), ivec_min(self.hi, other.hi))

    def bounding_union(self, other: "Box") -> "Box":
        if self.empty:
            return other
        if other.empty:
            return self
        return Box(ivec_min(self.lo, other.lo), ivec_max(self.hi, other.hi))

    def subtract(self, other: "Box") -> List["Box"]:
        """``self \\ other`` as a list of disjoint boxes.

        Uses the standard axis-sweep split: at most 6 pieces, all
        disjoint, whose union is exactly the difference.
        """
        inter = self.intersect(other)
        if inter.empty:
            return [] if self.empty else [self]
        pieces: List[Box] = []
        lo, hi = list(self.lo), list(self.hi)
        for d in range(3):
            if lo[d] < inter.lo[d]:
                piece_hi = hi.copy()
                piece_hi[d] = inter.lo[d]
                pieces.append(Box(tuple(lo), tuple(piece_hi)))
                lo = lo.copy()
                lo[d] = inter.lo[d]
            if inter.hi[d] < hi[d]:
                piece_lo = lo.copy()
                piece_lo[d] = inter.hi[d]
                pieces.append(Box(tuple(piece_lo), tuple(hi)))
                hi = hi.copy()
                hi[d] = inter.hi[d]
        return [p for p in pieces if not p.empty]

    def grow(self, n) -> "Box":
        """Expand (or shrink, for negative ``n``) by ``n`` cells per side."""
        g = ivec(n) if not isinstance(n, int) else (n, n, n)
        return Box(ivec_sub(self.lo, g), ivec_add(self.hi, g))

    def shift(self, offset: Sequence[int]) -> "Box":
        o = ivec(offset)
        return Box(ivec_add(self.lo, o), ivec_add(self.hi, o))

    def coarsen(self, ratio) -> "Box":
        """Map to the coarser index space covering the same physical
        region: ``lo`` floors, ``hi`` ceils — the coarse box always
        covers the whole fine box.
        """
        r = ivec(ratio) if not isinstance(ratio, int) else (ratio, ratio, ratio)
        if any(c <= 0 for c in r):
            raise GridError(f"refinement ratio must be positive, got {r}")
        if self.empty:
            return Box(floor_div(self.lo, r), floor_div(self.lo, r))
        return Box(floor_div(self.lo, r), ceil_div(self.hi, r))

    def refine(self, ratio) -> "Box":
        """Map to the finer index space covering the same physical region."""
        r = ivec(ratio) if not isinstance(ratio, int) else (ratio, ratio, ratio)
        if any(c <= 0 for c in r):
            raise GridError(f"refinement ratio must be positive, got {r}")
        return Box(ivec_mul(self.lo, r), ivec_mul(self.hi, r))

    # ------------------------------------------------------------------
    # numpy interop
    # ------------------------------------------------------------------
    def slices(self, origin: Sequence[int] = (0, 0, 0)) -> Tuple[slice, slice, slice]:
        """Slices addressing this box inside an array anchored at ``origin``.

        The caller guarantees the array actually covers the box;
        :meth:`contains_box` on the array's box is the check.
        """
        o = ivec(origin)
        return (
            slice(self.lo[0] - o[0], self.hi[0] - o[0]),
            slice(self.lo[1] - o[1], self.hi[1] - o[1]),
            slice(self.lo[2] - o[2], self.hi[2] - o[2]),
        )

    def cells(self) -> Iterator[IntVec]:
        """Iterate all cell indices (x fastest-varying last, C order)."""
        for i in range(self.lo[0], self.hi[0]):
            for j in range(self.lo[1], self.hi[1]):
                for k in range(self.lo[2], self.hi[2]):
                    yield (i, j, k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Box({self.lo} -> {self.hi})"


def union_volume(boxes: Sequence[Box]) -> int:
    """Volume of the union of (possibly overlapping) boxes.

    Sweep over x-slabs of distinct lo/hi coordinates; inside each slab
    the problem reduces to 2-D, solved the same way. Adequate for the
    modest box counts in ghost-region bookkeeping.
    """
    boxes = [b for b in boxes if not b.empty]
    if not boxes:
        return 0

    def _axis_union(intervals: List[Tuple[int, int]]) -> int:
        intervals.sort()
        total = 0
        cur_lo, cur_hi = intervals[0]
        for lo, hi in intervals[1:]:
            if lo > cur_hi:
                total += cur_hi - cur_lo
                cur_lo, cur_hi = lo, hi
            else:
                cur_hi = max(cur_hi, hi)
        return total + (cur_hi - cur_lo)

    xs = sorted({b.lo[0] for b in boxes} | {b.hi[0] for b in boxes})
    total = 0
    for x0, x1 in zip(xs[:-1], xs[1:]):
        slab = [b for b in boxes if b.lo[0] <= x0 and x1 <= b.hi[0]]
        if not slab:
            continue
        ys = sorted({b.lo[1] for b in slab} | {b.hi[1] for b in slab})
        area = 0
        for y0, y1 in zip(ys[:-1], ys[1:]):
            col = [b for b in slab if b.lo[1] <= y0 and y1 <= b.hi[1]]
            if not col:
                continue
            zlen = _axis_union([(b.lo[2], b.hi[2]) for b in col])
            area += (y1 - y0) * zlen
        total += (x1 - x0) * area
    return total
