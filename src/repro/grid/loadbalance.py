"""SFC-based load balancing: assign patches to ranks.

Patches are ordered along a space-filling curve (locality => neighbour
patches land on the same or nearby ranks => less halo traffic), then
the curve is cut into contiguous chunks of near-equal cost. Cost
defaults to cell count, matching Uintah's simple cost model for
uniform-work tasks like RMCRT where work ~ cells * rays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.grid.patch import Patch
from repro.grid.sfc import curve_order
from repro.util.errors import GridError


class LoadBalancer:
    """Assigns patches to ``num_ranks`` ranks along an SFC."""

    def __init__(
        self,
        num_ranks: int,
        curve: str = "morton",
        cost_fn: Optional[Callable[[Patch], float]] = None,
    ) -> None:
        if num_ranks < 1:
            raise GridError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)
        self.curve = curve
        self.cost_fn = cost_fn or (lambda p: float(p.num_cells))

    def order_patches(self, patches: Sequence[Patch]) -> List[Patch]:
        """Patches sorted along the curve by patch-centroid index."""
        if not patches:
            return []
        pts = np.array(
            [[int(c) for c in p.centroid_index()] for p in patches], dtype=np.int64
        )
        pts -= pts.min(axis=0)  # curves need non-negative coordinates
        order = curve_order(pts, curve=self.curve)
        return [patches[i] for i in order]

    def assign(self, patches: Sequence[Patch]) -> Dict[int, int]:
        """Map ``patch_id -> rank``.

        Greedy prefix cut: walk the curve accumulating cost, advancing
        to the next rank when the running total passes the ideal
        per-rank share. Guarantees every rank gets at least one patch
        whenever ``len(patches) >= num_ranks``.
        """
        ordered = self.order_patches(patches)
        n = len(ordered)
        if n == 0:
            return {}
        costs = np.array([self.cost_fn(p) for p in ordered])
        total = float(costs.sum())
        if total <= 0:
            raise GridError("total patch cost must be positive")
        assignment: Dict[int, int] = {}
        rank = 0
        acc = 0.0
        for i, patch in enumerate(ordered):
            remaining_patches = n - i
            remaining_ranks = self.num_ranks - rank
            # never strand a later rank without patches
            must_advance = remaining_patches == remaining_ranks and acc > 0
            target = total * (rank + 1) / self.num_ranks
            if rank < self.num_ranks - 1 and (must_advance or acc + 0.5 * costs[i] >= target):
                rank += 1
            assignment[patch.patch_id] = rank
            acc += costs[i]
        return assignment

    def rank_costs(self, patches: Sequence[Patch], assignment: Dict[int, int]) -> np.ndarray:
        """Per-rank total cost under an assignment."""
        out = np.zeros(self.num_ranks)
        by_id = {p.patch_id: p for p in patches}
        for pid, rank in assignment.items():
            out[rank] += self.cost_fn(by_id[pid])
        return out

    def imbalance(self, patches: Sequence[Patch], assignment: Dict[int, int]) -> float:
        """max/mean cost ratio (1.0 = perfect balance)."""
        costs = self.rank_costs(patches, assignment)
        mean = costs.mean()
        if mean <= 0:
            return float("inf")
        return float(costs.max() / mean)


def round_robin_assign(patches: Sequence[Patch], num_ranks: int) -> Dict[int, int]:
    """Baseline assignment ignoring locality — used in ablation tests."""
    return {p.patch_id: i % num_ranks for i, p in enumerate(patches)}
