"""SFC-based load balancing: assign patches to ranks.

Patches are ordered along a space-filling curve (locality => neighbour
patches land on the same or nearby ranks => less halo traffic), then
the curve is cut into contiguous chunks of near-equal cost. Cost
defaults to cell count, matching Uintah's simple cost model for
uniform-work tasks like RMCRT where work ~ cells * rays.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.grid.patch import Patch
from repro.grid.sfc import curve_order
from repro.util.errors import GridError


class LoadBalancer:
    """Assigns patches to ``num_ranks`` ranks along an SFC."""

    def __init__(
        self,
        num_ranks: int,
        curve: str = "morton",
        cost_fn: Optional[Callable[[Patch], float]] = None,
    ) -> None:
        if num_ranks < 1:
            raise GridError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = int(num_ranks)
        self.curve = curve
        self.cost_fn = cost_fn or (lambda p: float(p.num_cells))

    def order_patches(self, patches: Sequence[Patch]) -> List[Patch]:
        """Patches sorted along the curve by patch-centroid index."""
        if not patches:
            return []
        pts = np.array(
            [[int(c) for c in p.centroid_index()] for p in patches], dtype=np.int64
        )
        pts -= pts.min(axis=0)  # curves need non-negative coordinates
        order = curve_order(pts, curve=self.curve)
        return [patches[i] for i in order]

    def assign(self, patches: Sequence[Patch]) -> Dict[int, int]:
        """Map ``patch_id -> rank``.

        Greedy prefix cut: walk the curve accumulating cost, advancing
        to the next rank when the running total passes the ideal
        per-rank share. Guarantees every rank gets at least one patch
        whenever ``len(patches) >= num_ranks``.
        """
        ordered = self.order_patches(patches)
        n = len(ordered)
        if n == 0:
            return {}
        costs = np.array([self.cost_fn(p) for p in ordered])
        total = float(costs.sum())
        if total <= 0:
            raise GridError("total patch cost must be positive")
        assignment: Dict[int, int] = {}
        rank = 0
        acc = 0.0
        for i, patch in enumerate(ordered):
            remaining_patches = n - i
            remaining_ranks = self.num_ranks - rank
            # never strand a later rank without patches
            must_advance = remaining_patches == remaining_ranks and acc > 0
            target = total * (rank + 1) / self.num_ranks
            if rank < self.num_ranks - 1 and (must_advance or acc + 0.5 * costs[i] >= target):
                rank += 1
            assignment[patch.patch_id] = rank
            acc += costs[i]
        return assignment

    def rank_costs(self, patches: Sequence[Patch], assignment: Dict[int, int]) -> np.ndarray:
        """Per-rank total cost under an assignment."""
        out = np.zeros(self.num_ranks)
        by_id = {p.patch_id: p for p in patches}
        for pid, rank in assignment.items():
            out[rank] += self.cost_fn(by_id[pid])
        return out

    def imbalance(self, patches: Sequence[Patch], assignment: Dict[int, int]) -> float:
        """max/mean cost ratio (1.0 = perfect balance)."""
        costs = self.rank_costs(patches, assignment)
        mean = costs.mean()
        if mean <= 0:
            return float("inf")
        return float(costs.max() / mean)


def round_robin_assign(patches: Sequence[Patch], num_ranks: int) -> Dict[int, int]:
    """Baseline assignment ignoring locality — used in ablation tests."""
    return {p.patch_id: i % num_ranks for i, p in enumerate(patches)}


# ----------------------------------------------------------------------
# failure recovery
# ----------------------------------------------------------------------
def reassign_on_failure(
    patches: Sequence[Patch],
    assignment: Dict[int, int],
    dead_ranks: Sequence[int],
    curve: str = "morton",
    cost_fn: Optional[Callable[[Patch], float]] = None,
) -> Dict[int, int]:
    """Re-home a dead rank's patches onto the survivors.

    Survivors keep their patches (their warehouses, caches, and halo
    neighbourhoods stay warm); only the *orphaned* patches move. Each
    orphan, visited in SFC order to preserve what locality it had, goes
    to the currently least-loaded surviving rank. Returns a new
    assignment still keyed by the original rank ids — callers that need
    dense rank numbering (to compile a graph for fewer ranks) follow up
    with :func:`compact_ranks`.
    """
    dead = set(int(r) for r in dead_ranks)
    survivors = sorted(set(assignment.values()) - dead)
    if not survivors:
        raise GridError(
            f"all ranks {sorted(set(assignment.values()))} died; nothing to recover onto"
        )
    cost = cost_fn or (lambda p: float(p.num_cells))
    by_id = {p.patch_id: p for p in patches}
    load = {r: 0.0 for r in survivors}
    new_assignment: Dict[int, int] = {}
    orphans: List[Patch] = []
    for pid, rank in assignment.items():
        if rank in dead:
            orphans.append(by_id[pid])
        else:
            new_assignment[pid] = rank
            load[rank] += cost(by_id[pid])
    lb = LoadBalancer(max(survivors) + 1, curve=curve, cost_fn=cost_fn)
    for patch in lb.order_patches(orphans):
        target = min(survivors, key=lambda r: (load[r], r))
        new_assignment[patch.patch_id] = target
        load[target] += cost(patch)
    return new_assignment


def compact_ranks(assignment: Dict[int, int]) -> Tuple[Dict[int, int], int]:
    """Renumber surviving ranks densely as ``0..n-1``.

    Schedulers spawn one worker per rank id, so after a death the
    sparse survivor ids {0, 2, 3} must become {0, 1, 2}. Returns the
    renumbered assignment and the new rank count; relative rank order
    is preserved.
    """
    survivors = sorted(set(assignment.values()))
    remap = {old: new for new, old in enumerate(survivors)}
    return {pid: remap[r] for pid, r in assignment.items()}, len(survivors)
