"""The AMR grid hierarchy.

:class:`Grid` assembles levels coarsest-first and provides the
two-level "data onion" constructor used throughout the paper's
benchmarks: a fine CFD mesh plus a coarse, domain-spanning radiation
mesh related by an integer refinement ratio (typically 4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.grid.box import Box, ivec
from repro.grid.decomposition import decompose_level
from repro.grid.level import Level
from repro.util.errors import GridError


class Grid:
    """An ordered hierarchy of :class:`Level` objects, coarsest first."""

    def __init__(self, physical_lower: Sequence[float] = (0.0, 0.0, 0.0)) -> None:
        self.levels: List[Level] = []
        self.physical_lower = tuple(float(v) for v in physical_lower)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_level(
        self,
        domain_box: Box,
        dx: Sequence[float],
        refinement_ratio: Sequence[int] = (1, 1, 1),
    ) -> Level:
        """Append a level finer than all existing ones.

        ``refinement_ratio`` relates the new level to the previous
        (coarser) one and must reproduce its domain exactly: the new
        domain box refined *down* by the ratio must equal the coarser
        domain box, so both levels span the same physical region.
        """
        index = len(self.levels)
        level = Level(
            index,
            domain_box,
            dx,
            anchor=self.physical_lower,
            refinement_ratio=refinement_ratio,
        )
        if self.levels:
            coarser = self.levels[-1]
            rr = ivec(refinement_ratio)
            if any(r < 1 for r in rr):
                raise GridError(f"refinement ratio must be >= 1, got {rr}")
            if domain_box.coarsen(rr) != coarser.domain_box:
                raise GridError(
                    f"level {index} domain {domain_box} does not refine "
                    f"level {index - 1} domain {coarser.domain_box} by {rr}"
                )
            for d in range(3):
                expected = coarser.dx[d] / rr[d]
                if abs(level.dx[d] - expected) > 1e-12 * abs(expected):
                    raise GridError(
                        f"dx[{d}]={level.dx[d]} inconsistent with coarser "
                        f"dx/ratio={expected}"
                    )
        self.levels.append(level)
        return level

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def level(self, index: int) -> Level:
        try:
            return self.levels[index]
        except IndexError:
            raise GridError(f"no level {index} in grid of {len(self.levels)}") from None

    @property
    def finest_level(self) -> Level:
        if not self.levels:
            raise GridError("grid has no levels")
        return self.levels[-1]

    @property
    def coarsest_level(self) -> Level:
        if not self.levels:
            raise GridError("grid has no levels")
        return self.levels[0]

    @property
    def total_cells(self) -> int:
        return sum(lvl.num_cells for lvl in self.levels)

    @property
    def total_patches(self) -> int:
        return sum(lvl.num_patches for lvl in self.levels)

    def all_patches(self):
        for lvl in self.levels:
            yield from lvl.patches

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Grid({self.num_levels} levels, {self.total_cells} cells)"


def build_two_level_grid(
    fine_cells: int,
    refinement_ratio: int = 4,
    fine_patch_size: Optional[int] = None,
    coarse_patch_size: Optional[int] = None,
    physical_size: float = 1.0,
) -> Grid:
    """The paper's benchmark grid: a cube of ``fine_cells**3`` fine cells
    over a coarse radiation mesh coarser by ``refinement_ratio``.

    E.g. the LARGE problem is ``build_two_level_grid(512, 4)``: 512^3
    fine + 128^3 coarse = 136.31M cells. Patch sizes, when given, must
    divide the respective level extents.
    """
    if fine_cells % refinement_ratio != 0:
        raise GridError(
            f"fine_cells={fine_cells} not divisible by ratio={refinement_ratio}"
        )
    coarse_cells = fine_cells // refinement_ratio
    grid = Grid()
    coarse_dx = physical_size / coarse_cells
    fine_dx = physical_size / fine_cells
    coarse = grid.add_level(Box.cube(coarse_cells), (coarse_dx,) * 3)
    fine = grid.add_level(
        Box.cube(fine_cells),
        (fine_dx,) * 3,
        refinement_ratio=(refinement_ratio,) * 3,
    )
    if coarse_patch_size is not None:
        decompose_level(coarse, (coarse_patch_size,) * 3)
    if fine_patch_size is not None:
        decompose_level(fine, (fine_patch_size,) * 3, patch_id_offset=coarse.num_patches)
    return grid


def build_single_level_grid(
    cells: int,
    patch_size: Optional[int] = None,
    physical_size: float = 1.0,
) -> Grid:
    """A single fine mesh (the pre-AMR configuration the paper replaced)."""
    grid = Grid()
    level = grid.add_level(Box.cube(cells), (physical_size / cells,) * 3)
    if patch_size is not None:
        decompose_level(level, (patch_size,) * 3)
    return grid
