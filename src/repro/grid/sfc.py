"""Space-filling curves for locality-preserving patch ordering.

Uintah's load balancer orders patches along a space-filling curve and
cuts the curve into contiguous, cost-balanced chunks, one per rank
(Luitjens & Berzins, IPDPS'10). We provide 3-D Morton (Z-order) and
Hilbert encodings; both are exact bijections on ``[0, 2^bits)**3``,
Hilbert with strictly unit-step adjacency.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _part1by2(n: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value 3 apart (vectorized)."""
    n = n.astype(np.uint64) & np.uint64(0x1FFFFF)
    n = (n | (n << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    n = (n | (n << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    n = (n | (n << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    n = (n | (n << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    n = (n | (n << np.uint64(2))) & np.uint64(0x1249249249249249)
    return n


def _compact1by2(n: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    n = n.astype(np.uint64) & np.uint64(0x1249249249249249)
    n = (n ^ (n >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    n = (n ^ (n >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    n = (n ^ (n >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    n = (n ^ (n >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    n = (n ^ (n >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return n


def morton_encode(x, y, z) -> np.ndarray:
    """Morton key(s) for non-negative coordinates below 2^21."""
    x, y, z = (np.asarray(v, dtype=np.uint64) for v in (x, y, z))
    return _part1by2(x) | (_part1by2(y) << np.uint64(1)) | (_part1by2(z) << np.uint64(2))


def morton_decode(key) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    k = np.asarray(key, dtype=np.uint64)
    return (
        _compact1by2(k),
        _compact1by2(k >> np.uint64(1)),
        _compact1by2(k >> np.uint64(2)),
    )


# ----------------------------------------------------------------------
# Hilbert curve (3-D, per-point transform; patch counts are modest so a
# Python loop over bits is acceptable)
# ----------------------------------------------------------------------
def hilbert_encode(point: Sequence[int], bits: int) -> int:
    """Hilbert index of a 3-D point on a ``2^bits`` cube (Skilling 2004)."""
    x = [int(point[0]), int(point[1]), int(point[2])]
    n = 3
    m = 1 << (bits - 1)
    # inverse undo of the Skilling transform
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # gray encode
    for i in range(1, n):
        x[i] ^= x[i - 1]
    t = 0
    q = m
    while q > 1:
        if x[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        x[i] ^= t
    # interleave transposed bits into a single index
    h = 0
    for b in range(bits - 1, -1, -1):
        for i in range(n):
            h = (h << 1) | ((x[i] >> b) & 1)
    return h


def hilbert_decode(h: int, bits: int) -> Tuple[int, int, int]:
    """Inverse of :func:`hilbert_encode`."""
    n = 3
    x = [0, 0, 0]
    # de-interleave
    pos = n * bits
    for b in range(bits - 1, -1, -1):
        for i in range(n):
            pos -= 1
            x[i] |= ((h >> pos) & 1) << b
    # Skilling inverse: gray decode
    m = 1 << bits
    t = x[n - 1] >> 1
    for i in range(n - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t
    # undo excess work
    q = 2
    while q != m:
        p = q - 1
        for i in range(n - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return (x[0], x[1], x[2])


def curve_order(points: np.ndarray, curve: str = "morton") -> np.ndarray:
    """Permutation sorting integer points along the chosen curve.

    ``points`` is ``(n, 3)`` non-negative integers. Returns indices such
    that ``points[order]`` walks the curve.
    """
    pts = np.asarray(points, dtype=np.int64)
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {pts.shape}")
    if np.any(pts < 0):
        raise ValueError("curve ordering requires non-negative coordinates")
    if curve == "morton":
        keys = morton_encode(pts[:, 0], pts[:, 1], pts[:, 2])
        return np.argsort(keys, kind="stable")
    if curve == "hilbert":
        span = int(pts.max()) + 1 if pts.size else 1
        bits = max(1, int(np.ceil(np.log2(max(2, span)))))
        keys = np.array(
            [hilbert_encode(p, bits) for p in pts], dtype=np.uint64
        )
        return np.argsort(keys, kind="stable")
    raise ValueError(f"unknown curve {curve!r} (use 'morton' or 'hilbert')")
