"""Regular patch decomposition.

Uintah tiles each level's domain with equally sized Cartesian patches;
the patch size is the central tuning knob of the paper's Section V
(16^3 / 32^3 / 64^3 fine-mesh patches trade GPU kernel efficiency
against over-decomposition). The decomposition here reproduces that:
an exact tiling when the patch size divides the domain, with optional
remainder patches otherwise.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.grid.box import Box, ivec
from repro.grid.level import Level
from repro.grid.patch import Patch
from repro.util.errors import GridError


def tile_box(domain: Box, patch_extent: Sequence[int], allow_remainder: bool = False) -> List[Box]:
    """Split ``domain`` into patch boxes of ``patch_extent``.

    Boxes are produced in lexicographic (z-fastest) order. When the
    extent does not divide the domain and ``allow_remainder`` is set,
    trailing patches in each dimension are smaller; otherwise a
    :class:`GridError` is raised.
    """
    ext = ivec(patch_extent)
    if any(e <= 0 for e in ext):
        raise GridError(f"patch extent must be positive, got {ext}")
    dom_ext = domain.extent
    if not allow_remainder:
        for d in range(3):
            if dom_ext[d] % ext[d] != 0:
                raise GridError(
                    f"patch extent {ext} does not divide domain extent {dom_ext} "
                    f"in dimension {d} (pass allow_remainder=True to permit)"
                )
    boxes: List[Box] = []
    for i in range(domain.lo[0], domain.hi[0], ext[0]):
        for j in range(domain.lo[1], domain.hi[1], ext[1]):
            for k in range(domain.lo[2], domain.hi[2], ext[2]):
                hi = (
                    min(i + ext[0], domain.hi[0]),
                    min(j + ext[1], domain.hi[1]),
                    min(k + ext[2], domain.hi[2]),
                )
                boxes.append(Box((i, j, k), hi))
    return boxes


def decompose_level(
    level: Level,
    patch_extent: Sequence[int],
    patch_id_offset: int = 0,
    allow_remainder: bool = False,
) -> List[Patch]:
    """Tile ``level`` with patches and register them on the level.

    Patch ids are globally meaningful in the task graph, so callers
    stack levels by passing the running id offset.
    """
    if level.patches:
        raise GridError(f"level {level.index} is already decomposed")
    boxes = tile_box(level.domain_box, patch_extent, allow_remainder=allow_remainder)
    patches = [
        Patch(patch_id=patch_id_offset + n, level_index=level.index, box=b)
        for n, b in enumerate(boxes)
    ]
    for p in patches:
        # tiling guarantees disjoint in-domain boxes; skip the O(n^2) scan
        level._register_patch(p)
    return patches


def patch_count(domain_cells: int, patch_size: int) -> int:
    """Number of patches for a cubic domain/patch (exact tiling)."""
    if domain_cells % patch_size != 0:
        raise GridError(f"{patch_size} does not divide {domain_cells}")
    per_dim = domain_cells // patch_size
    return per_dim ** 3
