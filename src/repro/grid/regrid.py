"""Tiled regridding: refinement flags -> a new fine-level patch set.

Uintah's regridder (Luitjens & Berzins, paper ref [17]) covers the
cells an error estimator flagged with fixed-size tiles: the coarse
level is partitioned into tiles of the would-be fine patch size, every
tile containing at least one flag becomes a fine patch, and the result
is guaranteed to (a) cover all flags, (b) tile the fine index space
regularly (the decomposition invariant the schedulers and RMCRT ROI
logic rely on), and (c) stay within the level's domain.

For the radiation problems this is how a moving flame keeps a fine CFD
mesh around itself while the coarse radiation levels stay global.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.grid.box import Box, ivec
from repro.grid.grid import Grid
from repro.grid.level import Level
from repro.grid.patch import Patch
from repro.util.errors import GridError


def flags_from_field(field: np.ndarray, threshold: float) -> np.ndarray:
    """Boolean refinement flags: cells where ``field`` exceeds
    ``threshold`` (the simplest Uintah error estimator)."""
    return np.asarray(field) > threshold


def flagged_tiles(
    flags: np.ndarray,
    tile_size,
    origin: Sequence[int] = (0, 0, 0),
) -> List[Box]:
    """Tiles (in the *flag array's* index space) containing >= 1 flag.

    The flag array's last tiles may be partial when the tile size does
    not divide the array, matching Uintah's boundary tiles.
    """
    ts = ivec(tile_size) if not isinstance(tile_size, int) else (tile_size,) * 3
    if any(t < 1 for t in ts):
        raise GridError(f"tile size must be >= 1, got {ts}")
    flags = np.asarray(flags, dtype=bool)
    o = ivec(origin)
    out: List[Box] = []
    nx, ny, nz = flags.shape
    for i in range(0, nx, ts[0]):
        for j in range(0, ny, ts[1]):
            for k in range(0, nz, ts[2]):
                block = flags[i:i + ts[0], j:j + ts[1], k:k + ts[2]]
                if block.any():
                    lo = (o[0] + i, o[1] + j, o[2] + k)
                    hi = (
                        o[0] + min(i + ts[0], nx),
                        o[1] + min(j + ts[1], ny),
                        o[2] + min(k + ts[2], nz),
                    )
                    out.append(Box(lo, hi))
    return out


class TiledRegridder:
    """Produce a fine level's patches from coarse-level flags."""

    def __init__(self, fine_patch_size: int, refinement_ratio: int = 4) -> None:
        if fine_patch_size < 1 or refinement_ratio < 1:
            raise GridError("patch size and ratio must be >= 1")
        if fine_patch_size % refinement_ratio != 0:
            raise GridError(
                f"fine patch size {fine_patch_size} must be a multiple of the "
                f"refinement ratio {refinement_ratio} so tiles align with "
                f"coarse cells"
            )
        self.fine_patch_size = int(fine_patch_size)
        self.refinement_ratio = int(refinement_ratio)

    def fine_patch_boxes(self, coarse_level: Level, flags: np.ndarray) -> List[Box]:
        """Fine-level patch boxes covering all flagged coarse cells."""
        if tuple(flags.shape) != coarse_level.domain_box.extent:
            raise GridError(
                f"flags shape {flags.shape} != coarse domain "
                f"{coarse_level.domain_box.extent}"
            )
        coarse_tile = self.fine_patch_size // self.refinement_ratio
        tiles = flagged_tiles(flags, coarse_tile, origin=coarse_level.domain_box.lo)
        return [t.refine(self.refinement_ratio) for t in tiles]

    def regrid(
        self,
        grid: Grid,
        flags: np.ndarray,
        patch_id_offset: int = 0,
    ) -> Tuple[Grid, List[Patch]]:
        """Build a new grid: the old coarsest level plus a fine level
        holding only the flagged region's patches.

        Unlike the benchmark grids, the fine level here does NOT span
        the domain — it covers the flags. (RMCRT's domain-spanning
        radiation levels are the *coarse* ones, which regridding leaves
        untouched.)
        """
        coarse = grid.coarsest_level
        boxes = self.fine_patch_boxes(coarse, flags)
        if not boxes:
            raise GridError("no cells flagged: nothing to refine")
        rr = self.refinement_ratio
        new_grid = Grid(physical_lower=coarse.anchor)
        new_coarse = new_grid.add_level(coarse.domain_box, coarse.dx)
        for p in coarse.patches:
            new_coarse.add_patch(Patch(p.patch_id, 0, p.box))
        fine = new_grid.add_level(
            coarse.domain_box.refine(rr),
            tuple(d / rr for d in coarse.dx),
            refinement_ratio=(rr,) * 3,
        )
        patches = []
        for n, box in enumerate(boxes):
            patch = Patch(patch_id=patch_id_offset + n, level_index=1, box=box)
            fine._register_patch(patch)  # tiles are disjoint by construction
            patches.append(patch)
        return new_grid, patches

    @staticmethod
    def coverage_ok(flags: np.ndarray, coarse_level: Level, patches: List[Patch],
                    refinement_ratio: int) -> bool:
        """Every flagged coarse cell lies under some fine patch."""
        covered = np.zeros_like(np.asarray(flags, dtype=bool))
        o = coarse_level.domain_box.lo
        for p in patches:
            cbox = p.box.coarsen(refinement_ratio)
            covered[cbox.slices(origin=o)] = True
        return bool(np.all(covered[np.asarray(flags, dtype=bool)]))
