"""SLO-driven fleet sizing from queue-depth + burn-rate history.

The autoscaler is deliberately a *pure decision function over stored
telemetry*: each fabric tick appends one fleet-wide sample (total
backlog, per-routable-shard backlog, worst SLO burn, degraded count)
to a :class:`~repro.perf.tsdb.TimeSeriesStore`, and :meth:`decide`
reads windows of that history back. Nothing is decided from a single
instantaneous reading — a one-tick queue spike (a client's burst
submit) must not buy a shard, and one idle tick must not kill one.

Scaling rules, in priority order:

* **grow** when the per-shard backlog has stayed above
  ``backlog_high`` for ``sustain_s``, or the worst shard's error-budget
  burn has stayed above ``burn_high`` (the queue is eating the latency
  SLO, or errors are eating the budget — either way one more shard);
* **shrink** when the fleet-wide per-shard backlog has stayed below
  ``backlog_low`` for ``idle_retire_s`` and nothing is degraded;
* **hold** otherwise, and always within ``cooldown_s`` of the last
  action — resizing churns caches (HRW moves ~1/N of the keyspace),
  so decisions must be spaced out enough to observe their own effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.perf.tsdb import TimeSeriesStore


@dataclass
class AutoscalePolicy:
    """The knobs of the sizing loop (all durations in seconds)."""

    min_shards: int = 1        #: never drain below this
    max_shards: int = 4        #: never grow above this
    backlog_high: float = 4.0  #: sustained per-shard backlog that buys a shard
    backlog_low: float = 0.5   #: sustained per-shard backlog that frees one
    burn_high: float = 1.0     #: sustained SLO burn that buys a shard
    sustain_s: float = 2.0     #: how long "high" must hold before growing
    idle_retire_s: float = 6.0 #: how long "low" must hold before shrinking
    cooldown_s: float = 5.0    #: minimum spacing between actions
    min_samples: int = 3       #: no verdicts from fewer points than this


class Autoscaler:
    """Observe fleet telemetry into a tsdb; decide sizes from it."""

    def __init__(
        self,
        store: TimeSeriesStore,
        policy: Optional[AutoscalePolicy] = None,
    ) -> None:
        self.store = store
        self.policy = policy if policy is not None else AutoscalePolicy()
        self.last_action_t: Optional[float] = None
        self.decisions = 0

    # ------------------------------------------------------------------
    def observe(
        self,
        now: float,
        shards: int,
        backlog: int,
        worst_burn: float,
        degraded: int,
    ) -> dict:
        """Record one fleet sample (explicit timestamp: testable)."""
        shards = max(1, int(shards))
        return self.store.append(
            {
                "fabric.shards": float(shards),
                "fabric.backlog": float(backlog),
                "fabric.backlog_per_shard": float(backlog) / shards,
                "fabric.worst_burn": float(worst_burn),
                "fabric.degraded": float(degraded),
            },
            t=now,
        )

    # ------------------------------------------------------------------
    def _window(self, name: str, now: float, span_s: float):
        return [v for _, v in self.store.series(name, t0=now - span_s, t1=now)]

    def _sustained(self, name: str, now: float, span_s: float, above: float) -> bool:
        """True when every sample of the last ``span_s`` exceeds
        ``above`` — and there are enough of them to mean anything."""
        window = self._window(name, now, span_s)
        if len(window) < self.policy.min_samples:
            return False
        return min(window) > above

    def _sustained_below(self, name: str, now: float, span_s: float, below: float) -> bool:
        window = self._window(name, now, span_s)
        if len(window) < self.policy.min_samples:
            return False
        return max(window) < below

    def decide(self, now: float, live: int) -> Tuple[int, Optional[str]]:
        """The desired routable-shard count and the reason to change it
        (``(live, None)`` means hold)."""
        p = self.policy
        if self.last_action_t is not None and now - self.last_action_t < p.cooldown_s:
            return live, None
        if live < p.min_shards:
            self.last_action_t = now
            return p.min_shards, f"below floor of {p.min_shards}"
        if live < p.max_shards:
            if self._sustained("fabric.backlog_per_shard", now, p.sustain_s,
                               p.backlog_high):
                self.last_action_t = now
                self.decisions += 1
                return live + 1, (
                    f"backlog/shard > {p.backlog_high} for {p.sustain_s}s"
                )
            if self._sustained("fabric.worst_burn", now, p.sustain_s, p.burn_high):
                self.last_action_t = now
                self.decisions += 1
                return live + 1, (
                    f"SLO burn > {p.burn_high}x for {p.sustain_s}s"
                )
        if live > p.min_shards:
            idle = self._sustained_below(
                "fabric.backlog_per_shard", now, p.idle_retire_s, p.backlog_low
            )
            calm = self._sustained_below(
                "fabric.degraded", now, p.idle_retire_s, 0.5
            )
            if idle and calm:
                self.last_action_t = now
                self.decisions += 1
                return live - 1, (
                    f"backlog/shard < {p.backlog_low} for {p.idle_retire_s}s"
                )
        return live, None
