"""One fabric shard: its on-disk spool layout and process handle.

A shard is a ``python -m repro serve`` process bound to its own spool
directory under ``<fabric-root>/shards/<shard-id>/``. Everything the
fabric knows about a shard it learns from that directory:

* ``inbox/``   — requests routed to it, not yet claimed;
* ``claimed/<shard-id>/`` — requests it owns but has not answered
  (the zero-loss window the supervisor re-homes after a kill);
* ``outbox/``  — finished results awaiting the router's forwarding;
* ``journal/`` — the service's write-ahead journal (accepted solves);
* ``status.json`` — SLO snapshot + heartbeat, republished every serve
  pass; its ``heartbeat_t`` going stale is how death is detected even
  when the process object is not ours to poll.

:class:`ShardHandle` wraps both halves — the directory protocol and an
optional owned subprocess — so the supervisor treats spawned and
externally-started shards uniformly.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import List, Optional

#: serve processes under a supervisor never idle out on their own; the
#: supervisor owns their lifecycle through stop files and signals
_SUPERVISED_IDLE_TIMEOUT = 86400.0


class ShardPaths:
    """The spool-directory layout of one shard."""

    def __init__(self, spool) -> None:
        self.spool = Path(spool)
        self.inbox = self.spool / "inbox"
        self.outbox = self.spool / "outbox"
        self.claimed_root = self.spool / "claimed"
        self.journal = self.spool / "journal"
        self.cache = self.spool / "cache"
        self.tsdb = self.spool / "tsdb"
        self.status = self.spool / "status.json"
        self.stop = self.spool / "serve.stop"
        self.log = self.spool / "serve.log"

    def claim_dir(self, shard_id: str) -> Path:
        return self.claimed_root / shard_id

    def ensure(self) -> "ShardPaths":
        for d in (self.inbox, self.outbox, self.claimed_root, self.journal):
            d.mkdir(parents=True, exist_ok=True)
        return self

    # ------------------------------------------------------------------
    def inbox_depth(self) -> int:
        """Routed-but-unclaimed requests (the work-stealing pool)."""
        return sum(1 for _ in self.inbox.glob("*.ups"))

    def claimed_depth(self) -> int:
        """Claimed-but-unanswered requests, across every claimant id."""
        if not self.claimed_root.is_dir():
            return 0
        return sum(1 for _ in self.claimed_root.glob("*/*.ups"))

    def claim_dirs(self) -> List[Path]:
        if not self.claimed_root.is_dir():
            return []
        return sorted(p for p in self.claimed_root.iterdir() if p.is_dir())

    def journal_entries(self) -> List[Path]:
        if not self.journal.is_dir():
            return []
        return sorted(self.journal.glob("*.json"))


class ShardHandle:
    """One shard: directory protocol + (optionally) its process."""

    def __init__(
        self,
        shard_id: str,
        spool,
        workers: int = 1,
        backend: str = "thread",
        tsdb_interval_s: float = 0.5,
        max_queue: int = 256,
    ) -> None:
        self.shard_id = shard_id
        self.paths = ShardPaths(spool)
        self.workers = int(workers)
        self.backend = backend
        self.tsdb_interval_s = float(tsdb_interval_s)
        self.max_queue = int(max_queue)
        self.proc: Optional[subprocess.Popen] = None
        self._log_fh = None
        self.draining = False
        self.restarts = 0
        self.spawned_at: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def serve_argv(self) -> List[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--spool", str(self.paths.spool),
            "--shard-id", self.shard_id,
            "--workers", str(self.workers),
            "--backend", self.backend,
            "--journal", str(self.paths.journal),
            "--cache-dir", str(self.paths.cache),
            "--idle-timeout", str(_SUPERVISED_IDLE_TIMEOUT),
            "--stop-file", str(self.paths.stop),
            "--tsdb-interval", str(self.tsdb_interval_s),
            "--max-queue", str(self.max_queue),
        ]

    def spawn(self) -> subprocess.Popen:
        """Start (or restart) the serve process for this shard."""
        self.paths.ensure()
        try:
            self.paths.stop.unlink()  # a stale stop file would kill it at birth
        except OSError:
            pass
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        self._close_log()
        self._log_fh = self.paths.log.open("a", encoding="utf-8")
        self.proc = subprocess.Popen(
            self.serve_argv(), stdout=self._log_fh,
            stderr=subprocess.STDOUT, env=env,
        )
        if self.spawned_at is not None:
            self.restarts += 1
        self.spawned_at = time.time()
        self.draining = False
        return self.proc

    def process_dead(self) -> bool:
        """True when we own a process object and it has exited."""
        return self.proc is not None and self.proc.poll() is not None

    def request_stop(self) -> None:
        """Ask the serve loop to drain and exit (graceful retire)."""
        self.paths.stop.touch()

    def kill(self) -> None:
        """SIGKILL the process, if we own one (the drill's hammer)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()

    def wait(self, timeout: Optional[float] = None) -> Optional[int]:
        if self.proc is None:
            return None
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None
        self._close_log()
        return code

    def _close_log(self) -> None:
        if self._log_fh is not None:
            try:
                self._log_fh.close()
            except OSError:
                pass
            self._log_fh = None

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def status(self) -> Optional[dict]:
        """The shard's last published status.json, or None."""
        try:
            return json.loads(self.paths.status.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def heartbeat_age(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds since the shard last proved liveness; None when it
        has never published a status."""
        now = time.time() if now is None else now
        status = self.status()
        if status is not None and isinstance(
            status.get("heartbeat_t"), (int, float)
        ):
            return max(0.0, now - float(status["heartbeat_t"]))
        try:
            return max(0.0, now - self.paths.status.stat().st_mtime)
        except OSError:
            return None

    def backlog(self) -> int:
        """Pending requests at this shard: routed + claimed + queued
        inside the service (from its own status report)."""
        depth = self.paths.inbox_depth() + self.paths.claimed_depth()
        status = self.status()
        if status is not None:
            depth += int(status.get("queue_depth") or 0)
        return depth

    def burn_rate(self) -> float:
        """Worst endpoint error-budget burn from the last status."""
        status = self.status()
        if status is None:
            return 0.0
        budget = (status.get("policy") or {}).get("error_budget") or 0.02
        worst = 0.0
        for ep in (status.get("endpoints") or {}).values():
            rate = ep.get("error_rate")
            if isinstance(rate, (int, float)) and budget > 0:
                worst = max(worst, float(rate) / budget)
        return worst
