"""The fabric's request plane: routing, work stealing, result relay.

The fabric root is itself a spool — clients keep using ``repro submit
--spool ROOT`` unchanged. The router is what moves requests onward:

* :meth:`Router.route_once` parses each front-inbox request, takes the
  **scene fingerprint** (grid geometry only — the result-cache and
  prepared-scene key), and renames the file into the HRW-chosen
  shard's inbox. Same scene, same shard, every time, across fleet
  resizes — that is what keeps each shard's cache hit-rate at
  single-process levels.
* :meth:`Router.steal_once` compares shard backlogs and re-routes
  *unclaimed* inbox files from the most loaded shard to the least.
  Affinity is a preference, latency is the promise: a steal trades a
  possible cache hit for immediate service. Renames race fairly with
  the victim shard's own claims, so a request is never duplicated.
* :meth:`Router.collect_once` relays finished results from shard
  outboxes back to the front outbox the submitter is polling.

Everything is single-threaded and idempotent per tick; crash-restart
of the router re-discovers all state from the directories.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.fabric.hashring import rendezvous_shard
from repro.perf import tracectx
from repro.perf.metrics import get_metrics
from repro.perf.tracer import get_tracer
from repro.service.spool import extract_ctx, move_requests, write_result
from repro.ups import parse_ups, scene_fingerprint
from repro.util.errors import ReproError


class Router:
    """Scene-affinity request routing over a fleet of shard spools."""

    def __init__(self, root, fleet, event_log=None) -> None:
        self.root = Path(root)
        self.inbox = self.root / "inbox"
        self.outbox = self.root / "outbox"
        self.fleet = fleet
        #: optional :class:`repro.fabric.events.EventLog` for steals
        self.event_log = event_log
        self.routed = 0
        self.stolen = 0
        self.collected = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def place(self, text: str) -> str:
        """The shard id that owns this request's scene."""
        spec = parse_ups(text)
        return rendezvous_shard(scene_fingerprint(spec), self.fleet.routable())

    def route_once(self) -> int:
        """Move every front-inbox request into its home shard's inbox.

        A request that fails to parse is answered directly with an
        error result — shipping it to a shard would only defer the
        same rejection.
        """
        metrics = get_metrics()
        moved = 0
        if not self.inbox.is_dir() or not self.fleet.routable():
            return moved
        for path in sorted(self.inbox.glob("*.ups")):
            try:
                raw = path.read_text()
            except OSError:
                continue  # submitter still writing, or a racing router
            body, ctx = extract_ctx(raw)
            try:
                shard_id = self.place(body)
            except (ReproError, OSError) as exc:
                # ReproError: malformed UPS; OSError: non-XML body that
                # parse_ups took for a (nonexistent) file path
                self.outbox.mkdir(parents=True, exist_ok=True)
                write_result(self.outbox, path.stem, error=str(exc))
                try:
                    path.unlink()
                except OSError:
                    pass
                self.rejected += 1
                metrics.counter("fabric.rejected").inc()
                continue
            shard = self.fleet.shards[shard_id]
            shard.paths.inbox.mkdir(parents=True, exist_ok=True)
            try:
                path.rename(shard.paths.inbox / path.name)
            except OSError:
                continue
            moved += 1
            metrics.counter("fabric.routed", shard=shard_id).inc()
            with tracectx.use(ctx):
                get_tracer().instant(
                    "fabric.route", cat="fabric",
                    **tracectx.stamp({"ticket": path.stem, "shard": shard_id}),
                )
        self.routed += moved
        return moved

    # ------------------------------------------------------------------
    # work stealing
    # ------------------------------------------------------------------
    def steal_once(self, spread: int = 2, max_moves: int = 4) -> List[str]:
        """Re-route unclaimed requests from the busiest shard to the
        idlest when their backlogs differ by at least ``spread``.

        Only inbox files move — claimed work is owned. The atomic
        rename arbitrates against the victim's claim loop, so a
        request that both sides reach is taken by exactly one.
        """
        backlogs = self.fleet.backlogs()
        if len(backlogs) < 2:
            return []
        ordered = sorted(backlogs.items(), key=lambda kv: (kv[1], kv[0]))
        idlest, low = ordered[0]
        busiest, high = ordered[-1]
        if high - low < spread:
            return []
        src = self.fleet.shards[busiest].paths.inbox
        dst = self.fleet.shards[idlest].paths.inbox
        # move at most half the gap: stealing past the midpoint would
        # just invert the imbalance next tick
        budget = min(max_moves, max(1, (high - low) // 2))
        moved = move_requests(src, dst, limit=budget)
        if moved:
            self.stolen += len(moved)
            get_metrics().counter(
                "fabric.stolen", src=busiest, dst=idlest
            ).inc(len(moved))
            if self.event_log is not None:
                self.event_log.emit(
                    "steal", src=busiest, dst=idlest, moved=len(moved),
                    tickets=[Path(m).stem for m in moved],
                )
        return moved

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def collect_once(self) -> int:
        """Relay finished results from every shard outbox to the front
        outbox (payload before sidecar, so completion never lies)."""
        from repro.service.spool import forward_results

        forwarded = 0
        for shard in self.fleet.shards.values():
            forwarded += forward_results(shard.paths.outbox, self.outbox)
        if forwarded:
            self.collected += forwarded
            get_metrics().counter("fabric.collected").inc(forwarded)
        return forwarded

    def stats(self) -> Dict[str, int]:
        return {
            "routed": self.routed,
            "stolen": self.stolen,
            "collected": self.collected,
            "rejected": self.rejected,
        }
