"""The fabric control loop, fleet status aggregation, and kill drill.

:class:`Fabric` is the single-threaded conductor: each :meth:`tick`
supervises (detect dead shards, re-home, respawn), routes (front inbox
→ shard inboxes by scene affinity), steals (rebalance unclaimed work),
collects (shard outboxes → front outbox), samples fleet telemetry into
the tsdb, asks the autoscaler for a size, and atomically republishes
``fabric_status.json``. Everything the tick needs it re-reads from
disk, so a crashed-and-restarted fabric process picks up the same
fleet mid-flight.

:func:`aggregate_status` / :func:`format_fleet` are the read side —
``python -m repro status --fabric ROOT`` renders any fabric root,
live or post-mortem, from its files alone.

:func:`run_drill` is the subsystem's acceptance test as a function:
spin up a fleet, submit a mixed scene load, SIGKILL a shard while it
holds claimed work, and verify **zero accepted requests lost** and
every ``divq`` **bit-identical** to an in-process single-machine
solve of the same spec.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.fabric.autoscaler import AutoscalePolicy, Autoscaler
from repro.fabric.events import EventLog
from repro.fabric.hashring import rendezvous_shard
from repro.fabric.router import Router
from repro.fabric.shard import ShardHandle
from repro.fabric.supervisor import Fleet, FleetSupervisor
from repro.perf import tracectx
from repro.perf.detect import default_bank, worst_severity
from repro.perf.tsdb import TimeSeriesStore
from repro.service.spool import read_result_meta, write_request
from repro.ups import (
    GridSpec,
    ProblemSpec,
    RMCRTSpec,
    run_ups,
    scene_fingerprint,
    spec_fingerprint,
    spec_to_ups,
)
from repro.util.atomic import atomic_write_text

#: default staleness bound used when a fabric root carries no recorded
#: heartbeat timeout (post-mortem aggregation of a foreign root)
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0


@dataclass
class FabricConfig:
    """Sizing and cadence of one fabric instance."""

    shards: int = 2                    #: initial fleet size
    workers_per_shard: int = 1         #: service workers inside each shard
    tick_s: float = 0.1                #: control-loop cadence
    heartbeat_timeout_s: float = 5.0   #: staleness bound before a shard is dead
    steal_spread: int = 2              #: backlog gap that triggers stealing
    autoscale: bool = True             #: let the autoscaler resize the fleet
    policy: AutoscalePolicy = field(default_factory=AutoscalePolicy)
    max_queue: int = 256               #: per-shard service queue bound
    tsdb_interval_s: float = 0.5       #: shard-level tsdb cadence
    recovering_grace_s: float = 3.0    #: how long after a recovery the
                                       #: fleet reports ``recovering``


class Fabric:
    """One fabric instance rooted at a directory that is itself a spool."""

    def __init__(self, root, config: Optional[FabricConfig] = None) -> None:
        self.root = Path(root)
        self.config = config if config is not None else FabricConfig()
        self.inbox = self.root / "inbox"
        self.outbox = self.root / "outbox"
        self.shards_root = self.root / "shards"
        self.status_path = self.root / "fabric_status.json"
        self.stop_path = self.root / "fabric.stop"
        for d in (self.inbox, self.outbox, self.shards_root):
            d.mkdir(parents=True, exist_ok=True)
        self.fleet = Fleet()
        self.events = EventLog(self.root / "events.jsonl")
        self.supervisor = FleetSupervisor(
            self.fleet,
            self.shards_root,
            heartbeat_timeout_s=self.config.heartbeat_timeout_s,
            workers_per_shard=self.config.workers_per_shard,
            max_queue=self.config.max_queue,
            tsdb_interval_s=self.config.tsdb_interval_s,
            front_outbox=self.outbox,
            event_log=self.events,
        )
        self.router = Router(self.root, self.fleet, event_log=self.events)
        self.autoscaler = Autoscaler(
            TimeSeriesStore(self.root / "tsdb", rank=0), self.config.policy
        )
        #: streaming anomaly detectors over the fleet-level series the
        #: autoscaler samples each tick (backlog, burn, per-shard load)
        self.detect_bank = default_bank("fabric")
        self.ticks = 0
        self.scale_actions: List[dict] = []
        self._last_recovery_t: Optional[float] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def up(self) -> List[str]:
        """Spawn the initial fleet (idempotent per shard id)."""
        try:
            self.stop_path.unlink()
        except OSError:
            pass
        while len(self.fleet) < self.config.shards:
            self.supervisor.grow()
        return sorted(self.fleet.shards)

    def attach(self) -> List[str]:
        """Adopt already-running shards from the directory layout
        (router-only mode: no spawning, supervision reads heartbeats
        but owns no processes)."""
        if self.shards_root.is_dir():
            for sdir in sorted(self.shards_root.iterdir()):
                if sdir.is_dir() and sdir.name not in self.fleet.shards:
                    shard = self.supervisor.build_shard(sdir.name)
                    shard.draining = shard.paths.stop.exists()
                    self.fleet.add(shard)
        return sorted(self.fleet.shards)

    def down(self, timeout_s: float = 15.0) -> dict:
        """Drain and stop every shard, then publish a final status."""
        self.supervisor.shutdown(timeout_s=timeout_s)
        self.router.collect_once()
        doc = self._status_doc(time.time(), state_override="down")
        atomic_write_text(self.status_path, json.dumps(doc, indent=2) + "\n")
        return doc

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------
    def tick(self, now: Optional[float] = None) -> dict:
        """One full control pass; returns the published status doc."""
        now = time.time() if now is None else now
        records = self.supervisor.check_once(now)
        if records:
            self._last_recovery_t = now
        self.router.route_once()
        self.router.steal_once(spread=self.config.steal_spread)
        self.router.collect_once()

        live = len(self.fleet.routable())
        backlog = sum(self.fleet.backlogs().values())
        worst_burn = 0.0
        degraded = 0
        for sid in self.fleet.routable():
            shard = self.fleet.shards[sid]
            worst_burn = max(worst_burn, shard.burn_rate())
            status = shard.status()
            if status is not None and status.get("degraded"):
                degraded += 1
        sample = self.autoscaler.observe(now, live, backlog, worst_burn,
                                         degraded)
        self.detect_bank.observe(sample)
        if self.config.autoscale and live > 0:
            desired, reason = self.autoscaler.decide(now, live)
            desired = min(self.config.policy.max_shards,
                          max(self.config.policy.min_shards, desired))
            if desired != live and reason is not None:
                self.supervisor.scale_to(desired)
                self.scale_actions.append(
                    {"t": now, "from": live, "to": desired, "reason": reason}
                )
                self.events.emit("autoscale", from_shards=live,
                                 to_shards=desired, reason=reason)

        self.ticks += 1
        doc = self._status_doc(now)
        atomic_write_text(self.status_path, json.dumps(doc, indent=2) + "\n")
        return doc

    def run(
        self,
        max_ticks: Optional[int] = None,
        idle_timeout_s: Optional[float] = None,
    ) -> int:
        """The foreground loop of ``repro fabric up``: tick until the
        stop file appears (``repro fabric down``), the tick budget runs
        out, or the fleet has been idle past ``idle_timeout_s``."""
        last_busy = time.monotonic()
        while True:
            doc = self.tick()
            if doc["backlog"] > 0 or doc["router"]["routed"] > 0:
                if doc["backlog"] > 0:
                    last_busy = time.monotonic()
            if self.stop_path.exists():
                break
            if max_ticks is not None and self.ticks >= max_ticks:
                break
            if (idle_timeout_s is not None
                    and time.monotonic() - last_busy > idle_timeout_s):
                break
            time.sleep(self.config.tick_s)
        self.down()
        return 0

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------
    def _status_doc(self, now: float, state_override: Optional[str] = None) -> dict:
        shards: Dict[str, dict] = {}
        any_degraded = False
        for sid in sorted(self.fleet.shards):
            shard = self.fleet.shards[sid]
            status = shard.status()
            degraded = bool(status and status.get("degraded"))
            any_degraded = any_degraded or (degraded and not shard.draining)
            shard_detect = (status or {}).get("detections") or {}
            shards[sid] = {
                "state": (
                    "draining" if shard.draining
                    else "dead" if shard.process_dead()
                    else "degraded" if degraded
                    else "ok"
                ),
                "heartbeat_age_s": shard.heartbeat_age(now),
                "backlog": shard.backlog(),
                "restarts": shard.restarts,
                "served": (status or {}).get("shard", {}).get("served", 0),
                "breaches": (status or {}).get("breaches", []),
                "detections_worst": shard_detect.get("worst"),
            }
        recovering = (
            self._last_recovery_t is not None
            and now - self._last_recovery_t < self.config.recovering_grace_s
        )
        if state_override is not None:
            state = state_override
        elif any_degraded:
            state = "degraded"
        elif recovering:
            state = "recovering"
        else:
            state = "ok"
        detections = self.detect_bank.as_dict(now)
        shard_worsts = [
            s["detections_worst"] for s in shards.values()
            if s.get("detections_worst")
        ]
        if detections["worst"]:
            shard_worsts.append(detections["worst"])
        incident = None
        if shard_worsts or self.supervisor.recoveries:
            from repro.perf.doctor import summarize_live

            incident = summarize_live(
                self.detect_bank.active(now),
                self.events.tail(50),
                now=now,
            )
        return {
            "t": now,
            "state": state,
            "live": len(self.fleet.routable()),
            "shards_total": len(self.fleet),
            "backlog": sum(self.fleet.backlogs().values()),
            "heartbeat_timeout_s": self.config.heartbeat_timeout_s,
            "router": self.router.stats(),
            "recoveries": self.supervisor.recoveries[-10:],
            "scale_actions": self.scale_actions[-10:],
            "autoscale": self.config.autoscale,
            "ticks": self.ticks,
            "detections": detections,
            "detections_worst_any": worst_severity(shard_worsts),
            "incident": incident,
            "shards": shards,
        }


# ----------------------------------------------------------------------
# read-side aggregation (works on any fabric root, live or post-mortem)
# ----------------------------------------------------------------------
def aggregate_status(root) -> dict:
    """Aggregate every shard's status.json under a fabric root into one
    fleet document. Reads files only — needs no live fabric process.

    The worst shard wins: any live shard that is degraded, or whose
    heartbeat is stale without a clean exit marker, makes the whole
    fleet ``degraded``.
    """
    root = Path(root)
    now = time.time()
    fab: Optional[dict] = None
    try:
        fab = json.loads((root / "fabric_status.json").read_text())
    except (OSError, json.JSONDecodeError):
        fab = None
    timeout = DEFAULT_HEARTBEAT_TIMEOUT_S
    if fab and isinstance(fab.get("heartbeat_timeout_s"), (int, float)):
        timeout = float(fab["heartbeat_timeout_s"])

    shards: Dict[str, dict] = {}
    worst = "ok"
    shards_dir = root / "shards"
    if shards_dir.is_dir():
        for sdir in sorted(p for p in shards_dir.iterdir() if p.is_dir()):
            sid = sdir.name
            try:
                doc = json.loads((sdir / "status.json").read_text())
            except (OSError, json.JSONDecodeError):
                shards[sid] = {"state": "unknown"}
                continue
            info = doc.get("shard", {})
            hb = doc.get("heartbeat_t")
            age = max(0.0, now - float(hb)) if isinstance(hb, (int, float)) else None
            exited = bool(info.get("exited"))
            stale = age is not None and age > timeout
            detect = doc.get("detections") or {}
            det_worst = detect.get("worst")
            if exited:
                state = "exited"
            elif doc.get("degraded"):
                state = "degraded"
                worst = "degraded"
            elif stale:
                state = "dead"
                worst = "degraded"
            elif det_worst == "critical":
                # a live shard screaming critical detections counts
                # against the fleet even before its SLO math degrades
                state = "degraded"
                worst = "degraded"
            else:
                state = "ok"
            solve = (doc.get("endpoints") or {}).get("solve", {})
            shards[sid] = {
                "state": state,
                "heartbeat_age_s": age,
                "served": info.get("served", 0),
                "inbox_depth": info.get("inbox_depth", 0),
                "claimed_depth": info.get("claimed_depth", 0),
                "queue_depth": doc.get("queue_depth", 0),
                "requests": solve.get("requests", 0),
                "p99_s": solve.get("p99_s"),
                "breaches": doc.get("breaches", []),
                "detections_worst": det_worst,
                "detections": [
                    d.get("message") for d in detect.get("active", [])
                ],
            }
    if worst == "ok" and fab is not None and fab.get("state") in (
        "recovering", "degraded"
    ):
        # trust the live controller's finer-grained verdict when the
        # per-shard files alone look clean
        worst = fab["state"]
    return {
        "t": now,
        "state": worst,
        "shards": shards,
        "fabric": fab,
    }


def format_fleet(doc: dict) -> str:
    """Render an :func:`aggregate_status` document as the dashboard."""

    def fmt_ms(v) -> str:
        return f"{v * 1e3:8.1f}ms" if isinstance(v, (int, float)) else "       --"

    def fmt_age(v) -> str:
        return f"{v:5.1f}s" if isinstance(v, (int, float)) else "    --"

    shards = doc.get("shards", {})
    fab = doc.get("fabric") or {}
    live = sum(1 for s in shards.values() if s.get("state") == "ok")
    lines = [
        f"fabric status: {doc.get('state', 'unknown').upper()}   "
        f"({live}/{len(shards)} shard(s) healthy, "
        f"backlog {fab.get('backlog', '?')}, "
        f"routed {fab.get('router', {}).get('routed', '?')}, "
        f"stolen {fab.get('router', {}).get('stolen', '?')})"
    ]
    if shards:
        lines.append(
            f"  {'shard':<10} {'state':<10} {'hb':>6} {'served':>7} "
            f"{'inbox':>6} {'claim':>6} {'queue':>6} {'p99':>10}"
        )
        for sid in sorted(shards):
            s = shards[sid]
            lines.append(
                f"  {sid:<10} {s.get('state', '?'):<10} "
                f"{fmt_age(s.get('heartbeat_age_s'))} "
                f"{s.get('served', 0):>7} {s.get('inbox_depth', 0):>6} "
                f"{s.get('claimed_depth', 0):>6} {s.get('queue_depth', 0):>6} "
                f"{fmt_ms(s.get('p99_s'))}"
            )
            for breach in s.get("breaches", []):
                lines.append(f"    BREACH: {breach}")
            for message in (s.get("detections") or [])[:4]:
                worst_tag = (s.get("detections_worst") or "warn").upper()
                lines.append(f"    DETECT [{worst_tag}]: {message}")
    else:
        lines.append("  no shards found")
    incident = fab.get("incident")
    if incident and incident.get("hypotheses"):
        top = incident["hypotheses"][0]
        lines.append(
            f"  incident: {top.get('cause')} ({top.get('subject') or 'fleet'}) "
            f"confidence {top.get('confidence', 0):.0%} — {top.get('summary')}"
        )
    for rec in fab.get("recoveries", [])[-3:]:
        lines.append(
            f"  recovery: {rec.get('shard')} {rec.get('reason')} — "
            f"{rec.get('claims_released', 0)} claim(s) released, "
            f"{rec.get('requests_rehomed', 0)} request(s) re-homed → "
            f"{rec.get('target') or 'self'}"
        )
    for act in fab.get("scale_actions", [])[-3:]:
        lines.append(
            f"  autoscale: {act.get('from')} → {act.get('to')} shard(s) "
            f"({act.get('reason')})"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the kill-one-shard drill
# ----------------------------------------------------------------------
def _drill_specs(repeats: int) -> List[ProblemSpec]:
    """A mixed scene load: several distinct grid geometries (so routing
    spreads them over the fleet) times ``repeats`` distinct seeds (so
    each ticket is a real solve, not a cache collapse)."""
    geometries = [
        GridSpec(resolution=8, levels=1),
        GridSpec(resolution=10, levels=1),
        GridSpec(resolution=12, levels=2, refinement_ratio=2, patch_size=6),
        GridSpec(resolution=14, levels=1),
        GridSpec(resolution=9, levels=1),
        GridSpec(resolution=16, levels=2, refinement_ratio=2, patch_size=8),
    ]
    specs = []
    for gi, grid in enumerate(geometries):
        rays = 3 if grid.levels == 2 else 2
        for rep in range(repeats):
            specs.append(
                ProblemSpec(
                    grid=grid,
                    rmcrt=RMCRTSpec(
                        n_divq_rays=rays, random_seed=101 + 17 * gi + rep
                    ),
                )
            )
    return specs


def run_drill(
    root,
    shards: int = 2,
    repeats: int = 2,
    kill: bool = True,
    timeout_s: float = 300.0,
    report_path: Optional[str] = None,
) -> dict:
    """Kill a loaded shard mid-flight and prove nothing was lost.

    Returns (and optionally writes) a report with the three gates the
    CI job asserts on: ``lost == 0``, ``byte_identical``, and a
    ``recovering``/``degraded`` state observed before the final ``ok``.
    """
    config = FabricConfig(
        shards=shards, autoscale=False, tick_s=0.05, heartbeat_timeout_s=5.0
    )
    fabric = Fabric(root, config)
    specs = _drill_specs(repeats)
    tickets: Dict[str, ProblemSpec] = {}
    for i, spec in enumerate(specs):
        ticket = f"drill-{i:03d}-{spec_fingerprint(spec)[:8]}"
        write_request(
            fabric.inbox, ticket, spec_to_ups(spec), ctx=tracectx.child_or_new()
        )
        tickets[ticket] = spec

    states: List[str] = []
    report: dict = {
        "requests": len(tickets), "shards": shards, "killed": None,
        "kill_state": None, "lost": None, "errors": 0,
        "byte_identical": None, "mismatched": [], "states_observed": [],
        "recoveries": [], "elapsed_s": None, "ok": False,
    }
    t0 = time.monotonic()
    try:
        fabric.up()
        states.append(fabric.tick()["state"])  # routes everything

        victim_handle = None
        if kill:
            ids = fabric.fleet.routable()
            placement: Dict[str, int] = {sid: 0 for sid in ids}
            for spec in tickets.values():
                placement[rendezvous_shard(scene_fingerprint(spec), ids)] += 1
            victim = max(sorted(placement), key=lambda s: placement[s])
            victim_handle = fabric.fleet.shards[victim]
            report["killed"] = victim
            report["victim_load"] = placement[victim]
            # wait for the victim to *own* work (claimed files), so the
            # kill lands inside the zero-loss window the claim protocol
            # protects; if it drains everything first, kill anyway and
            # say so
            claim_deadline = time.monotonic() + 30.0
            report["kill_state"] = "unclaimed"
            while time.monotonic() < claim_deadline:
                if victim_handle.paths.claimed_depth() > 0:
                    report["kill_state"] = "claimed"
                    break
                done = sum(
                    1 for _ in victim_handle.paths.outbox.glob("*.json")
                )
                if (victim_handle.paths.inbox_depth() == 0
                        and done >= placement[victim]):
                    report["kill_state"] = "after-drain"
                    break
                time.sleep(0.001)
            victim_handle.kill()
            victim_handle.wait(timeout=10.0)

        pending = set(tickets)
        deadline = time.monotonic() + timeout_s
        while pending and time.monotonic() < deadline:
            doc = fabric.tick()
            states.append(doc["state"])
            for ticket in sorted(pending):
                if read_result_meta(fabric.outbox, ticket) is not None:
                    pending.discard(ticket)
            time.sleep(config.tick_s)
        report["lost"] = len(pending)
        report["lost_tickets"] = sorted(pending)
        report["recoveries"] = fabric.supervisor.recoveries
        # let the recovery grace elapse so the report shows the full
        # arc: ok → recovering → ok
        settle_deadline = time.monotonic() + config.recovering_grace_s + 3.0
        while time.monotonic() < settle_deadline:
            state = fabric.tick()["state"]
            states.append(state)
            if state == "ok":
                break
            time.sleep(config.tick_s)
    finally:
        fabric.down()

    # verify: every answered ticket must match an in-process solve of
    # the same spec exactly — the fabric may move work anywhere, but it
    # may never change an answer
    mismatched: List[str] = []
    errors = 0
    for ticket, spec in sorted(tickets.items()):
        meta = read_result_meta(fabric.outbox, ticket)
        if meta is None:
            continue
        if meta.get("error"):
            errors += 1
            mismatched.append(f"{ticket}: error {meta['error']}")
            continue
        with np.load(fabric.outbox / f"{ticket}.npz") as payload:
            got = payload["divq"]
        want = run_ups(spec).divq
        if not (got.shape == want.shape and np.array_equal(got, want)):
            mismatched.append(f"{ticket}: divq differs")
    report["errors"] = errors
    report["mismatched"] = mismatched
    report["byte_identical"] = not mismatched
    report["states_observed"] = sorted(set(states))
    report["final_state"] = states[-1] if states else None
    report["elapsed_s"] = round(time.monotonic() - t0, 3)
    disrupted = {"recovering", "degraded"} & set(states)
    report["ok"] = bool(
        report["lost"] == 0
        and report["byte_identical"]
        and (not kill or (disrupted and bool(report["recoveries"])))
    )
    if report_path:
        atomic_write_text(
            Path(report_path), json.dumps(report, indent=2) + "\n"
        )
    return report
