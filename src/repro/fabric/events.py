"""Structured, append-only fabric event log (``events.jsonl``).

The supervisor and router previously narrated lifecycle transitions
only through in-memory lists (``recoveries``, ``scale_actions``) and
stdout — gone with the process, invisible to postmortem tooling. The
event log is the durable record the root-cause doctor
(:mod:`repro.perf.doctor`) correlates with tsdb detections: every
shard spawn, death, re-home, respawn, steal, reap, retire, and
autoscale decision lands as one JSON line with a monotone ``seq``.

One writer (the fabric control loop) appends via
:func:`repro.util.atomic.append_jsonl` — a single short-line append
whose only crash artifact is a torn final line, which the reader
tolerates exactly like the tsdb scanner does. ``seq`` is re-seeded
from the surviving file at open, so ordering survives control-loop
restarts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import List, Optional, Sequence

from repro.util.atomic import append_jsonl

#: every event kind the fabric emits, in no particular order
EVENT_KINDS = (
    "spawn",      # supervisor started a shard process
    "death",      # heartbeat-stale or exited shard detected
    "rehome",     # claims/requests/journal moved off a dead shard
    "respawn",    # dead shard's process relaunched under the same id
    "steal",      # router moved queued work between live shards
    "autoscale",  # autoscaler changed (or decided) the fleet size
    "reap",       # drained shard stopped and removed
    "retire",     # shard asked to drain (stop file dropped)
)


class EventLog:
    """Append-only JSONL event stream with a monotone sequence."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        existing = read_events(self.path)
        self._seq = (existing[-1]["seq"] + 1) if existing else 0

    def emit(self, kind: str, **data) -> dict:
        """Append one event; returns the stored record."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fabric event kind {kind!r} (use {EVENT_KINDS})")
        record = {"t": time.time(), "seq": self._seq, "kind": kind}
        record.update(data)
        append_jsonl(self.path, record)
        self._seq += 1
        return record

    def read(self, t0: Optional[float] = None,
             kinds: Optional[Sequence[str]] = None) -> List[dict]:
        return read_events(self.path, t0=t0, kinds=kinds)

    def tail(self, n: int) -> List[dict]:
        return self.read()[-n:]


def read_events(path, t0: Optional[float] = None,
                kinds: Optional[Sequence[str]] = None) -> List[dict]:
    """Read an ``events.jsonl``, tolerating a torn final line; returns
    records ordered by ``seq``."""
    path = Path(path)
    if not path.exists():
        return []
    out: List[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-append
            if not (isinstance(rec, dict) and "seq" in rec and "kind" in rec):
                continue
            out.append(rec)
    out.sort(key=lambda r: r["seq"])
    if t0 is not None:
        out = [r for r in out if r.get("t", 0.0) >= t0]
    if kinds is not None:
        wanted = set(kinds)
        out = [r for r in out if r["kind"] in wanted]
    return out
