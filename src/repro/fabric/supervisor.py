"""Fleet membership, death detection, and zero-loss re-homing.

The supervisor owns the shard processes the fabric spawned and the
invariant the whole subsystem exists for: **an accepted request is
never lost**. A shard can die at any point of its pipeline, and each
point leaves a different durable trace:

==========================================  =============================
request state at the moment of SIGKILL      durable trace to recover from
==========================================  =============================
routed, unclaimed                           ``inbox/<ticket>.ups``
claimed, not yet submitted                  ``claimed/<id>/<ticket>.ups``
submitted, journaled, unsolved              claimed file **and** journal
solved, result published                    ``outbox`` (nothing to do)
==========================================  =============================

Because the serve loop keeps the claimed file until the result is
published, the claimed directory covers every accepted-but-unanswered
request; re-homing is therefore *move files, spawn process*:

* survivors exist → sweep the dead shard's claims back into its inbox,
  rename its inbox files into a survivor's inbox (HRW failover order,
  so every observer picks the same survivor), move its journal entries
  into the survivor's journal (warm-restart replay), then respawn a
  replacement under the **same shard id** — HRW placement is stable,
  so the replacement inherits its predecessor's keyspace and its
  still-warm on-disk cache;
* no survivors → respawn in place; the serve loop's own warm-restart
  path (release claims, replay journal) does the rest.

Death is detected two ways: the process object we own has exited, or
the shard's ``status.json`` heartbeat has gone stale (covers a wedged
process that is alive but not serving).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.fabric.hashring import rendezvous_rank
from repro.fabric.shard import ShardHandle
from repro.perf.metrics import get_metrics
from repro.service.spool import release_claims
from repro.util.errors import ReproError


class Fleet:
    """The live shard set: ordered membership + id allocation."""

    def __init__(self) -> None:
        self.shards: Dict[str, ShardHandle] = {}
        self._next_index = 0

    def add(self, shard: ShardHandle) -> ShardHandle:
        if shard.shard_id in self.shards:
            raise ReproError(f"duplicate shard id {shard.shard_id!r}")
        self.shards[shard.shard_id] = shard
        return shard

    def remove(self, shard_id: str) -> Optional[ShardHandle]:
        return self.shards.pop(shard_id, None)

    def next_id(self) -> str:
        """A fresh, never-reused shard id (``shard0``, ``shard1``, …)."""
        while True:
            candidate = f"shard{self._next_index}"
            self._next_index += 1
            if candidate not in self.shards:
                return candidate

    def routable(self) -> List[str]:
        """Ids the router may place new work on (draining excluded)."""
        return sorted(s.shard_id for s in self.shards.values() if not s.draining)

    def backlogs(self) -> Dict[str, int]:
        return {s.shard_id: s.backlog() for s in self.shards.values()
                if not s.draining}

    def __len__(self) -> int:
        return len(self.shards)


class FleetSupervisor:
    """Spawn, watch, recover, and resize the shard fleet."""

    def __init__(
        self,
        fleet: Fleet,
        shards_root,
        heartbeat_timeout_s: float = 10.0,
        workers_per_shard: int = 1,
        max_queue: int = 256,
        tsdb_interval_s: float = 0.5,
        front_outbox=None,
        event_log=None,
    ) -> None:
        self.fleet = fleet
        self.shards_root = Path(shards_root)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.workers_per_shard = int(workers_per_shard)
        self.max_queue = int(max_queue)
        self.tsdb_interval_s = float(tsdb_interval_s)
        #: where a reaped shard's already-finished results get relayed
        #: (a drained shard leaves the fleet, so the router would never
        #: scan its outbox again)
        self.front_outbox = Path(front_outbox) if front_outbox else None
        #: optional :class:`repro.fabric.events.EventLog` — the durable
        #: record the root-cause doctor correlates with detections
        self.event_log = event_log
        self.recoveries: List[dict] = []

    def _emit(self, kind: str, **data) -> None:
        if self.event_log is not None:
            self.event_log.emit(kind, **data)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def build_shard(self, shard_id: str) -> ShardHandle:
        return ShardHandle(
            shard_id,
            self.shards_root / shard_id,
            workers=self.workers_per_shard,
            max_queue=self.max_queue,
            tsdb_interval_s=self.tsdb_interval_s,
        )

    def grow(self) -> ShardHandle:
        """Add one shard and start serving on it."""
        shard = self.fleet.add(self.build_shard(self.fleet.next_id()))
        shard.spawn()
        get_metrics().counter("fabric.shards_grown").inc()
        self._emit("spawn", shard=shard.shard_id,
                   pid=shard.proc.pid if shard.proc else None)
        return shard

    def retire(self, shard_id: str) -> None:
        """Begin a graceful drain: the shard stops claiming once its
        stop file appears, finishes outstanding work, and exits; the
        router stops placing new work on it immediately."""
        shard = self.fleet.shards.get(shard_id)
        if shard is None:
            return
        shard.draining = True
        shard.request_stop()
        get_metrics().counter("fabric.shards_retired").inc()
        self._emit("retire", shard=shard_id)

    def reap_drained(self) -> List[str]:
        """Remove draining shards whose process has exited. Their
        leftover inbox files (work that raced the drain) re-home
        through the standard recovery path first."""
        reaped = []
        for shard_id in list(self.fleet.shards):
            shard = self.fleet.shards[shard_id]
            if not shard.draining or not shard.process_dead():
                continue
            self._rehome(shard, reason="drained")
            self.fleet.remove(shard_id)
            reaped.append(shard_id)
            self._emit("reap", shard=shard_id)
        return reaped

    # ------------------------------------------------------------------
    # death detection + recovery
    # ------------------------------------------------------------------
    def dead_shards(self, now: Optional[float] = None) -> List[str]:
        now = time.time() if now is None else now
        dead = []
        for shard in self.fleet.shards.values():
            if shard.draining:
                continue  # an exiting drainer is not a casualty
            if shard.process_dead():
                dead.append(shard.shard_id)
                continue
            age = shard.heartbeat_age(now)
            if shard.spawned_at is not None:
                # a fresh spawn proves recency even before the new
                # process overwrites its predecessor's stale status.json
                age = min(age, now - shard.spawned_at) if age is not None else None
            if age is not None and age > self.heartbeat_timeout_s:
                dead.append(shard.shard_id)
        return dead

    def check_once(self, now: Optional[float] = None) -> List[dict]:
        """One supervision pass: find casualties, re-home their work,
        respawn replacements. Returns this pass's recovery records."""
        records = []
        for shard_id in self.dead_shards(now):
            records.append(self.recover(shard_id))
        self.reap_drained()
        return records

    def recover(self, shard_id: str) -> dict:
        """Re-home a dead shard's accepted work, then respawn it."""
        shard = self.fleet.shards[shard_id]
        reason = ("process-exit" if shard.process_dead()
                  else "heartbeat-stale")
        self._emit("death", shard=shard_id, reason=reason,
                   restarts=shard.restarts)
        shard.kill()  # a stale-heartbeat zombie must not wake up later
        shard.wait(timeout=5.0)
        record = self._rehome(shard, reason="died")
        self._emit(
            "rehome", shard=shard_id, target=record["target"],
            claims_released=record["claims_released"],
            requests_rehomed=record["requests_rehomed"],
            journal_rehomed=record["journal_rehomed"],
        )
        # respawn under the same id: HRW placement is per-id, so the
        # replacement owns exactly the dead shard's keyspace and its
        # on-disk cache directory is still warm
        shard.spawn()
        record["respawned"] = True
        self._emit("respawn", shard=shard_id,
                   pid=shard.proc.pid if shard.proc else None,
                   restarts=shard.restarts)
        get_metrics().counter("fabric.shards_recovered").inc()
        self.recoveries.append(record)
        return record

    def _rehome(self, shard: ShardHandle, reason: str) -> dict:
        """Move every durable trace of unfinished work somewhere it
        will be served: claims → own inbox → survivor inbox, journal →
        survivor journal. With no survivors the files stay put for the
        respawned shard's own warm-restart sweep."""
        paths = shard.paths
        if self.front_outbox is not None:
            from repro.service.spool import forward_results

            forward_results(paths.outbox, self.front_outbox)
        released = 0
        for claim_dir in paths.claim_dirs():
            released += release_claims(claim_dir, paths.inbox)
        survivors = [
            s for s in self.fleet.routable() if s != shard.shard_id
        ]
        moved = 0
        journal_moved = 0
        target = None
        if survivors:
            # HRW failover: every observer independently picks the same
            # survivor for this shard's keyspace
            target = rendezvous_rank(shard.shard_id, survivors)[0]
            dst = self.fleet.shards[target]
            from repro.service.spool import move_requests

            moved = len(move_requests(paths.inbox, dst.paths.inbox))
            dst.paths.journal.mkdir(parents=True, exist_ok=True)
            for entry in paths.journal_entries():
                try:
                    entry.rename(dst.paths.journal / entry.name)
                except OSError:
                    continue
                journal_moved += 1
        record = {
            "shard": shard.shard_id,
            "reason": reason,
            "claims_released": released,
            "requests_rehomed": moved,
            "journal_rehomed": journal_moved,
            "target": target,
            "respawned": False,
            "t": time.time(),
        }
        return record

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------
    def scale_to(self, desired: int) -> None:
        """Grow or drain toward ``desired`` routable shards."""
        desired = max(0, int(desired))
        while len(self.fleet.routable()) < desired:
            self.grow()
        extra = len(self.fleet.routable()) - desired
        if extra > 0:
            # retire the least-loaded shards: their drains finish fastest
            by_load = sorted(
                self.fleet.backlogs().items(), key=lambda kv: (kv[1], kv[0])
            )
            for shard_id, _ in by_load[:extra]:
                self.retire(shard_id)

    def shutdown(self, timeout_s: float = 15.0) -> None:
        """Stop every shard: graceful drain first, SIGKILL stragglers."""
        for shard in self.fleet.shards.values():
            shard.request_stop()
        deadline = time.monotonic() + timeout_s
        for shard in self.fleet.shards.values():
            remaining = max(0.1, deadline - time.monotonic())
            if shard.wait(timeout=remaining) is None:
                shard.kill()
                shard.wait(timeout=5.0)
