"""``python -m repro fabric [up|route|status|down|drill]``.

* ``up``     — spawn the fleet and run the control loop in the
  foreground (route, steal, collect, supervise, autoscale) until
  ``fabric down`` is issued from another terminal, an idle timeout
  elapses, or a tick budget runs out;
* ``route``  — router-only mode over already-running shards: adopt the
  shard directories found under ``ROOT/shards/`` without spawning or
  supervising processes;
* ``status`` — one-shot fleet dashboard (same renderer as
  ``repro status --fabric ROOT``; that command adds ``--watch``);
* ``down``   — signal a running ``fabric up`` loop to drain and exit
  by creating ``ROOT/fabric.stop``;
* ``drill``  — the kill-one-shard acceptance drill: mixed load, a
  SIGKILL mid-claim, and a machine-checkable report proving zero lost
  requests and bit-identical answers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.util.errors import ReproError


def _add_root(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", required=True,
        help="fabric root directory (itself a spool: clients submit "
        "with 'repro submit --spool ROOT')",
    )


def cmd_fabric(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro fabric",
        description="Multi-shard service fabric: scene-affinity "
        "routing, work stealing, failure recovery, autoscaling.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_up = sub.add_parser("up", help="spawn shards and run the control loop")
    _add_root(p_up)
    p_up.add_argument("--shards", type=int, default=2, help="initial fleet size")
    p_up.add_argument(
        "--workers", type=int, default=1, help="service workers per shard"
    )
    p_up.add_argument(
        "--tick", type=float, default=0.1, help="control-loop period (seconds)"
    )
    p_up.add_argument(
        "--heartbeat-timeout", type=float, default=5.0,
        help="declare a shard dead after this much heartbeat silence",
    )
    p_up.add_argument(
        "--no-autoscale", action="store_true",
        help="hold the fleet at --shards (no SLO-driven resizing)",
    )
    p_up.add_argument(
        "--min-shards", type=int, default=1, help="autoscaler floor"
    )
    p_up.add_argument(
        "--max-shards", type=int, default=4, help="autoscaler ceiling"
    )
    p_up.add_argument(
        "--max-ticks", type=int, default=None,
        help="exit after N control passes (default: run until 'down')",
    )
    p_up.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this many seconds with an empty fleet backlog",
    )

    p_route = sub.add_parser(
        "route", help="route-only loop over externally-managed shards"
    )
    _add_root(p_route)
    p_route.add_argument("--max-ticks", type=int, default=None)
    p_route.add_argument("--idle-timeout", type=float, default=None)
    p_route.add_argument("--tick", type=float, default=0.1)

    p_status = sub.add_parser("status", help="one-shot fleet dashboard")
    _add_root(p_status)
    p_status.add_argument(
        "--json", action="store_true", help="emit the raw aggregate document"
    )

    p_down = sub.add_parser("down", help="stop a running 'fabric up' loop")
    _add_root(p_down)
    p_down.add_argument(
        "--wait", type=float, default=0.0,
        help="wait up to this long for every shard to report exit",
    )

    p_drill = sub.add_parser(
        "drill", help="kill-one-shard zero-loss acceptance drill"
    )
    _add_root(p_drill)
    p_drill.add_argument("--shards", type=int, default=2)
    p_drill.add_argument(
        "--repeats", type=int, default=2, help="tickets per scene geometry"
    )
    p_drill.add_argument(
        "--no-kill", action="store_true",
        help="run the same load without the SIGKILL (baseline pass)",
    )
    p_drill.add_argument("--timeout", type=float, default=300.0)
    p_drill.add_argument(
        "--report", default=None,
        help="write the drill report JSON here "
        "(default: ROOT/fabric_drill_report.json)",
    )

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    from repro.fabric.fabric import (
        Fabric,
        FabricConfig,
        aggregate_status,
        format_fleet,
        run_drill,
    )

    root = Path(args.root)

    if args.command == "up":
        from repro.fabric.autoscaler import AutoscalePolicy

        policy = AutoscalePolicy(
            min_shards=args.min_shards, max_shards=args.max_shards
        )
        config = FabricConfig(
            shards=args.shards,
            workers_per_shard=args.workers,
            tick_s=args.tick,
            heartbeat_timeout_s=args.heartbeat_timeout,
            autoscale=not args.no_autoscale,
            policy=policy,
        )
        fabric = Fabric(root, config)
        ids = fabric.up()
        print(f"fabric up at {root}: shard(s) {', '.join(ids)} "
              f"(autoscale {'on' if config.autoscale else 'off'})")
        return fabric.run(
            max_ticks=args.max_ticks, idle_timeout_s=args.idle_timeout
        )

    if args.command == "route":
        config = FabricConfig(shards=0, autoscale=False, tick_s=args.tick)
        fabric = Fabric(root, config)
        ids = fabric.attach()
        if not ids:
            print(f"error: no shard directories under {root / 'shards'}",
                  file=sys.stderr)
            return 1
        print(f"routing over externally-managed shard(s): {', '.join(ids)}")
        while True:
            fabric.tick()
            if fabric.stop_path.exists():
                break
            if args.max_ticks is not None and fabric.ticks >= args.max_ticks:
                break
            time.sleep(config.tick_s)
        return 0

    if args.command == "status":
        doc = aggregate_status(root)
        if args.json:
            print(json.dumps(doc, indent=2))
        else:
            print(format_fleet(doc))
        return 0 if doc["state"] == "ok" else 3

    if args.command == "down":
        stop = root / "fabric.stop"
        stop.parent.mkdir(parents=True, exist_ok=True)
        stop.touch()
        print(f"stop requested: {stop}")
        if args.wait > 0:
            deadline = time.monotonic() + args.wait
            while time.monotonic() < deadline:
                doc = aggregate_status(root)
                live = [
                    sid for sid, s in doc["shards"].items()
                    if s.get("state") not in ("exited", "unknown")
                ]
                if not live:
                    print("fleet down")
                    return 0
                time.sleep(0.2)
            print("warning: shards still running after --wait",
                  file=sys.stderr)
            return 1
        return 0

    if args.command == "drill":
        report_path = args.report or str(root / "fabric_drill_report.json")
        report = run_drill(
            root,
            shards=args.shards,
            repeats=args.repeats,
            kill=not args.no_kill,
            timeout_s=args.timeout,
            report_path=report_path,
        )
        print(json.dumps(
            {k: report[k] for k in (
                "requests", "killed", "kill_state", "lost", "errors",
                "byte_identical", "states_observed", "final_state",
                "elapsed_s", "ok",
            )}, indent=2,
        ))
        print(f"report: {report_path}")
        return 0 if report["ok"] else 1

    raise ReproError(f"unknown fabric command {args.command!r}")
