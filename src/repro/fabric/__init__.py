"""repro.fabric — the multi-shard service fabric.

One ``repro serve`` process is a single point of failure and a single
GIL; the fabric is the request plane that turns N of them into one
service (the ROADMAP's "millions of users" direction):

* :mod:`repro.fabric.hashring` — rendezvous (HRW) hashing, so scene →
  shard placement is stable under fleet resize and every shard's
  result cache + prepared scenes stay warm for *its* scenes;
* :mod:`repro.fabric.shard` — one shard's on-disk layout and process
  handle (spawn, heartbeat, queue depths, kill);
* :mod:`repro.fabric.router` — front-door routing of spool requests
  into shard inboxes by scene fingerprint, queue-depth-driven work
  stealing between shards, and result forwarding back to the client;
* :mod:`repro.fabric.supervisor` — fleet membership, heartbeat-based
  death detection, and zero-loss re-homing of a dead shard's inbox,
  claims, and journal;
* :mod:`repro.fabric.autoscaler` — SLO-burn + queue-depth-history
  driven fleet sizing over the tsdb substrate;
* :mod:`repro.fabric.fabric` — the single-threaded tick loop tying the
  pieces together, ``fabric_status.json`` aggregation, and the
  kill-one-shard drill;
* :mod:`repro.fabric.cli` — ``python -m repro fabric
  [up|route|status|down|drill]``.
"""

from repro.fabric.autoscaler import Autoscaler, AutoscalePolicy
from repro.fabric.fabric import (
    Fabric,
    FabricConfig,
    aggregate_status,
    format_fleet,
    run_drill,
)
from repro.fabric.hashring import rendezvous_rank, rendezvous_shard
from repro.fabric.router import Router
from repro.fabric.shard import ShardHandle, ShardPaths
from repro.fabric.supervisor import Fleet, FleetSupervisor

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "Fabric",
    "FabricConfig",
    "Fleet",
    "FleetSupervisor",
    "Router",
    "ShardHandle",
    "ShardPaths",
    "aggregate_status",
    "format_fleet",
    "rendezvous_rank",
    "rendezvous_shard",
    "run_drill",
]
