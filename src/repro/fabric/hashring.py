"""Rendezvous (highest-random-weight) hashing for scene placement.

The router must answer "which shard owns this scene?" such that

* every router instance answers identically (pure function of the key
  and the live shard set — no shared state to synchronize);
* resizing the fleet moves as few scenes as possible: removing a shard
  remaps only *its* scenes (each to the shard that was already second
  choice), and adding a shard steals only ~1/N of every other shard's
  keyspace. A modulo ring would reshuffle almost everything and throw
  away every shard's warm result cache and prepared scenes on each
  autoscaler action.

HRW gives exactly that: score every (shard, key) pair with a stable
hash and pick the highest. SHA-256 keeps scores identical across
processes and Python versions (``hash()`` is salted per process).
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

from repro.util.errors import ReproError


def _score(shard_id: str, key: str) -> int:
    digest = hashlib.sha256(f"{shard_id}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_rank(key: str, shard_ids: Sequence[str]) -> List[str]:
    """All shards ordered by preference for ``key`` (best first).

    The tail of the list is the failover order: when the winner dies,
    the key's new home is the next entry — the same shard every router
    instance would independently pick.
    """
    if not shard_ids:
        raise ReproError("rendezvous over an empty shard set")
    return sorted(shard_ids, key=lambda s: (-_score(s, key), s))


def rendezvous_shard(key: str, shard_ids: Sequence[str]) -> str:
    """The shard that owns ``key`` in the current fleet."""
    return rendezvous_rank(key, shard_ids)[0]
