"""Task-graph compilation.

Uintah compiles the per-timestep task list into *detailed tasks* — one
per (task type, patch) — and derives every dependency edge and MPI
message from the declared requires/computes (paper Section II). This
module reproduces that: given tasks, a grid, and a patch->rank
assignment, :meth:`TaskGraph.compile` emits

* detailed tasks with same-graph ordering edges,
* ghost messages: (src rank, dst rank, label, region) pairs for every
  remotely-owned piece of a required region, and
* level-variable broadcast messages for PER_LEVEL requirements (the
  coarse radiation properties every rank needs).

The compiled graph is execution-engine agnostic: the serial, threaded,
and distributed schedulers in :mod:`repro.runtime.scheduler` all run
the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.grid.box import Box
from repro.grid.grid import Grid
from repro.grid.patch import Patch
from repro.dw.label import VarKind, VarLabel
from repro.runtime.task import Task
from repro.util.errors import SchedulerError


@dataclass
class DetailedTask:
    """One executable unit: a task type bound to a patch."""

    dtask_id: int
    task: Task
    patch: Patch
    level_index: int
    rank: int = 0
    #: dtask ids that must complete first (same rank: ordering;
    #: cross rank: satisfied by the corresponding message instead)
    internal_deps: Set[int] = field(default_factory=set)
    #: message ids that must arrive before this task is ready
    pending_msgs: Set[int] = field(default_factory=set)
    dependents: Set[int] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DT#{self.dtask_id}({self.task.name}@p{self.patch.patch_id}, r{self.rank})"


@dataclass(frozen=True)
class GhostMessage:
    """One point-to-point transfer derived from the declarations."""

    msg_id: int
    label: VarLabel
    src_rank: int
    dst_rank: int
    src_patch_id: int          #: producing patch (or -1 for level vars)
    dst_dtask_id: int          #: consuming detailed task
    region: Box                #: cells carried (level domain for level vars)
    level_index: int
    src_dtask_id: int = -1     #: producing detailed task

    @property
    def nbytes(self) -> int:
        return self.region.volume * 8


@dataclass
class CompiledGraph:
    detailed_tasks: List[DetailedTask]
    messages: List[GhostMessage]
    grid: Grid
    assignment: Dict[int, int]
    num_ranks: int

    def tasks_on_rank(self, rank: int) -> List[DetailedTask]:
        return [t for t in self.detailed_tasks if t.rank == rank]

    def messages_to(self, rank: int) -> List[GhostMessage]:
        return [m for m in self.messages if m.dst_rank == rank]

    def messages_from(self, rank: int) -> List[GhostMessage]:
        return [m for m in self.messages if m.src_rank == rank]

    @property
    def total_message_bytes(self) -> int:
        return sum(m.nbytes for m in self.messages)

    def message_batches(self) -> Dict[Tuple[int, int], List[GhostMessage]]:
        """Messages grouped by (src rank, dst rank).

        Uintah coalesces all of a rank-pair's dependencies into one MPI
        message per pair per phase; the batch count is therefore the
        actual wire-message count the cost model prices.
        """
        out: Dict[Tuple[int, int], List[GhostMessage]] = {}
        for m in self.messages:
            out.setdefault((m.src_rank, m.dst_rank), []).append(m)
        return out

    def rank_comm_stats(self, rank: int) -> Dict[str, int]:
        """Per-rank wire traffic: batched message counts and bytes, in
        the same vocabulary as the dessim cost model."""
        batches = self.message_batches()
        recv_batches = sum(1 for (s, d) in batches if d == rank)
        send_batches = sum(1 for (s, d) in batches if s == rank)
        recv_bytes = sum(m.nbytes for m in self.messages if m.dst_rank == rank)
        send_bytes = sum(m.nbytes for m in self.messages if m.src_rank == rank)
        return {
            "recv_batches": recv_batches,
            "send_batches": send_batches,
            "recv_bytes": recv_bytes,
            "send_bytes": send_bytes,
        }

    def topological_order(self) -> List[DetailedTask]:
        """Kahn's algorithm over internal edges; raises on cycles."""
        indeg = {t.dtask_id: len(t.internal_deps) for t in self.detailed_tasks}
        by_id = {t.dtask_id: t for t in self.detailed_tasks}
        ready = [tid for tid, d in sorted(indeg.items()) if d == 0]
        order: List[DetailedTask] = []
        while ready:
            tid = ready.pop(0)
            t = by_id[tid]
            order.append(t)
            for dep in sorted(t.dependents):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self.detailed_tasks):
            raise SchedulerError(
                f"task graph has a cycle: only {len(order)} of "
                f"{len(self.detailed_tasks)} tasks orderable"
            )
        return order


class TaskGraph:
    """Per-timestep task list, compiled to a :class:`CompiledGraph`."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        self._entries: List[Tuple[Task, int, bool]] = []  # (task, level, per_level)

    def add_task(self, task: Task, level_index: int) -> None:
        """Instantiate ``task`` on every patch of a level."""
        self.grid.level(level_index)  # validates
        self._entries.append((task, level_index, False))

    def add_level_task(self, task: Task, level_index: int) -> None:
        """Instantiate ``task`` once for the whole level (e.g. the
        coarsen-and-publish step producing per-level variables)."""
        self.grid.level(level_index)
        self._entries.append((task, level_index, True))

    # ------------------------------------------------------------------
    def compile(
        self,
        assignment: Optional[Dict[int, int]] = None,
        num_ranks: int = 1,
        validate: bool = True,
    ) -> CompiledGraph:
        """Compile to a :class:`CompiledGraph`.

        With ``validate`` (the default), the static checks from
        :mod:`repro.check.graph` run on the declarations before
        compilation and on the message structure after — a dangling
        consumer or unordered write-write pair aborts here, at compile
        time, instead of surfacing as a DataWarehouse miss or a
        nondeterministic double-compute mid-execution.
        """
        if not self._entries:
            raise SchedulerError("task graph is empty")
        if validate:
            self._validate_declarations()
        assignment = dict(assignment or {})

        detailed: List[DetailedTask] = []
        # producers of CC labels: name -> list of (dtask, patch)
        cc_producers: Dict[str, List[DetailedTask]] = {}
        # producers of level labels: (name, level) -> dtask
        level_producers: Dict[Tuple[str, int], DetailedTask] = {}

        for task, level_index, per_level in self._entries:
            level = self.grid.level(level_index)
            if per_level:
                pseudo = Patch(
                    patch_id=-(1000 + len(detailed)),
                    level_index=level_index,
                    box=level.domain_box,
                )
                patches = [pseudo]
            else:
                patches = level.patches
                if not patches:
                    raise SchedulerError(
                        f"level {level_index} has no patches for task {task.name}"
                    )
            for patch in patches:
                rank = assignment.get(patch.patch_id, 0)
                if not 0 <= rank < num_ranks:
                    raise SchedulerError(
                        f"patch {patch.patch_id} assigned to rank {rank} "
                        f"outside [0, {num_ranks})"
                    )
                dt = DetailedTask(
                    dtask_id=len(detailed),
                    task=task,
                    patch=patch,
                    level_index=level_index,
                    rank=rank,
                )
                detailed.append(dt)
                for comp in task.computes:
                    if comp.label.kind is VarKind.PER_LEVEL:
                        key = (comp.label.name, comp.level_index
                               if comp.level_index is not None else level_index)
                        if key in level_producers:
                            raise SchedulerError(
                                f"level variable {key} computed twice"
                            )
                        level_producers[key] = dt
                    elif comp.label.kind is VarKind.CELL_CENTERED:
                        cc_producers.setdefault(comp.label.name, []).append(dt)

        messages: List[GhostMessage] = []
        # one broadcast message per (label, level, dst rank) no matter how
        # many consumer tasks that rank hosts — the level-DB insight applied
        # to the wire: coarse properties cross the network once per node
        level_msg_cache: Dict[Tuple[str, int, int], GhostMessage] = {}

        def add_edge(producer: DetailedTask, consumer: DetailedTask) -> None:
            if producer.dtask_id == consumer.dtask_id:
                return
            consumer.internal_deps.add(producer.dtask_id)
            producer.dependents.add(consumer.dtask_id)

        def add_message(
            label: VarLabel,
            producer: DetailedTask,
            consumer: DetailedTask,
            region: Box,
            level_index: int,
        ) -> None:
            msg = GhostMessage(
                msg_id=len(messages),
                label=label,
                src_rank=producer.rank,
                dst_rank=consumer.rank,
                src_patch_id=producer.patch.patch_id,
                dst_dtask_id=consumer.dtask_id,
                region=region,
                level_index=level_index,
                src_dtask_id=producer.dtask_id,
            )
            messages.append(msg)
            consumer.pending_msgs.add(msg.msg_id)

        for dt in detailed:
            for req in dt.task.requires:
                if req.dw != "new":
                    continue  # old-DW data is last timestep's, already local
                if req.label.kind is VarKind.CELL_CENTERED:
                    region = dt.patch.box.grow(req.num_ghost)
                    for producer in cc_producers.get(req.label.name, ()):
                        overlap = producer.patch.box.intersect(region)
                        if overlap.empty:
                            continue
                        if producer.rank == dt.rank:
                            add_edge(producer, dt)
                        else:
                            add_message(req.label, producer, dt, overlap, dt.level_index)
                elif req.label.kind is VarKind.PER_LEVEL:
                    key = (req.label.name, req.level_index)
                    producer = level_producers.get(key)
                    if producer is None:
                        raise SchedulerError(
                            f"task {dt.task.name} requires level variable {key} "
                            f"that no task computes"
                        )
                    if producer.rank == dt.rank:
                        add_edge(producer, dt)
                    else:
                        cache_key = (req.label.name, req.level_index, dt.rank)
                        cached = level_msg_cache.get(cache_key)
                        if cached is not None:
                            dt.pending_msgs.add(cached.msg_id)
                        else:
                            add_message(
                                req.label,
                                producer,
                                dt,
                                self.grid.level(req.level_index).domain_box,
                                req.level_index,
                            )
                            level_msg_cache[cache_key] = messages[-1]

        graph = CompiledGraph(
            detailed_tasks=detailed,
            messages=messages,
            grid=self.grid,
            assignment=assignment,
            num_ranks=num_ranks,
        )
        graph.topological_order()  # cycle check at compile time
        if validate:
            self._validate_structure(graph)
        return graph

    def _validate_declarations(self) -> None:
        from repro.check.graph import validate_taskgraph

        errors = [f for f in validate_taskgraph(self) if f.severity == "error"]
        if errors:
            raise SchedulerError(
                "task graph failed validation:\n  "
                + "\n  ".join(f.format() for f in errors)
            )

    @staticmethod
    def _validate_structure(graph: CompiledGraph) -> None:
        from repro.check.graph import validate_compiled

        errors = [f for f in validate_compiled(graph) if f.severity == "error"]
        if errors:
            raise SchedulerError(
                "compiled graph failed validation:\n  "
                + "\n  ".join(f.format() for f in errors)
            )
