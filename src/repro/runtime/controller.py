"""The simulation controller: timestepping through the runtime.

Uintah's SimulationController owns the outer loop: each timestep it
swaps DataWarehouse generations (new -> old), re-executes the compiled
task graph against the fresh warehouses, and collects per-timestep
statistics. Applications declare their per-timestep tasks once; the
controller re-runs the same compiled graph every step, which is what
lets Uintah amortize task-graph compilation across a whole simulation.

Because our CompiledGraph carries immutable declarations and the
schedulers take the warehouses as arguments, re-execution needs no
recompilation — matching Uintah's static-taskgraph fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dw.datawarehouse import DataWarehouse, DataWarehouseManager
from repro.perf.tracer import SpanTracer, get_tracer
from repro.runtime.scheduler import SerialScheduler
from repro.runtime.taskgraph import CompiledGraph
from repro.util.errors import SchedulerError
from repro.util.timing import TimerRegistry


@dataclass
class TimestepReport:
    step: int
    time: float
    dt: float
    dw_generation: int


class SimulationController:
    """Run a per-timestep task graph for many steps.

    ``initial_graph`` (optional) runs once against the very first new
    DW — the initialization taskgraph in Uintah terms. ``graph`` then
    runs every timestep with old/new warehouse swapping.
    """

    def __init__(
        self,
        graph: CompiledGraph,
        scheduler=None,
        initial_graph: Optional[CompiledGraph] = None,
        archive=None,
        tracer: Optional[SpanTracer] = None,
    ) -> None:
        self.graph = graph
        self.initial_graph = initial_graph
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        if not hasattr(self.scheduler, "execute"):
            raise SchedulerError("scheduler must expose .execute(graph, old, new)")
        self.archive = archive
        self.tracer = tracer
        self.dw_manager = DataWarehouseManager()
        self.timers = TimerRegistry()
        self.reports: List[TimestepReport] = []
        self.time = 0.0
        self.step = 0
        self._initialized = False

    @classmethod
    def restart(
        cls,
        graph: CompiledGraph,
        archive,
        step: Optional[int] = None,
        scheduler=None,
    ) -> "SimulationController":
        """Resume from an archived timestep (checkpoint/restart).

        The loaded warehouse becomes the controller's current state;
        the next :meth:`advance` swaps it to the old generation exactly
        as if the run had never stopped, so a restarted simulation
        continues bit-identically.
        """
        ctrl = cls(graph, scheduler=scheduler, archive=archive)
        step = step if step is not None else archive.latest()
        if step is None:
            raise SchedulerError(f"archive {archive.root} holds no timesteps")
        dw, meta = archive.load(step)
        ctrl.dw_manager.new_dw = dw
        ctrl.dw_manager._generation = dw.generation
        ctrl.time = float(meta["time"])
        ctrl.step = int(meta["step"])
        ctrl._initialized = True
        return ctrl

    # ------------------------------------------------------------------
    def initialize(self) -> DataWarehouse:
        """Run the initialization graph (or mark ready without one)."""
        if self._initialized:
            raise SchedulerError("controller already initialized")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        if self.initial_graph is not None:
            with self.timers("initialization"), tracer.span(
                "initialize", cat="controller"
            ):
                self.scheduler.execute(
                    self.initial_graph, old_dw=None, new_dw=self.dw_manager.new_dw
                )
        self._initialized = True
        return self.dw_manager.new_dw

    def advance(self, dt: float) -> DataWarehouse:
        """One timestep: swap warehouses, execute the graph."""
        if not self._initialized:
            raise SchedulerError("call initialize() before advance()")
        if dt <= 0:
            raise SchedulerError("dt must be positive")
        self.dw_manager.advance()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        with self.timers("timestep"), tracer.span(
            f"timestep {self.step + 1}", cat="controller", step=self.step + 1
        ):
            self.scheduler.execute(
                self.graph,
                old_dw=self.dw_manager.old_dw,
                new_dw=self.dw_manager.new_dw,
            )
        self.time += dt
        self.step += 1
        self.reports.append(
            TimestepReport(
                step=self.step,
                time=self.time,
                dt=dt,
                dw_generation=self.dw_manager.generation,
            )
        )
        if self.archive is not None and self.archive.should_save(self.step):
            self.archive.save(self.dw_manager.new_dw, self.step, self.time)
        return self.dw_manager.new_dw

    def run(self, num_steps: int, dt: float) -> DataWarehouse:
        """Initialize (if needed) and advance ``num_steps`` steps."""
        if not self._initialized:
            self.initialize()
        dw = self.dw_manager.new_dw
        for _ in range(num_steps):
            dw = self.advance(dt)
        return dw

    @property
    def steps_taken(self) -> int:
        return len(self.reports)
