"""The simulation controller: timestepping through the runtime.

Uintah's SimulationController owns the outer loop: each timestep it
swaps DataWarehouse generations (new -> old), re-executes the compiled
task graph against the fresh warehouses, and collects per-timestep
statistics. Applications declare their per-timestep tasks once; the
controller re-runs the same compiled graph every step, which is what
lets Uintah amortize task-graph compilation across a whole simulation.

Because our CompiledGraph carries immutable declarations and the
schedulers take the warehouses as arguments, re-execution needs no
recompilation — matching Uintah's static-taskgraph fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.dw.datawarehouse import DataWarehouse, DataWarehouseManager
from repro.perf.flightrec import get_flight_recorder
from repro.perf.tracer import SpanTracer, get_tracer
from repro.perf.tsdb import get_collector
from repro.runtime.scheduler import SerialScheduler
from repro.runtime.taskgraph import CompiledGraph
from repro.util.errors import SchedulerError
from repro.util.timing import TimerRegistry


@dataclass
class TimestepReport:
    step: int
    time: float
    dt: float
    dw_generation: int


class SimulationController:
    """Run a per-timestep task graph for many steps.

    ``initial_graph`` (optional) runs once against the very first new
    DW — the initialization taskgraph in Uintah terms. ``graph`` then
    runs every timestep with old/new warehouse swapping.
    """

    def __init__(
        self,
        graph: CompiledGraph,
        scheduler=None,
        initial_graph: Optional[CompiledGraph] = None,
        archive=None,
        tracer: Optional[SpanTracer] = None,
        checkpointer=None,
        streams=None,
        collector=None,
    ) -> None:
        self.graph = graph
        self.initial_graph = initial_graph
        self.scheduler = scheduler if scheduler is not None else SerialScheduler()
        if not hasattr(self.scheduler, "execute"):
            raise SchedulerError("scheduler must expose .execute(graph, old, new)")
        self.archive = archive
        self.tracer = tracer
        #: optional repro.resilience.Checkpointer; when set, advance()
        #: snapshots on its cadence alongside (not instead of) the archive
        self.checkpointer = checkpointer
        #: optional repro.util.rng.RandomStreams captured into checkpoints
        self.streams = streams
        #: optional repro.perf.tsdb.SnapshotCollector sampled after each
        #: timestep (falls back to the process default; None = no sampling)
        self.collector = collector
        self.dw_manager = DataWarehouseManager()
        self.timers = TimerRegistry()
        self.reports: List[TimestepReport] = []
        self.time = 0.0
        self.step = 0
        self._initialized = False
        #: where advance() writes flight-recorder postmortems when a
        #: timestep dies with an unhandled exception
        self.flightrec_dir = "."

    @classmethod
    def restart(
        cls,
        graph: CompiledGraph,
        archive,
        step: Optional[int] = None,
        scheduler=None,
    ) -> "SimulationController":
        """Resume from an archived timestep (checkpoint/restart).

        The loaded warehouse becomes the controller's current state;
        the next :meth:`advance` swaps it to the old generation exactly
        as if the run had never stopped, so a restarted simulation
        continues bit-identically.
        """
        ctrl = cls(graph, scheduler=scheduler, archive=archive)
        step = step if step is not None else archive.latest()
        if step is None:
            raise SchedulerError(f"archive {archive.root} holds no timesteps")
        dw, meta = archive.load(step)
        ctrl.dw_manager.new_dw = dw
        ctrl.dw_manager._generation = dw.generation
        ctrl.time = float(meta["time"])
        ctrl.step = int(meta["step"])
        ctrl._initialized = True
        return ctrl

    # ------------------------------------------------------------------
    def initialize(self) -> DataWarehouse:
        """Run the initialization graph (or mark ready without one)."""
        if self._initialized:
            raise SchedulerError("controller already initialized")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        if self.initial_graph is not None:
            with self.timers("initialization"), tracer.span(
                "initialize", cat="controller"
            ):
                self.scheduler.execute(
                    self.initial_graph, old_dw=None, new_dw=self.dw_manager.new_dw
                )
        self._initialized = True
        return self.dw_manager.new_dw

    def advance(self, dt: float) -> DataWarehouse:
        """One timestep: swap warehouses, execute the graph."""
        if not self._initialized:
            raise SchedulerError("call initialize() before advance()")
        if dt <= 0:
            raise SchedulerError("dt must be positive")
        self.dw_manager.advance()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        recorder = get_flight_recorder()
        recorder.record("controller", "timestep.begin", step=self.step + 1)
        try:
            with self.timers("timestep"), tracer.span(
                f"timestep {self.step + 1}", cat="controller", step=self.step + 1
            ):
                self.scheduler.execute(
                    self.graph,
                    old_dw=self.dw_manager.old_dw,
                    new_dw=self.dw_manager.new_dw,
                )
        except BaseException as exc:  # repro: allow(overbroad-except) — postmortem then re-raise
            # the postmortem the flight recorder exists for: dump the
            # recent-history ring before the exception unwinds the run
            recorder.record(
                "crash", type(exc).__name__, step=self.step + 1, error=str(exc)
            )
            recorder.dump_all_ranks(
                self.flightrec_dir,
                reason=f"unhandled {type(exc).__name__} in timestep "
                f"{self.step + 1}: {exc}",
            )
            raise
        recorder.record("controller", "timestep.end", step=self.step + 1)
        self.time += dt
        self.step += 1
        self.reports.append(
            TimestepReport(
                step=self.step,
                time=self.time,
                dt=dt,
                dw_generation=self.dw_manager.generation,
            )
        )
        if self.archive is not None and self.archive.should_save(self.step):
            self.archive.save(self.dw_manager.new_dw, self.step, self.time)
        if self.checkpointer is not None and self.checkpointer.should_checkpoint(
            self.step
        ):
            self.checkpoint()
        collector = (
            self.collector if self.collector is not None else get_collector()
        )
        if collector is not None:
            collector.maybe_sample(step=self.step, sim_time=self.time)
        return self.dw_manager.new_dw

    # ------------------------------------------------------------------
    # checkpoint/restart (resilience layer)
    # ------------------------------------------------------------------
    def checkpoint(self):
        """Snapshot the current state through the attached checkpointer.

        Returns the manifest path. Unlike the archive (an output
        product), checkpoints capture RNG stream positions so a restore
        resumes bit-identically.
        """
        if self.checkpointer is None:
            raise SchedulerError("no checkpointer attached to this controller")
        # imported lazily: repro.resilience imports the runtime package
        from repro.resilience.state import capture_state

        state = capture_state(
            self.dw_manager.new_dw,
            step=self.step,
            time=self.time,
            grid=self.graph.grid,
            streams=self.streams,
        )
        return self.checkpointer.save(state)

    @classmethod
    def from_checkpoint(
        cls,
        graph: CompiledGraph,
        checkpointer,
        step: Optional[int] = None,
        scheduler=None,
        streams=None,
        archive=None,
    ) -> "SimulationController":
        """Resume from the latest valid (or a specific) checkpoint.

        Corrupt or torn checkpoints are skipped automatically when no
        ``step`` is pinned; the restored warehouse becomes the current
        generation and attached RNG streams are rewound, so the next
        :meth:`advance` continues bit-identically.
        """
        from repro.resilience.state import verify_layout

        if step is not None:
            state = checkpointer.load(step)
            found_step = step
        else:
            state, found_step = checkpointer.load_latest_valid()
        verify_layout(graph.grid, state.layout)
        ctrl = cls(
            graph,
            scheduler=scheduler,
            archive=archive,
            checkpointer=checkpointer,
            streams=streams,
        )
        ctrl.dw_manager.new_dw = state.build_dw()
        ctrl.dw_manager._generation = state.generation
        ctrl.time = state.time
        ctrl.step = found_step
        if streams is not None:
            state.restore_streams(streams)
        ctrl._initialized = True
        return ctrl

    def run(self, num_steps: int, dt: float) -> DataWarehouse:
        """Initialize (if needed) and advance ``num_steps`` steps."""
        if not self._initialized:
            self.initialize()
        dw = self.dw_manager.new_dw
        for _ in range(num_steps):
            dw = self.advance(dt)
        return dw

    @property
    def steps_taken(self) -> int:
        return len(self.reports)
