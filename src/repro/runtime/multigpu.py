"""Multi-GPU node execution.

Section I's stated requirement: "computational frameworks like Uintah
[must] leverage an arbitrary number of on-node GPUs, while
simultaneously utilizing thousands of GPUs within a single simulation."
Titan had one K20X per node, but Summit-class nodes carry several
devices; this scheduler runs one node's task graph across N GPU
DataWarehouses, assigning device tasks to devices by a load-aware
policy while each device keeps its own level database (the coarse
properties are replicated per device — one copy each, never per task).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dw.datawarehouse import DataWarehouse
from repro.dw.gpudw import GPUDataWarehouse
from repro.runtime.gpu_scheduler import GPUScheduler
from repro.runtime.taskgraph import CompiledGraph, DetailedTask
from repro.util.errors import SchedulerError


class MultiGPUScheduler:
    """Execute one rank's graph across several on-node devices.

    Device tasks are partitioned across GPUs patch-wise (balanced by
    patch cell count, the same cost heuristic the load balancer uses
    across ranks); host tasks run once on the host path. Each device's
    stage pipeline is a full :class:`GPUScheduler`, so per-device
    in-flight bounds, stream assignment, and level-DB sharing all apply
    per device.
    """

    def __init__(
        self,
        num_gpus: int = 2,
        gpus: Optional[List[GPUDataWarehouse]] = None,
        num_streams: int = 4,
        max_in_flight: int = 8,
    ) -> None:
        if gpus is not None:
            if not gpus:
                raise SchedulerError("need at least one GPU")
            self.gpus = list(gpus)
        else:
            if num_gpus < 1:
                raise SchedulerError("num_gpus must be >= 1")
            self.gpus = [GPUDataWarehouse(device_id=i) for i in range(num_gpus)]
        self.engines = [
            GPUScheduler(gpu=g, num_streams=num_streams, max_in_flight=max_in_flight)
            for g in self.gpus
        ]
        #: patch_id -> device index, filled at execute time
        self.device_assignment: Dict[int, int] = {}

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def _assign_devices(self, graph: CompiledGraph) -> Dict[int, int]:
        """Balanced greedy assignment of device-task patches to GPUs."""
        device_patches = sorted(
            {t.patch for t in graph.detailed_tasks if t.task.device},
            key=lambda p: (-p.num_cells, p.patch_id),
        )
        load = [0] * self.num_gpus
        assignment: Dict[int, int] = {}
        for patch in device_patches:
            dev = min(range(self.num_gpus), key=lambda d: load[d])
            assignment[patch.patch_id] = dev
            load[dev] += patch.num_cells
        return assignment

    def execute(
        self,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse] = None,
        new_dw: Optional[DataWarehouse] = None,
    ) -> DataWarehouse:
        if graph.num_ranks != 1 or graph.messages:
            raise SchedulerError("MultiGPUScheduler runs single-rank graphs")
        dw = new_dw if new_dw is not None else DataWarehouse()
        self.device_assignment = self._assign_devices(graph)

        # walk the graph in dependency order; stage/execute each device
        # task on its assigned engine, host tasks inline
        for dt in graph.topological_order():
            if dt.task.device:
                dev = self.device_assignment[dt.patch.patch_id]
                engine = self.engines[dev]
                engine._stage_h2d(dt, graph, old_dw, dw)
                engine._execute_device(dt, dev_stream(dt, engine), graph, old_dw, dw)
            else:
                from repro.runtime.task import TaskContext

                ctx = TaskContext(
                    dt.task, dt.patch, graph.grid.level(dt.level_index), old_dw, dw
                )
                dt.task.callback(ctx)
        return dw

    def stats_summary(self) -> List[Dict[str, int]]:
        """Per-device upload/residency accounting."""
        return [
            {
                "device": g.device_id,
                "h2d_bytes": g.stats.h2d_bytes,
                "d2h_bytes": g.stats.d2h_bytes,
                "level_db_entries": g.resident_summary()["level_db_entries"],
                "tasks": e.stats.tasks_executed,
            }
            for g, e in zip(self.gpus, self.engines)
        ]


def dev_stream(dt: DetailedTask, engine: GPUScheduler) -> int:
    return dt.dtask_id % engine.num_streams
