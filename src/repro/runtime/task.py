"""Task declarations — the application/runtime contract.

A Uintah task declares what it *requires* (with ghost-cell widths) and
what it *computes*; the runtime derives all scheduling and every MPI
message from those declarations (paper Section II). The callback never
touches MPI or neighbours directly: it reads assembled regions from the
DataWarehouse through a :class:`TaskContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.grid.level import Level
from repro.grid.patch import Patch
from repro.dw.datawarehouse import DataWarehouse
from repro.dw.label import VarKind, VarLabel
from repro.dw.variables import CCVariable, ReductionVariable
from repro.util.errors import SchedulerError


@dataclass(frozen=True)
class Requires:
    label: VarLabel
    dw: str = "new"           #: "old" (previous timestep) or "new"
    num_ghost: int = 0        #: halo width for CC variables
    level_index: Optional[int] = None  #: for PER_LEVEL variables

    def __post_init__(self) -> None:
        if self.dw not in ("old", "new"):
            raise SchedulerError(f"dw must be 'old' or 'new', got {self.dw!r}")
        if self.num_ghost < 0:
            raise SchedulerError("num_ghost must be >= 0")
        if self.label.kind is VarKind.PER_LEVEL and self.level_index is None:
            raise SchedulerError(f"PER_LEVEL requires needs level_index: {self.label}")


@dataclass(frozen=True)
class Computes:
    label: VarLabel
    level_index: Optional[int] = None


class Task:
    """A task type, instantiated per patch at graph compile time.

    ``callback(ctx)`` receives a :class:`TaskContext`; device tasks
    (``device=True``) are routed to the GPU scheduler's stage queues.
    """

    def __init__(
        self,
        name: str,
        callback: Callable[["TaskContext"], None],
        requires: Sequence[Requires] = (),
        computes: Sequence[Computes] = (),
        device: bool = False,
    ) -> None:
        if not name:
            raise SchedulerError("task name must be non-empty")
        self.name = name
        self.callback = callback
        self.requires = list(requires)
        self.computes = list(computes)
        self.device = bool(device)
        computed = [c.label.name for c in self.computes]
        if len(set(computed)) != len(computed):
            raise SchedulerError(f"task {name} computes a label twice")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Task({self.name}, req={len(self.requires)}, comp={len(self.computes)})"


class TaskContext:
    """What a task callback sees: its patch plus checked DW access.

    Access is validated against the declaration — reading an undeclared
    label or writing an undeclared compute raises, which is how Uintah
    catches mis-declared dependencies before they become races.
    """

    def __init__(
        self,
        task: Task,
        patch: Patch,
        level: Level,
        old_dw: Optional[DataWarehouse],
        new_dw: DataWarehouse,
        rank: int = 0,
    ) -> None:
        self.task = task
        self.patch = patch
        self.level = level
        self.old_dw = old_dw
        self.new_dw = new_dw
        self.rank = rank

    def _dw(self, which: str) -> DataWarehouse:
        if which == "old":
            if self.old_dw is None:
                raise SchedulerError(
                    f"task {self.task.name} reads old DW but none exists yet"
                )
            return self.old_dw
        return self.new_dw

    def _declared_requires(self, label: VarLabel) -> Requires:
        for r in self.task.requires:
            if r.label == label:
                return r
        raise SchedulerError(
            f"task {self.task.name} reads undeclared label {label.name}"
        )

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def require(
        self, label: VarLabel, num_ghost: Optional[int] = None, default: Optional[float] = None
    ) -> np.ndarray:
        """Assembled array over patch + ghost cells."""
        decl = self._declared_requires(label)
        ghost = decl.num_ghost if num_ghost is None else num_ghost
        if ghost > decl.num_ghost:
            raise SchedulerError(
                f"task {self.task.name} asks {ghost} ghosts of {label.name} "
                f"but declared only {decl.num_ghost}"
            )
        region = self.patch.box.grow(ghost)
        return self._dw(decl.dw).get_region(label, self.level, region, default=default)

    def require_level(self, label: VarLabel) -> np.ndarray:
        decl = self._declared_requires(label)
        return self._dw(decl.dw).get_level(label, decl.level_index)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def _declared_computes(self, label: VarLabel) -> Computes:
        for c in self.task.computes:
            if c.label == label:
                return c
        raise SchedulerError(
            f"task {self.task.name} writes undeclared label {label.name}"
        )

    def compute(self, label: VarLabel, data: np.ndarray) -> None:
        """Publish a patch-interior array as this task's result."""
        self._declared_computes(label)
        if tuple(np.shape(data)) != self.patch.box.extent:
            raise SchedulerError(
                f"task {self.task.name}: computed {label.name} shape "
                f"{np.shape(data)} != patch extent {self.patch.box.extent}"
            )
        self.new_dw.put(label, self.patch.patch_id, CCVariable(self.patch.box, np.asarray(data)))

    def compute_level(self, label: VarLabel, data: np.ndarray) -> None:
        decl = self._declared_computes(label)
        level_index = decl.level_index if decl.level_index is not None else self.level.index
        self.new_dw.put_level(label, level_index, data)

    def compute_reduction(self, label: VarLabel, value: float, op: str = "sum") -> None:
        self._declared_computes(label)
        self.new_dw.put_reduction(label, ReductionVariable(float(value), op))
