"""Execution engines for compiled task graphs.

Three schedulers mirror Uintah's evolution (paper Sections II and IV):

* :class:`SerialScheduler` — topological-order reference execution.
* :class:`ThreadedScheduler` — a pool of worker threads pulling ready
  tasks from a shared queue (the nodal shared-memory model), with
  optional randomized pull order to shake out order dependencies the
  way Uintah's out-of-order execution does.
* :class:`DistributedScheduler` — one thread per simulated MPI rank;
  every cross-rank dependency becomes an isend/irecv pair over
  :class:`~repro.runtime.mpi.SimMPI`, with receives managed by one of
  the Section IV request pools (wait-free by default).

All three produce identical DataWarehouse contents for the same graph —
the invariant the integration tests enforce.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.dw.datawarehouse import DataWarehouse
from repro.dw.label import VarKind
from repro.dw.variables import CCVariable
from repro.perf import tracectx
from repro.perf.flightrec import get_flight_recorder
from repro.perf.metrics import Histogram, MetricsRegistry, get_metrics
from repro.perf.rankstats import (
    StatSummary,
    format_rank_stats,
    publish_rank_stats,
    reduce_rank_stats,
)
from repro.perf.tracer import SpanTracer, get_tracer
from repro.perf.tsdb import get_collector
from repro.runtime.mpi import SimMPI
from repro.runtime.task import TaskContext
from repro.runtime.taskgraph import CompiledGraph, DetailedTask
from repro.util.errors import SchedulerError
from repro.util.timing import TimerRegistry


def _sample_collector() -> None:
    """Snapshot the default metrics registry into the process tsdb
    collector (when one is installed) after a graph execution — the
    per-execute cadence point shared by all three schedulers."""
    collector = get_collector()
    if collector is not None:
        collector.maybe_sample()


class SerialScheduler:
    """Reference executor: one rank, dependency order."""

    def __init__(
        self,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.timers = TimerRegistry()
        self.tracer = tracer
        self.metrics = metrics

    def execute(
        self,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse] = None,
        new_dw: Optional[DataWarehouse] = None,
    ) -> DataWarehouse:
        if graph.num_ranks != 1 or graph.messages:
            raise SchedulerError(
                "SerialScheduler runs single-rank graphs (compile with "
                "num_ranks=1 and no assignment)"
            )
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None else get_metrics()
        dw = new_dw if new_dw is not None else DataWarehouse()
        executed = 0
        with self.timers("taskexec"):
            for dt in graph.topological_order():
                ctx = TaskContext(
                    dt.task, dt.patch, graph.grid.level(dt.level_index), old_dw, dw
                )
                with tracer.span(
                    dt.task.name, cat="task",
                    patch=dt.patch.patch_id, level=dt.level_index,
                ):
                    dt.task.callback(ctx)
                executed += 1
        metrics.counter("scheduler.tasks_executed", scheduler="serial").inc(executed)
        metrics.gauge("scheduler.taskexec_seconds", scheduler="serial").set(
            self.timers("taskexec").elapsed
        )
        _sample_collector()
        return dw


class ThreadedScheduler:
    """Shared-memory multi-threaded executor (one node, many cores)."""

    def __init__(
        self,
        num_threads: int = 4,
        shuffle: bool = False,
        seed: int = 0,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_threads < 1:
            raise SchedulerError("num_threads must be >= 1")
        self.num_threads = int(num_threads)
        self.shuffle = bool(shuffle)
        self.seed = int(seed)
        self.timers = TimerRegistry()
        self.tracer = tracer
        self.metrics = metrics

    def execute(
        self,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse] = None,
        new_dw: Optional[DataWarehouse] = None,
    ) -> DataWarehouse:
        if graph.num_ranks != 1 or graph.messages:
            raise SchedulerError("ThreadedScheduler runs single-rank graphs")
        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None else get_metrics()
        dw = new_dw if new_dw is not None else DataWarehouse()
        by_id = {t.dtask_id: t for t in graph.detailed_tasks}
        indeg = {t.dtask_id: len(t.internal_deps) for t in graph.detailed_tasks}
        lock = threading.Lock()
        ready: List[int] = [tid for tid, d in indeg.items() if d == 0]
        rng = random.Random(self.seed)
        remaining = len(by_id)
        errors: List[BaseException] = []
        done_cv = threading.Condition(lock)

        def pull() -> Optional[DetailedTask]:
            with lock:
                while True:
                    if errors or not remaining_holder[0]:
                        return None
                    if ready:
                        idx = rng.randrange(len(ready)) if self.shuffle else 0
                        return by_id[ready.pop(idx)]
                    done_cv.wait(0.05)

        remaining_holder = [remaining]

        def finish(dt: DetailedTask) -> None:
            with lock:
                remaining_holder[0] -= 1
                for dep in dt.dependents:
                    if dep in indeg:
                        indeg[dep] -= 1
                        if indeg[dep] == 0:
                            ready.append(dep)
                done_cv.notify_all()

        def worker() -> None:
            while True:
                dt = pull()
                if dt is None:
                    return
                try:
                    ctx = TaskContext(
                        dt.task, dt.patch, graph.grid.level(dt.level_index), old_dw, dw
                    )
                    with tracer.span(
                        dt.task.name, cat="task",
                        patch=dt.patch.patch_id, level=dt.level_index,
                    ):
                        dt.task.callback(ctx)
                except BaseException as exc:  # repro: allow(overbroad-except) — re-raised on the caller's thread
                    with lock:
                        errors.append(exc)
                        done_cv.notify_all()
                    return
                finish(dt)

        with self.timers("taskexec"):
            threads = [threading.Thread(target=worker) for _ in range(self.num_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]
        if remaining_holder[0] != 0:
            raise SchedulerError(
                f"{remaining_holder[0]} tasks never became ready (deadlock)"
            )
        metrics.counter("scheduler.tasks_executed", scheduler="threaded").inc(
            len(by_id)
        )
        metrics.gauge("scheduler.taskexec_seconds", scheduler="threaded").set(
            self.timers("taskexec").elapsed
        )
        _sample_collector()
        return dw


@dataclass
class RankStats:
    """Per-rank execution accounting, Uintah's ExecTimes in miniature.

    ``local_comm_time`` is the executable counterpart of Figure 1's
    measured quantity: wall time the rank spent inside its request
    pool (posting/testing/processing messages)."""

    rank: int
    task_exec_time: float = 0.0
    local_comm_time: float = 0.0
    tasks_executed: int = 0
    messages_sent: int = 0
    bytes_sent: int = 0
    idle_spins: int = 0
    #: per-rank task-duration quantiles (seconds), estimated from a
    #: bucketed histogram — the tail, not just the mean, is what load
    #: imbalance shows up in
    task_time_p50: float = 0.0
    task_time_p95: float = 0.0
    task_time_p99: float = 0.0

    def as_dict(self) -> dict:
        from dataclasses import asdict

        return asdict(self)


class DistributedScheduler:
    """One thread per rank over simulated MPI (the full Uintah shape).

    ``pool_kind`` selects the request-pool implementation processing
    each rank's receives: 'waitfree' (the paper's fix), 'locked', or
    'legacy-racy' (for demonstrating the Section IV.A failure).
    """

    def __init__(
        self,
        num_ranks: int,
        pool_kind: str = "waitfree",
        delivery_jitter: float = 0.0,
        jitter_seed: int = 0,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        """``delivery_jitter`` > 0 injects randomized message arrival
        order/latency into the fabric (failure-injection testing)."""
        if num_ranks < 1:
            raise SchedulerError("num_ranks must be >= 1")
        self.num_ranks = int(num_ranks)
        self.pool_kind = pool_kind
        self.delivery_jitter = float(delivery_jitter)
        self.jitter_seed = int(jitter_seed)
        self.timers = TimerRegistry()
        self.tracer = tracer
        self.metrics = metrics
        self.fabric: Optional[SimMPI] = None
        #: per-rank ExecTimes, populated by execute()
        self.rank_stats: Dict[int, RankStats] = {}

    def execute(
        self,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse] = None,
    ) -> Dict[int, DataWarehouse]:
        """Run the graph; returns each rank's new DataWarehouse."""
        if graph.num_ranks != self.num_ranks:
            raise SchedulerError(
                f"graph compiled for {graph.num_ranks} ranks, scheduler has "
                f"{self.num_ranks}"
            )
        fabric = SimMPI(
            self.num_ranks,
            delivery_jitter=self.delivery_jitter,
            jitter_seed=self.jitter_seed,
        )
        self.fabric = fabric
        self.rank_stats = {r: RankStats(rank=r) for r in range(self.num_ranks)}
        rank_dws = {r: DataWarehouse() for r in range(self.num_ranks)}
        errors: List[BaseException] = []
        err_lock = threading.Lock()

        outgoing_by_dtask: Dict[int, List] = {}
        for msg in graph.messages:
            outgoing_by_dtask.setdefault(msg.src_dtask_id, []).append(msg)

        def rank_loop(rank: int) -> None:
            try:
                self._run_rank(rank, graph, fabric, rank_dws[rank], old_dw, outgoing_by_dtask)
            except BaseException as exc:  # repro: allow(overbroad-except) — re-raised on the caller's thread
                with err_lock:
                    errors.append(exc)

        with self.timers("execute"):
            threads = [
                threading.Thread(target=rank_loop, args=(r,), name=f"rank-{r}")
                for r in range(self.num_ranks)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        fabric.shutdown()
        if errors:
            raise errors[0]
        metrics = self.metrics if self.metrics is not None else get_metrics()
        publish_rank_stats(
            metrics, self.rank_stats, prefix="scheduler.rank",
            scheduler="distributed",
        )
        fabric.stats.publish_metrics(metrics)
        _sample_collector()
        return rank_dws

    def runtime_stats(self) -> Dict[str, StatSummary]:
        """Uintah-style reduction (min/mean/max/total across ranks) of
        the last execution's per-rank stats."""
        return reduce_rank_stats(self.rank_stats)

    def runtime_stats_report(self) -> str:
        return format_rank_stats(
            self.runtime_stats(), title="Distributed runtime stats"
        )

    def _run_rank(
        self,
        rank: int,
        graph: CompiledGraph,
        fabric: SimMPI,
        new_dw: DataWarehouse,
        old_dw: Optional[DataWarehouse],
        outgoing_by_dtask: Dict[int, List],
    ) -> None:
        # imported here: repro.comm builds on repro.runtime.mpi, so a
        # module-level import would be circular
        from repro.comm.driver import make_pool
        from repro.comm.request import CommNode

        tracer = self.tracer if self.tracer is not None else get_tracer()
        metrics = self.metrics if self.metrics is not None else get_metrics()
        tracer.register_thread(tid=rank, name=f"rank {rank}")
        comm = fabric.comm(rank)
        local = graph.tasks_on_rank(rank)
        indeg = {t.dtask_id: len(t.internal_deps) for t in local}
        pending = {t.dtask_id: set(t.pending_msgs) for t in local}
        by_id = {t.dtask_id: t for t in local}
        waiting_on_msg: Dict[int, List[int]] = {}
        for t in local:
            for mid in t.pending_msgs:
                waiting_on_msg.setdefault(mid, []).append(t.dtask_id)

        pool = make_pool(self.pool_kind)
        newly_satisfied: List[int] = []

        def stage(msg, req):
            def callback(data):
                # the recv span is attributed to the *sender's* causal
                # chain: its trace_id comes off the delivered message
                # (req.ctx), not this rank's ambient context
                args = {"msg_id": msg.msg_id, "src": msg.src_rank, "dst": rank}
                sender_ctx = req.ctx
                if sender_ctx is not None:
                    args["trace_id"] = sender_ctx.trace_id
                    args["parent_span_id"] = sender_ctx.span_id
                with tracer.span("comm.recv", cat="comm", **args):
                    tracer.flow_finish(msg.msg_id, **args)
                    if msg.label.kind is VarKind.PER_LEVEL:
                        new_dw.put_level(msg.label, msg.level_index, data)
                    else:
                        new_dw.add_foreign(
                            msg.label, msg.src_patch_id, CCVariable(msg.region, data)
                        )
                    newly_satisfied.append(msg.msg_id)
            return callback

        for msg in graph.messages_to(rank):
            req = comm.irecv(source=msg.src_rank, tag=msg.msg_id)
            pool.insert(CommNode(req, nbytes=msg.nbytes, on_finish=stage(msg, req)))

        ready = deque(
            t.dtask_id for t in local if indeg[t.dtask_id] == 0 and not pending[t.dtask_id]
        )
        completed = 0
        total = len(local)
        idle_spins = 0
        stats = self.rank_stats[rank]
        task_hist = Histogram("scheduler.rank.task_seconds", ())
        recorder = get_flight_recorder()
        while completed < total:
            t0 = time.perf_counter()
            pool.process_ready()
            stats.local_comm_time += time.perf_counter() - t0
            while newly_satisfied:
                mid = newly_satisfied.pop()
                for tid in waiting_on_msg.get(mid, ()):
                    pend = pending[tid]
                    pend.discard(mid)
                    if not pend and indeg[tid] == 0:
                        ready.append(tid)
            if not ready:
                idle_spins += 1
                stats.idle_spins += 1
                if idle_spins > 2_000_000:
                    raise SchedulerError(
                        f"rank {rank} deadlocked: {total - completed} tasks stuck"
                    )
                time.sleep(0)
                continue
            idle_spins = 0
            dt = by_id[ready.popleft()]
            ctx = TaskContext(
                dt.task, dt.patch, graph.grid.level(dt.level_index), old_dw, new_dw, rank=rank
            )
            # one causal chain per task execution: the task span, every
            # send it triggers, and (via the fabric) the matching recv
            # spans on other ranks all share this trace_id
            task_trace = tracectx.child_or_new()
            t0 = time.perf_counter()
            with tracectx.use(task_trace):
                with tracer.span(
                    dt.task.name, cat="task",
                    patch=dt.patch.patch_id, level=dt.level_index, rank=rank,
                ):
                    dt.task.callback(ctx)
                task_dur = time.perf_counter() - t0
                stats.task_exec_time += task_dur
                task_hist.observe(task_dur)
                stats.tasks_executed += 1
                completed += 1
                # always-on black box: one atomic deque append per task
                recorder.record(
                    "task", dt.task.name, rank=rank,
                    patch=dt.patch.patch_id, dur_s=round(task_dur, 6),
                    trace_id=task_trace.trace_id,
                )
                # ship every outgoing message this task's results satisfy
                t0 = time.perf_counter()
                for msg in outgoing_by_dtask.get(dt.dtask_id, ()):
                    if msg.label.kind is VarKind.PER_LEVEL:
                        data = new_dw.get_level(msg.label, msg.level_index)
                    else:
                        data = new_dw.get(msg.label, dt.patch.patch_id).view(msg.region).copy()
                    with tracer.span(
                        "comm.send", cat="comm",
                        msg_id=msg.msg_id, src=rank, dst=msg.dst_rank,
                    ):
                        tracer.flow_start(
                            msg.msg_id, msg_id=msg.msg_id, src=rank, dst=msg.dst_rank
                        )
                        comm.isend(data, dest=msg.dst_rank, tag=msg.msg_id)
                    stats.messages_sent += 1
                    stats.bytes_sent += msg.nbytes
                stats.local_comm_time += time.perf_counter() - t0
            # local dependents
            for dep in dt.dependents:
                if dep in indeg:
                    indeg[dep] -= 1
                    if indeg[dep] == 0 and not pending[dep]:
                        ready.append(dep)
        if task_hist.count:
            stats.task_time_p50 = task_hist.quantile(0.50) or 0.0
            stats.task_time_p95 = task_hist.quantile(0.95) or 0.0
            stats.task_time_p99 = task_hist.quantile(0.99) or 0.0
        pool.publish_metrics(metrics, pool=self.pool_kind, rank=rank)


def gather_cc(
    graph: CompiledGraph,
    rank_dws: Dict[int, DataWarehouse],
    label,
    level_index: int,
) -> np.ndarray:
    """Assemble one CC label's global field from the per-rank DWs
    (verification helper: distributed result == serial result)."""
    level = graph.grid.level(level_index)
    out = np.full(level.domain_box.extent, np.nan)
    for patch in level.patches:
        rank = graph.assignment.get(patch.patch_id, 0)
        var = rank_dws[rank].get(label, patch.patch_id)
        out[patch.box.slices(origin=level.domain_box.lo)] = var.view(patch.box)
    if np.isnan(out).any():
        raise SchedulerError(f"gather of {label.name} left holes")
    return out
