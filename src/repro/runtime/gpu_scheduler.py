"""The GPU task scheduler: multi-stage queues over the GPU DataWarehouse.

Uintah's heterogeneous scheduler (paper Section II and ref [6]) moves
each device task through a pipeline — H2D copies for its requires,
kernel execution on a CUDA stream, D2H copies of its computes — with
multiple patches in flight so copies overlap kernels. This module
reproduces the *structure and accounting* of that pipeline: stage
queues, bounded in-flight residency, per-stream assignment, shared
level-database uploads, and exact PCIe byte counts. (Wall-clock overlap
modelling lives in :mod:`repro.dessim`, which prices these same counts
on the Titan machine model.)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.dw.datawarehouse import DataWarehouse
from repro.dw.gpudw import GPUDataWarehouse
from repro.dw.label import VarKind, VarLabel
from repro.dw.variables import CCVariable
from repro.perf.metrics import MetricsRegistry, get_metrics
from repro.perf.tracer import SpanTracer, get_tracer
from repro.runtime.task import TaskContext
from repro.runtime.taskgraph import CompiledGraph, DetailedTask
from repro.util.errors import DataWarehouseError, SchedulerError


class GPUTaskContext(TaskContext):
    """Task view with device-resident data access."""

    def __init__(self, *args, gpu: GPUDataWarehouse, dtask_id: int, stream_id: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.gpu = gpu
        self.dtask_id = dtask_id
        self.stream_id = stream_id

    def device_require(self, label: VarLabel) -> np.ndarray:
        """The staged device copy of a CC requires (patch + ghosts)."""
        return self.gpu.get_patch_var(label, self.patch.patch_id)

    def device_require_level(self, label: VarLabel) -> np.ndarray:
        decl = self._declared_requires(label)
        return self.gpu.get_level_var(label, decl.level_index, task_id=self.dtask_id)


@dataclass
class GPUSchedulerStats:
    tasks_executed: int = 0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    level_uploads: int = 0
    peak_resident_tasks: int = 0
    per_stream_tasks: Dict[int, int] = field(default_factory=dict)


class GPUScheduler:
    """Single-device executor with staged H2D / exec / D2H queues.

    ``max_in_flight`` bounds how many patch tasks may be resident on the
    device simultaneously (over-decomposition: more patches in flight
    hides copy latency, at the price of memory). Host tasks in the same
    graph run inline on the CPU path.
    """

    def __init__(
        self,
        gpu: Optional[GPUDataWarehouse] = None,
        num_streams: int = 4,
        max_in_flight: int = 8,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_streams < 1 or max_in_flight < 1:
            raise SchedulerError("num_streams and max_in_flight must be >= 1")
        self.gpu = gpu if gpu is not None else GPUDataWarehouse()
        self.num_streams = int(num_streams)
        self.max_in_flight = int(max_in_flight)
        self.stats = GPUSchedulerStats()
        self.tracer = tracer
        self.metrics = metrics

    def publish_metrics(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Snapshot the pipeline counters into a metrics registry."""
        registry = registry if registry is not None else (
            self.metrics if self.metrics is not None else get_metrics()
        )
        registry.gauge("gpu.tasks_executed").set(self.stats.tasks_executed)
        registry.gauge("gpu.h2d_bytes").set(self.stats.h2d_bytes)
        registry.gauge("gpu.d2h_bytes").set(self.stats.d2h_bytes)
        registry.gauge("gpu.level_uploads").set(self.stats.level_uploads)
        registry.gauge("gpu.peak_resident_tasks").set(self.stats.peak_resident_tasks)
        for stream, count in self.stats.per_stream_tasks.items():
            registry.gauge("gpu.stream_tasks", stream=stream).set(count)

    # ------------------------------------------------------------------
    def execute(
        self,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse] = None,
        new_dw: Optional[DataWarehouse] = None,
    ) -> DataWarehouse:
        if graph.num_ranks != 1 or graph.messages:
            raise SchedulerError("GPUScheduler runs single-rank graphs")
        dw = new_dw if new_dw is not None else DataWarehouse()
        tracer = self.tracer if self.tracer is not None else get_tracer()

        order = graph.topological_order()
        pending = deque(order)
        in_flight: deque = deque()  # device tasks staged but not executed
        next_stream = 0

        while pending or in_flight:
            # fill the device pipeline (H2D stage)
            while (
                pending
                and pending[0].task.device
                and len(in_flight) < self.max_in_flight
            ):
                dt = pending[0]
                try:
                    with tracer.span(
                        f"h2d:{dt.task.name}", cat="gpu.h2d",
                        patch=dt.patch.patch_id,
                    ):
                        self._stage_h2d(dt, graph, old_dw, dw)
                except DataWarehouseError:
                    if not in_flight:
                        raise  # nothing to evict: genuinely over capacity
                    break  # backpressure: run something first
                pending.popleft()
                in_flight.append((dt, next_stream))
                next_stream = (next_stream + 1) % self.num_streams
                self.stats.peak_resident_tasks = max(
                    self.stats.peak_resident_tasks, len(in_flight)
                )

            if in_flight:
                dt, stream = in_flight.popleft()
                with tracer.span(
                    dt.task.name, cat="gpu.task",
                    patch=dt.patch.patch_id, stream=stream,
                ):
                    self._execute_device(dt, stream, graph, old_dw, dw)
                continue

            if pending:
                dt = pending.popleft()
                if dt.task.device:
                    raise SchedulerError(
                        f"device task {dt.task.name} could not be staged"
                    )
                ctx = TaskContext(
                    dt.task, dt.patch, graph.grid.level(dt.level_index), old_dw, dw
                )
                with tracer.span(
                    dt.task.name, cat="task", patch=dt.patch.patch_id
                ):
                    dt.task.callback(ctx)
                self.stats.tasks_executed += 1
        self.publish_metrics()
        return dw

    # ------------------------------------------------------------------
    def _stage_h2d(
        self,
        dt: DetailedTask,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse],
        new_dw: DataWarehouse,
    ) -> None:
        level = graph.grid.level(dt.level_index)
        before = self.gpu.stats.h2d_bytes
        for req in dt.task.requires:
            src = old_dw if req.dw == "old" else new_dw
            if src is None:
                raise SchedulerError(
                    f"task {dt.task.name} reads old DW but none exists"
                )
            if req.label.kind is VarKind.PER_LEVEL:
                data = src.get_level(req.label, req.level_index)
                transfers_before = self.gpu.stats.h2d_transfers
                self.gpu.upload_level_var(
                    req.label, req.level_index, data, task_id=dt.dtask_id
                )
                if self.gpu.stats.h2d_transfers > transfers_before:
                    self.stats.level_uploads += 1
            elif req.label.kind is VarKind.CELL_CENTERED:
                region = dt.patch.box.grow(req.num_ghost)
                arr = src.get_region(req.label, level, region, default=0.0)
                self.gpu.upload_patch_var(
                    req.label, dt.patch.patch_id, CCVariable(region, arr)
                )
        self.stats.h2d_bytes = self.gpu.stats.h2d_bytes
        _ = before

    def _execute_device(
        self,
        dt: DetailedTask,
        stream: int,
        graph: CompiledGraph,
        old_dw: Optional[DataWarehouse],
        new_dw: DataWarehouse,
    ) -> None:
        ctx = GPUTaskContext(
            dt.task,
            dt.patch,
            graph.grid.level(dt.level_index),
            old_dw,
            new_dw,
            gpu=self.gpu,
            dtask_id=dt.dtask_id,
            stream_id=stream,
        )
        dt.task.callback(ctx)
        self.stats.tasks_executed += 1
        self.stats.per_stream_tasks[stream] = self.stats.per_stream_tasks.get(stream, 0) + 1

        # D2H: every computed CC variable comes back to the host
        for comp in dt.task.computes:
            if comp.label.kind is VarKind.CELL_CENTERED and new_dw.exists(
                comp.label, dt.patch.patch_id
            ):
                self.stats.d2h_bytes += new_dw.get(comp.label, dt.patch.patch_id).nbytes
                self.gpu.stats.d2h_bytes += new_dw.get(comp.label, dt.patch.patch_id).nbytes
                self.gpu.stats.d2h_transfers += 1

        # release this task's per-patch residency (keep the level DB)
        for req in dt.task.requires:
            if req.label.kind is VarKind.CELL_CENTERED:
                try:
                    self.gpu.release_patch_var(req.label, dt.patch.patch_id)
                except DataWarehouseError:
                    pass  # shared with another task instance; already gone
        self.gpu.release_task(dt.dtask_id)
