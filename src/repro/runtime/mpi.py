"""In-process simulated MPI.

Every piece of Uintah infrastructure this reproduction exercises —
the DataWarehouse's automatic message generation, the schedulers, and
above all the MPI-request pools of Section IV — programs against the
non-blocking point-to-point subset of MPI (``isend``/``irecv``/
``test``/``wait`` with tag matching and wildcards). This module
provides that subset as an in-process fabric: one :class:`SimMPI`
object is the "machine", and each rank holds a :class:`Communicator`
endpoint.

The fabric is fully thread-safe (per-destination locking), because the
paper's request-pool experiments require *real* concurrent threads
posting and testing requests — simulating MPI_THREAD_MULTIPLE.
Message matching is FIFO per (source, tag) pair, mirroring MPI's
non-overtaking guarantee.
"""

from __future__ import annotations

import random
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.perf import tracectx
from repro.util.errors import CommError

ANY_SOURCE = -1
ANY_TAG = -1


def _payload_nbytes(data: Any) -> int:
    nbytes = getattr(data, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    return 64  # generic Python object envelope


@dataclass
class Message:
    source: int
    dest: int
    tag: int
    data: Any
    nbytes: int
    seq: int  # global posting order, for deterministic FIFO matching
    #: causal trace context stamped by the sender (perf.tracectx);
    #: rides the fabric so the receive side can attribute the message
    ctx: Optional[object] = None


class Request:
    """Base non-blocking request handle."""

    def __init__(self) -> None:
        self._complete = threading.Event()
        self._lock = threading.Lock()
        self.data: Any = None
        self.cancelled = False

    def test(self) -> bool:
        """True once the operation has completed.

        Like ``MPI_Test``, calling this concurrently from several
        threads on the *same* request is the caller's bug — the request
        pools of :mod:`repro.comm` exist to prevent exactly that.
        """
        return self._complete.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        if not self._complete.wait(timeout):
            raise CommError("request wait timed out")
        return self.data

    def _finish(self, data: Any = None) -> None:
        self.data = data
        self._complete.set()


class SendRequest(Request):
    """Eager-buffered send: complete once the fabric owns the payload."""


class RecvRequest(Request):
    def __init__(self, source: int, tag: int) -> None:
        super().__init__()
        self.source = source
        self.tag = tag
        self.matched_source: Optional[int] = None
        self.matched_tag: Optional[int] = None
        self.nbytes: int = 0
        #: the sender's trace context, populated at delivery
        self.ctx: Optional[object] = None

    def _matches(self, msg: Message) -> bool:
        return (self.source in (ANY_SOURCE, msg.source)) and (
            self.tag in (ANY_TAG, msg.tag)
        )

    def _deliver(self, msg: Message) -> None:
        self.matched_source = msg.source
        self.matched_tag = msg.tag
        self.nbytes = msg.nbytes
        self.ctx = msg.ctx
        self._finish(msg.data)


@dataclass
class FabricStats:
    messages: int = 0
    bytes: int = 0
    per_rank_sent: Dict[int, int] = field(default_factory=dict)
    per_rank_bytes: Dict[int, int] = field(default_factory=dict)

    def per_rank(self) -> Dict[int, Dict[str, int]]:
        """``{rank: {stat: value}}`` over every rank that sent."""
        ranks = set(self.per_rank_sent) | set(self.per_rank_bytes)
        return {
            r: {
                "messages_sent": self.per_rank_sent.get(r, 0),
                "bytes_sent": self.per_rank_bytes.get(r, 0),
            }
            for r in sorted(ranks)
        }

    def reduction(self):
        """Uintah-style min/mean/max/total reduction across ranks."""
        from repro.perf.rankstats import reduce_rank_stats

        return reduce_rank_stats(self.per_rank())

    def publish_metrics(self, registry, **labels) -> None:
        registry.gauge("mpi.messages", **labels).set(self.messages)
        registry.gauge("mpi.bytes", **labels).set(self.bytes)
        for rank, stats in self.per_rank().items():
            registry.gauge("mpi.rank.messages_sent", rank=rank, **labels).set(
                stats["messages_sent"]
            )
            registry.gauge("mpi.rank.bytes_sent", rank=rank, **labels).set(
                stats["bytes_sent"]
            )


class SimMPI:
    """The shared fabric: unmatched-message and posted-receive queues
    per destination rank, guarded by per-rank locks.

    ``delivery_jitter`` > 0 enables failure-injection mode: sends are
    staged and a progress thread delivers them after random delays in a
    randomized *cross-channel* order (per-(source, dest, tag) FIFO is
    preserved, as MPI's non-overtaking rule requires). Used to shake
    arrival-order assumptions out of the schedulers.
    """

    def __init__(
        self,
        num_ranks: int,
        delivery_jitter: float = 0.0,
        jitter_seed: int = 0,
    ) -> None:
        if num_ranks < 1:
            raise CommError(f"num_ranks must be >= 1, got {num_ranks}")
        if delivery_jitter < 0:
            raise CommError("delivery_jitter must be >= 0")
        self.num_ranks = int(num_ranks)
        self._unexpected: List[List[Message]] = [[] for _ in range(num_ranks)]
        self._posted: List[List[RecvRequest]] = [[] for _ in range(num_ranks)]
        self._locks = [threading.Lock() for _ in range(num_ranks)]
        self._seq = 0
        self._seq_lock = threading.Lock()
        self.stats = FabricStats()

        self.delivery_jitter = float(delivery_jitter)
        self._staged: Dict[Tuple[int, int, int], deque] = {}
        self._staged_count = 0
        self._stage_lock = threading.Lock()
        self._stage_rng = random.Random(jitter_seed)
        self._stop = threading.Event()
        self._progress_thread: Optional[threading.Thread] = None
        if self.delivery_jitter > 0:
            self._progress_thread = threading.Thread(
                target=self._progress_loop, name="mpi-progress", daemon=True
            )
            self._progress_thread.start()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the progress thread after draining staged messages."""
        if self._progress_thread is None:
            return
        deadline = time.monotonic() + timeout
        while self._staged_count and time.monotonic() < deadline:
            time.sleep(1e-4)
        self._stop.set()
        self._progress_thread.join(timeout=timeout)
        self._progress_thread = None

    def _progress_loop(self) -> None:
        while not self._stop.is_set():
            msg = None
            delay = 0.0
            with self._stage_lock:
                if self._staged:
                    key = self._stage_rng.choice(list(self._staged))
                    channel = self._staged[key]
                    msg = channel.popleft()
                    if not channel:
                        del self._staged[key]
                    delay = self._stage_rng.random() * self.delivery_jitter
            if msg is None:
                time.sleep(1e-4)
                continue
            time.sleep(delay)
            self._deliver(msg)
            with self._stage_lock:
                self._staged_count -= 1

    def comm(self, rank: int) -> "Communicator":
        if not 0 <= rank < self.num_ranks:
            raise CommError(f"rank {rank} out of range [0, {self.num_ranks})")
        return Communicator(self, rank)

    def comms(self) -> List["Communicator"]:
        return [self.comm(r) for r in range(self.num_ranks)]

    # ------------------------------------------------------------------
    # fabric internals
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        with self._seq_lock:
            self._seq += 1
            return self._seq

    def _post_send(self, msg: Message) -> None:
        with self._locks[msg.dest]:
            self.stats.messages += 1
            self.stats.bytes += msg.nbytes
            self.stats.per_rank_sent[msg.source] = (
                self.stats.per_rank_sent.get(msg.source, 0) + 1
            )
            self.stats.per_rank_bytes[msg.source] = (
                self.stats.per_rank_bytes.get(msg.source, 0) + msg.nbytes
            )
        if self.delivery_jitter > 0:
            key = (msg.source, msg.dest, msg.tag)
            with self._stage_lock:
                self._staged.setdefault(key, deque()).append(msg)
                self._staged_count += 1
            return
        self._deliver(msg)

    def _deliver(self, msg: Message) -> None:
        with self._locks[msg.dest]:
            posted = self._posted[msg.dest]
            for i, req in enumerate(posted):
                if req._matches(msg):
                    posted.pop(i)
                    req._deliver(msg)
                    return
            self._unexpected[msg.dest].append(msg)

    def _post_recv(self, dest: int, req: RecvRequest) -> None:
        with self._locks[dest]:
            queue = self._unexpected[dest]
            for i, msg in enumerate(queue):
                if req._matches(msg):
                    queue.pop(i)
                    req._deliver(msg)
                    return
            self._posted[dest].append(req)

    def pending_messages(self, rank: int) -> int:
        """Unmatched messages queued at ``rank`` (diagnostics)."""
        with self._locks[rank]:
            return len(self._unexpected[rank])

    def outstanding_recvs(self, rank: int) -> int:
        with self._locks[rank]:
            return len(self._posted[rank])

    def quiescent(self) -> bool:
        """No staged/unmatched messages and no posted receives anywhere."""
        if self._staged_count:
            return False
        return all(
            self.pending_messages(r) == 0 and self.outstanding_recvs(r) == 0
            for r in range(self.num_ranks)
        )


class Communicator:
    """One rank's endpoint (cf. an MPI communicator + rank binding)."""

    def __init__(self, fabric: SimMPI, rank: int) -> None:
        self.fabric = fabric
        self.rank = rank

    @property
    def size(self) -> int:
        return self.fabric.num_ranks

    def isend(self, data: Any, dest: int, tag: int = 0) -> SendRequest:
        if not 0 <= dest < self.size:
            raise CommError(f"isend to unknown rank {dest}")
        if tag < 0:
            raise CommError(f"send tag must be >= 0, got {tag}")
        msg = Message(
            source=self.rank,
            dest=dest,
            tag=tag,
            data=data,
            nbytes=_payload_nbytes(data),
            seq=self.fabric._next_seq(),
            ctx=tracectx.current(),
        )
        req = SendRequest()
        self.fabric._post_send(msg)
        req._finish(None)  # eager buffered: complete at post
        return req

    def send(self, data: Any, dest: int, tag: int = 0) -> None:
        self.isend(data, dest, tag).wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise CommError(f"irecv from unknown rank {source}")
        req = RecvRequest(source, tag)
        self.fabric._post_recv(self.rank, req)
        return req

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             timeout: Optional[float] = None) -> Any:
        return self.irecv(source, tag).wait(timeout)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """True if a matching message is already queued (non-consuming)."""
        with self.fabric._locks[self.rank]:
            probe = RecvRequest(source, tag)
            return any(probe._matches(m) for m in self.fabric._unexpected[self.rank])
