"""The Uintah-style asynchronous task runtime: simulated MPI, task
declarations, task-graph compilation, and the serial / threaded /
distributed / GPU schedulers."""

from repro.runtime.mpi import ANY_SOURCE, ANY_TAG, Communicator, SimMPI
from repro.runtime.task import Computes, Requires, Task, TaskContext
from repro.runtime.taskgraph import CompiledGraph, DetailedTask, GhostMessage, TaskGraph
from repro.runtime.scheduler import (
    DistributedScheduler,
    RankStats,
    SerialScheduler,
    ThreadedScheduler,
    gather_cc,
)
from repro.runtime.gpu_scheduler import GPUScheduler, GPUSchedulerStats, GPUTaskContext
from repro.runtime.controller import SimulationController, TimestepReport
from repro.runtime.multigpu import MultiGPUScheduler

__all__ = [
    "SimulationController",
    "TimestepReport",
    "MultiGPUScheduler",
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "SimMPI",
    "Computes",
    "Requires",
    "Task",
    "TaskContext",
    "CompiledGraph",
    "DetailedTask",
    "GhostMessage",
    "TaskGraph",
    "DistributedScheduler",
    "RankStats",
    "SerialScheduler",
    "ThreadedScheduler",
    "gather_cc",
    "GPUScheduler",
    "GPUSchedulerStats",
    "GPUTaskContext",
]
