"""Discrete-event Titan cluster simulator and the RMCRT cost model —
the machinery that regenerates the paper's Table I and Figures 1-3."""

from repro.dessim.engine import EventSimulator, SlotResource
from repro.dessim.costmodel import (
    BYTES_PER_VAR,
    NUM_PROPERTY_VARS,
    CommStats,
    LARGE,
    MEDIUM,
    PoolTimingModel,
    RMCRTProblem,
    RayWorkModel,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)
from repro.dessim.cluster import (
    CampaignEvent,
    CampaignReport,
    ClusterSimulator,
    ScalingSeries,
    SimOptions,
    StrongScalingStudy,
    TimestepBreakdown,
    simulate_campaign,
)
from repro.dessim.tracesim import (
    MsgFlow,
    TaskGraphTraceSimulator,
    TaskTrace,
    TraceReport,
    rmcrt_task_cost,
)

__all__ = [
    "EventSimulator",
    "SlotResource",
    "BYTES_PER_VAR",
    "NUM_PROPERTY_VARS",
    "CommStats",
    "LARGE",
    "MEDIUM",
    "PoolTimingModel",
    "RMCRTProblem",
    "RayWorkModel",
    "multi_level_comm_per_rank",
    "single_level_comm_per_rank",
    "CampaignEvent",
    "CampaignReport",
    "ClusterSimulator",
    "ScalingSeries",
    "SimOptions",
    "StrongScalingStudy",
    "TimestepBreakdown",
    "simulate_campaign",
    "MsgFlow",
    "TaskGraphTraceSimulator",
    "TaskTrace",
    "TraceReport",
    "rmcrt_task_cost",
]
