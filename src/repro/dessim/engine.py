"""Discrete-event machinery for the cluster simulator.

Two layers:

* :class:`EventSimulator` — a classic heapq event loop (schedule
  callbacks at absolute times), used where genuinely reactive behaviour
  matters and by tests of the engine itself.
* :class:`SlotResource` — non-preemptive list scheduling over ``k``
  identical slots. Because every activity in the RMCRT pipeline is
  run-to-completion with known durations (copies, kernels), resource
  timelines can be computed by greedy slot assignment without
  callbacks; this is what the node-pipeline simulation uses, and it is
  provably equivalent to the event-driven execution for FIFO work.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.util.errors import ReproError


class EventSimulator:
    """Minimal discrete-event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        if delay < 0:
            raise ReproError(f"cannot schedule into the past (delay {delay})")
        heapq.heappush(self._heap, (self.now + delay, next(self._seq), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        self.schedule(time - self.now, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap (optionally stopping at ``until``);
        returns the final clock."""
        while self._heap:
            t, _, cb = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = t
            self.events_processed += 1
            cb()
        return self.now


class SlotResource:
    """``k`` identical FIFO servers (copy engines, SMX waves, links)."""

    def __init__(self, slots: int, name: str = "") -> None:
        if slots < 1:
            raise ReproError("resource needs >= 1 slot")
        self.name = name
        self._free_at = [0.0] * slots  # heapified
        heapq.heapify(self._free_at)
        self.busy_time = 0.0
        self.jobs = 0

    def request(self, ready: float, duration: float) -> Tuple[float, float]:
        """Serve a job that becomes ready at ``ready`` for ``duration``;
        returns (start, end)."""
        if duration < 0:
            raise ReproError("negative duration")
        slot_free = heapq.heappop(self._free_at)
        start = max(ready, slot_free)
        end = start + duration
        heapq.heappush(self._free_at, end)
        self.busy_time += duration
        self.jobs += 1
        return start, end

    @property
    def makespan(self) -> float:
        return max(self._free_at)

    def utilization(self, horizon: Optional[float] = None) -> float:
        h = horizon if horizon is not None else self.makespan
        if h <= 0:
            return 0.0
        return self.busy_time / (h * len(self._free_at))
