"""Task-graph trace simulation: the *real* compiled graph on the
machine model.

Where :mod:`repro.dessim.cluster` prices a statistically representative
rank analytically, this module event-simulates an actual
:class:`~repro.runtime.taskgraph.CompiledGraph`: every detailed task
becomes a job on its rank's executor, every ghost message travels the
network model, and readiness follows the graph's true dependency and
message structure. The output is a per-rank timeline — busy, idle
(MPI-wait), makespan — which is how the paper's team diagnosed where
time went (their Figure 1 "local communication time" is exactly such a
timeline component).

Cost attribution is pluggable: callers hand a ``task_cost(dtask)``
function (e.g. priced from the K20X/Opteron models or measured from a
real run), and message latency comes from a
:class:`~repro.machine.network.NetworkModel`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.machine.network import GEMINI, NetworkModel
from repro.runtime.taskgraph import CompiledGraph, DetailedTask
from repro.util.errors import SchedulerError

TaskCost = Callable[[DetailedTask], float]


@dataclass
class TaskTrace:
    dtask_id: int
    name: str
    rank: int
    ready: float
    start: float
    end: float

    @property
    def wait(self) -> float:
        """Time spent ready but waiting for the rank's executor."""
        return self.start - self.ready


@dataclass
class MsgFlow:
    """One simulated message delivery: who sent, who consumed, when.

    ``flow_id`` is ``"<msg_id>.<k>"`` — one flow per *waiter* of a
    (possibly broadcast) message id, so the exported ``s``/``f`` flow
    events pair 1:1 the way :func:`repro.perf.merge.validate_chrome_trace`
    requires and the analyzer can treat each delivery as its own edge.
    """

    flow_id: str
    msg_id: int
    src_dtask_id: int
    dst_dtask_id: int
    src_rank: int
    dst_rank: int
    depart: float
    arrive: float
    nbytes: int


@dataclass
class RankTimeline:
    rank: int
    busy: float = 0.0
    finish: float = 0.0
    tasks: int = 0

    def idle(self, makespan: float) -> float:
        return makespan - self.busy


@dataclass
class TraceReport:
    makespan: float
    traces: List[TaskTrace]
    ranks: Dict[int, RankTimeline]
    messages_sent: int
    message_bytes: int
    flows: List[MsgFlow] = field(default_factory=list)

    @property
    def total_busy(self) -> float:
        return sum(r.busy for r in self.ranks.values())

    @property
    def parallel_efficiency(self) -> float:
        """busy / (ranks x makespan): 1.0 = no idle time anywhere."""
        n = len(self.ranks)
        if n == 0 or self.makespan <= 0:
            return 1.0
        return self.total_busy / (n * self.makespan)

    def critical_rank(self) -> int:
        return max(self.ranks.values(), key=lambda r: r.finish).rank

    # ------------------------------------------------------------------
    # Chrome trace-event export
    # ------------------------------------------------------------------
    def to_chrome_trace_events(self, pid: int = 0) -> List[dict]:
        """The simulated timeline as Chrome trace-event dicts.

        Each rank becomes a thread row (``tid`` = rank, named via an
        ``M`` metadata event); each task trace becomes a complete
        (``"X"``) event with simulated-seconds scaled to microseconds,
        carrying its ready time and executor wait in ``args``; each
        simulated message delivery becomes an ``s``/``f`` flow pair
        (departure on the sender's row, arrival on the consumer's, the
        consuming task named in ``args.dtask_id``) so the viewer draws
        the message arrows and :mod:`repro.perf.analyze` recovers the
        cross-rank dependency edges. The result loads directly in
        chrome://tracing or Perfetto.
        """
        events: List[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": rank,
                "args": {"name": f"rank {rank}"},
            }
            for rank in sorted(self.ranks)
        ]
        for t in sorted(self.traces, key=lambda t: (t.start, t.rank)):
            events.append(
                {
                    "name": t.name,
                    "ph": "X",
                    "ts": t.start * 1e6,
                    "dur": (t.end - t.start) * 1e6,
                    "pid": pid,
                    "tid": t.rank,
                    "cat": "sim.task",
                    "args": {
                        "dtask_id": t.dtask_id,
                        "ready_us": t.ready * 1e6,
                        "wait_us": t.wait * 1e6,
                    },
                }
            )
        for fl in self.flows:
            events.append(
                {
                    "name": "msg",
                    "ph": "s",
                    "ts": fl.depart * 1e6,
                    "pid": pid,
                    "tid": fl.src_rank,
                    "cat": "sim.flow",
                    "id": fl.flow_id,
                    "args": {"dtask_id": fl.src_dtask_id, "nbytes": fl.nbytes},
                }
            )
            events.append(
                {
                    "name": "msg",
                    "ph": "f",
                    "bp": "e",
                    "ts": fl.arrive * 1e6,
                    "pid": pid,
                    "tid": fl.dst_rank,
                    "cat": "sim.flow",
                    "id": fl.flow_id,
                    "args": {"dtask_id": fl.dst_dtask_id, "nbytes": fl.nbytes},
                }
            )
        return events

    def write_chrome_trace(self, path) -> None:
        """Write the timeline as a chrome://tracing-loadable JSON file."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_chrome_trace_events()))


class TaskGraphTraceSimulator:
    """Event-driven execution of a compiled graph on modelled hardware.

    One non-preemptive executor per rank (the per-node GPU or the
    task-serial core — parallel intra-node execution can be modelled by
    dividing task costs). Messages leave when their producing task
    completes and arrive after the network model's point-to-point time;
    a task starts when its internal dependencies have completed, its
    messages have arrived, and its rank's executor frees up.
    """

    def __init__(self, network: Optional[NetworkModel] = None) -> None:
        self.network = network if network is not None else GEMINI

    def simulate(self, graph: CompiledGraph, task_cost: TaskCost) -> TraceReport:
        by_id = {t.dtask_id: t for t in graph.detailed_tasks}
        remaining_deps = {t.dtask_id: len(t.internal_deps) for t in graph.detailed_tasks}
        remaining_msgs = {t.dtask_id: len(t.pending_msgs) for t in graph.detailed_tasks}
        #: latest enabling time seen so far per task
        enable_time = {t.dtask_id: 0.0 for t in graph.detailed_tasks}

        outgoing: Dict[int, List] = {}
        for msg in graph.messages:
            outgoing.setdefault(msg.src_dtask_id, []).append(msg)
        # level-broadcast dedup: several tasks can pend on one msg id
        waiting_on_msg: Dict[int, List[int]] = {}
        for t in graph.detailed_tasks:
            for mid in t.pending_msgs:
                waiting_on_msg.setdefault(mid, []).append(t.dtask_id)

        rank_free: Dict[int, float] = {}
        ready_heap: List[Tuple[float, int]] = []  # (ready_time, dtask_id)
        for t in graph.detailed_tasks:
            rank_free.setdefault(t.rank, 0.0)
            if remaining_deps[t.dtask_id] == 0 and remaining_msgs[t.dtask_id] == 0:
                heapq.heappush(ready_heap, (0.0, t.dtask_id))

        traces: List[TaskTrace] = []
        flows: List[MsgFlow] = []
        ranks = {r: RankTimeline(rank=r) for r in rank_free}
        done = 0
        total = len(by_id)
        msg_count = 0
        msg_bytes = 0

        def enable(tid: int, when: float) -> None:
            enable_time[tid] = max(enable_time[tid], when)
            if remaining_deps[tid] == 0 and remaining_msgs[tid] == 0:
                heapq.heappush(ready_heap, (enable_time[tid], tid))

        while ready_heap:
            ready, tid = heapq.heappop(ready_heap)
            dt = by_id[tid]
            cost = float(task_cost(dt))
            if cost < 0:
                raise SchedulerError(f"negative cost for {dt}")
            start = max(ready, rank_free[dt.rank])
            end = start + cost
            rank_free[dt.rank] = end
            tl = ranks[dt.rank]
            tl.busy += cost
            tl.finish = max(tl.finish, end)
            tl.tasks += 1
            traces.append(
                TaskTrace(tid, dt.task.name, dt.rank, ready, start, end)
            )
            done += 1

            for dep in dt.dependents:
                if dep in remaining_deps:
                    remaining_deps[dep] -= 1
                    enable(dep, end)
            for msg in outgoing.get(tid, ()):
                arrival = end + self.network.ptp_time(msg.nbytes)
                msg_count += 1
                msg_bytes += msg.nbytes
                for k, waiter in enumerate(waiting_on_msg.get(msg.msg_id, ())):
                    remaining_msgs[waiter] -= 1
                    enable(waiter, arrival)
                    flows.append(
                        MsgFlow(
                            flow_id=f"{msg.msg_id}.{k}",
                            msg_id=msg.msg_id,
                            src_dtask_id=tid,
                            dst_dtask_id=waiter,
                            src_rank=dt.rank,
                            dst_rank=by_id[waiter].rank,
                            depart=end,
                            arrive=arrival,
                            nbytes=msg.nbytes,
                        )
                    )

        if done != total:
            raise SchedulerError(
                f"trace simulation stalled: {total - done} tasks never ready "
                f"(cyclic or unsatisfied message dependencies)"
            )
        makespan = max((t.end for t in traces), default=0.0)
        return TraceReport(
            makespan=makespan,
            traces=traces,
            ranks=ranks,
            messages_sent=msg_count,
            message_bytes=msg_bytes,
            flows=flows,
        )


def rmcrt_task_cost(
    problem,
    patch_size: int,
    gpu=None,
    ray_model=None,
) -> TaskCost:
    """A cost function for the 3-task RMCRT pipeline, priced on the
    K20X model: trace tasks pay the occupancy-dependent kernel, the
    property init and coarsen tasks pay bandwidth-bound field sweeps."""
    from repro.dessim.costmodel import RayWorkModel
    from repro.machine.gpu import K20X

    gpu = gpu if gpu is not None else K20X
    ray_model = ray_model if ray_model is not None else RayWorkModel()
    steps = ray_model.steps_per_ray(problem, patch_size)
    cells = problem.cells_per_patch(patch_size)
    kernel = gpu.kernel_time(cells, problem.rays_per_cell, steps)
    sweep_rate = gpu.spec.node_memory_bandwidth / 8.0  # cells/s, host side

    def cost(dt: DetailedTask) -> float:
        if dt.task.name.endswith("trace"):
            return kernel
        return 3.0 * dt.patch.num_cells / sweep_rate  # three property arrays

    return cost
