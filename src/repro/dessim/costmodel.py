"""The RMCRT communication/computation cost model (paper ref [5]).

Quantifies, for a 2-level benchmark problem on R GPUs/nodes:

* **message counts and volumes** — fine-level halo exchanges (6 faces
  per patch, an off-node fraction set by SFC locality) plus the coarse
  radiation level, which every node must receive nearly in full
  (patch-granular sends from each coarse patch's owner: this is the
  communication the data-onion design reduced from the single-level
  O(N_total^2) replication),
* **local communication time** — the per-rank cost of posting/testing/
  processing those messages through a request pool, with the locked
  pool paying serialization plus an O(outstanding^2) re-scan penalty
  (Testsome over a vector under one lock) and the wait-free pool
  scaling across threads: the Table I mechanism, with per-message
  constants calibratable from the measured thread benchmark (E1b),
* **ray-march work** — expected DDA steps per ray: a fine-level chord
  across the patch ROI plus a coarse-level chord across the domain,
  attenuation-shortened.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ReproError

BYTES_PER_VAR = 8
NUM_PROPERTY_VARS = 3  # abskg, sigma_t4, cell_type


@dataclass(frozen=True)
class RMCRTProblem:
    """A 2-level Burns & Christon benchmark configuration."""

    fine_cells: int
    refinement_ratio: int = 4
    rays_per_cell: int = 100
    halo: int = 4
    #: coarse radiation level decomposition (per dimension); the coarse
    #: mesh is small, so Uintah tiles it with few large patches and the
    #: runtime batches all of a rank-pair's dependencies into one MPI
    #: message — each rank receives the coarse level as O(tens) of
    #: batched messages, not thousands
    coarse_patches_per_dim: int = 4

    def __post_init__(self) -> None:
        if self.fine_cells % self.refinement_ratio:
            raise ReproError("refinement ratio must divide fine_cells")

    @property
    def coarse_cells(self) -> int:
        return self.fine_cells // self.refinement_ratio

    @property
    def total_cells(self) -> int:
        return self.fine_cells ** 3 + self.coarse_cells ** 3

    def num_patches(self, patch_size: int) -> int:
        if self.fine_cells % patch_size:
            raise ReproError(
                f"patch size {patch_size} does not divide fine mesh {self.fine_cells}"
            )
        return (self.fine_cells // patch_size) ** 3

    def cells_per_patch(self, patch_size: int) -> int:
        return patch_size ** 3

    @property
    def num_coarse_patches(self) -> int:
        return self.coarse_patches_per_dim ** 3

    @property
    def coarse_level_bytes(self) -> int:
        return self.coarse_cells ** 3 * NUM_PROPERTY_VARS * BYTES_PER_VAR

    @property
    def fine_level_bytes(self) -> int:
        return self.fine_cells ** 3 * NUM_PROPERTY_VARS * BYTES_PER_VAR

    def patch_roi_bytes(self, patch_size: int) -> int:
        """Fine data a patch task holds: patch + halo ring, 3 vars."""
        side = patch_size + 2 * self.halo
        return side ** 3 * NUM_PROPERTY_VARS * BYTES_PER_VAR

    def patch_divq_bytes(self, patch_size: int) -> int:
        return patch_size ** 3 * BYTES_PER_VAR


#: Figure 2's problem: 256^3 fine + 64^3 coarse = 17.04M cells
MEDIUM = RMCRTProblem(fine_cells=256)
#: Figure 3's / Table I's problem: 512^3 + 128^3 = 136.31M cells
LARGE = RMCRTProblem(fine_cells=512)


# ----------------------------------------------------------------------
# communication structure
# ----------------------------------------------------------------------
@dataclass
class CommStats:
    halo_messages: int
    halo_bytes: int
    coarse_messages: int
    coarse_bytes: int

    @property
    def total_messages(self) -> int:
        return self.halo_messages + self.coarse_messages

    @property
    def total_bytes(self) -> int:
        return self.halo_bytes + self.coarse_bytes


def multi_level_comm_per_rank(
    problem: RMCRTProblem,
    patch_size: int,
    num_ranks: int,
    offnode_halo_fraction: float = 0.5,
) -> CommStats:
    """Per-rank communication for one radiation timestep, 2-level.

    Message counts include both the receives and the matching posted
    sends a rank processes (the Figure 1 "local communication" counts
    posting by individual threads): 2 per off-node halo face. The
    coarse level arrives as per-source-rank batched messages — at most
    one per coarse patch owner.
    """
    if num_ranks < 1:
        raise ReproError("num_ranks must be >= 1")
    patches = problem.num_patches(patch_size)
    ppr = math.ceil(patches / min(num_ranks, patches))
    face_bytes = patch_size ** 2 * problem.halo * NUM_PROPERTY_VARS * BYTES_PER_VAR
    halo_msgs = round(2 * ppr * 6 * offnode_halo_fraction)
    halo_bytes = (halo_msgs // 2) * face_bytes

    cp = problem.num_coarse_patches
    remote_frac = (num_ranks - 1) / num_ranks
    coarse_msgs = round(min(cp, num_ranks - 1) * remote_frac) if num_ranks > 1 else 0
    coarse_bytes = round(problem.coarse_level_bytes * remote_frac)
    return CommStats(halo_msgs, halo_bytes, coarse_msgs, coarse_bytes)


def single_level_comm_per_rank(
    problem: RMCRTProblem, patch_size: int, num_ranks: int
) -> CommStats:
    """The pre-AMR scheme: every rank receives the whole fine domain.

    Aggregate traffic is R x V_fine — the O(N_total^2)-type blowup (as
    ranks scale with problem size) that made single-level RMCRT
    intractable beyond 256^3 (paper Section III.C).
    """
    patches = problem.num_patches(patch_size)
    remote_frac = (num_ranks - 1) / num_ranks
    msgs = round(patches * remote_frac)
    vol = round(problem.fine_level_bytes * remote_frac)
    return CommStats(halo_messages=0, halo_bytes=0, coarse_messages=msgs, coarse_bytes=vol)


# ----------------------------------------------------------------------
# local communication (request-pool) time — the Table I mechanism
# ----------------------------------------------------------------------
@dataclass
class PoolTimingModel:
    """Per-message local-communication costs for the two pool designs.

    Each processed message pays an MPI cost (post + match + buffer
    copy, ``t_mpi_per_msg``) that neither design avoids, plus a
    bookkeeping cost: with the wait-free pool the bookkeeping is a
    single uncontended slot claim (``t_book_waitfree``); under the
    locked vector all ``threads`` threads serialize on the mutex, so
    the effective bookkeeping cost inflates by roughly
    ``contention_efficiency * threads`` — which is why the paper's
    speedups sit in the 2-4.5x band rather than at 16x (most of the
    per-message cost is MPI work the pool redesign cannot remove).
    On top sits a fixed per-timestep scan floor (the repeated
    Testsome/find_any passes while messages are still in flight).

    The default constants put the LARGE-problem, 262k-patch Table I
    configuration in the paper's measured range; the E1b thread
    microbenchmark re-derives the bookkeeping ratio on the host machine.
    """

    t_mpi_per_msg: float = 0.25e-3
    t_book_waitfree: float = 0.15e-3
    contention_efficiency: float = 0.7
    t_scan_floor_locked: float = 0.22
    t_scan_floor_waitfree: float = 0.125

    def t_book_locked(self, threads: int) -> float:
        return self.t_book_waitfree * max(1.0, self.contention_efficiency * threads)

    def local_comm_time(self, num_messages: int, pool: str, threads: int = 16) -> float:
        if num_messages < 0 or threads < 1:
            raise ReproError("bad local-comm parameters")
        n = num_messages
        if pool == "waitfree":
            return n * (self.t_mpi_per_msg + self.t_book_waitfree) + self.t_scan_floor_waitfree
        if pool == "locked":
            return (
                n * (self.t_mpi_per_msg + self.t_book_locked(threads))
                + self.t_scan_floor_locked
            )
        raise ReproError(f"unknown pool {pool!r}")


# ----------------------------------------------------------------------
# ray-march work
# ----------------------------------------------------------------------
@dataclass
class RayWorkModel:
    """Expected DDA cell-steps per ray for the 2-level algorithm.

    ``roi_mode='fixed'`` (default, matching the production Uintah
    configuration with a fixed physical ROI extent): every ray marches
    the same fine-level distance regardless of patch size, so patch
    size affects only occupancy and per-patch overheads — the regime in
    which "larger patches provide more work per GPU" wins outright.
    ``roi_mode='patch_based'`` ties the fine march to patch + 2*halo
    (the ROI our executable kernels use), making small patches do less
    fine-level work per ray.
    """

    #: mean chord factor: E[cells crossed] ~ chord_factor * region side
    chord_factor: float = 1.4
    #: attenuation shortens the coarse march (rays die before crossing)
    coarse_survival: float = 0.6
    roi_mode: str = "fixed"
    fixed_roi_cells: int = 48

    def steps_per_ray(self, problem: RMCRTProblem, patch_size: int) -> float:
        if self.roi_mode == "fixed":
            roi_side = min(problem.fine_cells, self.fixed_roi_cells)
        elif self.roi_mode == "patch_based":
            roi_side = min(problem.fine_cells, patch_size + 2 * problem.halo)
        else:
            raise ReproError(f"unknown roi_mode {self.roi_mode!r}")
        fine_steps = self.chord_factor * roi_side
        coarse_steps = (
            self.chord_factor * problem.coarse_cells * self.coarse_survival
        )
        return fine_steps + coarse_steps

    def steps_per_ray_single_level(self, problem: RMCRTProblem) -> float:
        return self.chord_factor * problem.fine_cells * self.coarse_survival
