"""The Titan cluster simulator: one RMCRT radiation timestep, end to
end, for any GPU count — the engine behind the Figure 1/2/3 and
Table I reproductions.

Per timestep and rank, the simulator prices:

1. **communication** — coarse-level gather + fine halo exchange over
   the Gemini model, plus the *local* message-processing time through
   the selected request pool (Section IV.A),
2. **the node GPU pipeline** — per-patch H2D of the fine ROI, the
   shared (or, in the legacy ablation, per-task) coarse level-DB
   upload, the traversal kernel at patch-size-dependent occupancy, and
   D2H of del.q — scheduled onto the node's two copy engines and the
   GPU with :class:`~repro.dessim.engine.SlotResource` list scheduling
   so over-decomposition genuinely overlaps copies with kernels.

All ranks are statistically identical under the regular decomposition,
so the timestep time is the worst rank's: the one holding
ceil(patches/R) patches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.dessim.costmodel import (
    BYTES_PER_VAR,
    CommStats,
    LARGE,
    MEDIUM,
    NUM_PROPERTY_VARS,
    PoolTimingModel,
    RayWorkModel,
    RMCRTProblem,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)
from repro.dessim.engine import SlotResource
from repro.machine.cpu import OPTERON_6274
from repro.machine.gpu import GPUModel, K20X
from repro.machine.network import GEMINI, NetworkModel
from repro.machine.titan import TITAN, TitanSpec
from repro.util.errors import ReproError


@dataclass
class SimOptions:
    pool: str = "waitfree"            #: 'waitfree' | 'locked'
    device: str = "gpu"               #: 'gpu' (K20X pipeline) | 'cpu' (16 cores)
    threads: int = 16
    use_level_db: bool = True
    max_in_flight: int = 8            #: patch tasks resident on the GPU
    offnode_halo_fraction: float = 0.5
    overlap_comm_compute: float = 0.3  #: fraction of network time hidden
    #: device memory held by everything that is not this radiation
    #: solve: the CFD state, DataWarehouse variable versions, runtime
    #: buffers. The paper ran "at the edge of the nodal memory
    #: footprint"; this is what made redundant coarse-level copies
    #: fatal on a 6 GB K20X.
    base_device_bytes: int = int(3.5 * 1024 ** 3)


@dataclass
class TimestepBreakdown:
    num_gpus: int
    active_gpus: int
    patches_per_gpu: int
    network_time: float
    local_comm_time: float
    h2d_bytes: int
    pipeline_time: float
    kernel_time: float
    total_time: float
    gpu_memory_bytes: int
    gpu_memory_ok: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.num_gpus} GPUs: total {self.total_time:.3f}s "
            f"(net {self.network_time:.3f}, local {self.local_comm_time:.3f}, "
            f"pipeline {self.pipeline_time:.3f})"
        )


class ClusterSimulator:
    """Prices RMCRT timesteps on a Titan-like machine."""

    def __init__(
        self,
        spec: TitanSpec = TITAN,
        network: Optional[NetworkModel] = None,
        gpu: Optional[GPUModel] = None,
        pool_model: Optional[PoolTimingModel] = None,
        ray_model: Optional[RayWorkModel] = None,
    ) -> None:
        self.spec = spec
        self.network = network if network is not None else GEMINI
        self.gpu = gpu if gpu is not None else K20X
        self.cpu = OPTERON_6274
        self.pool_model = pool_model if pool_model is not None else PoolTimingModel()
        self.ray_model = ray_model if ray_model is not None else RayWorkModel()

    # ------------------------------------------------------------------
    def node_pipeline(
        self,
        problem: RMCRTProblem,
        patch_size: int,
        patches_on_node: int,
        options: SimOptions,
    ) -> Dict[str, float]:
        """List-schedule one node's patch tasks onto its copy engines
        and GPU; returns makespan, pure-kernel sum, H2D bytes and the
        device memory high-water estimate."""
        if patches_on_node < 1:
            return {"makespan": 0.0, "kernel": 0.0, "h2d_bytes": 0, "memory": 0}
        h2d = SlotResource(1, "h2d-engine")
        d2h = SlotResource(1, "d2h-engine")
        gpu = SlotResource(1, "gpu")

        roi_bytes = problem.patch_roi_bytes(patch_size)
        divq_bytes = problem.patch_divq_bytes(patch_size)
        level_bytes = problem.coarse_level_bytes
        steps = self.ray_model.steps_per_ray(problem, patch_size)
        cells = problem.cells_per_patch(patch_size)
        kernel = self.gpu.kernel_time(cells, problem.rays_per_cell, steps)

        # coarse level: one shared upload with the level DB, else one per task
        level_ready = 0.0
        kernel_sum = 0.0
        if options.use_level_db:
            _, level_ready = h2d.request(0.0, self.gpu.h2d_time(level_bytes))
            h2d_bytes = level_bytes + patches_on_node * roi_bytes
        else:
            h2d_bytes = patches_on_node * (level_bytes + roi_bytes)

        in_flight_release: List[float] = []
        for p in range(patches_on_node):
            # bounded residency: wait for an earlier task's D2H if the
            # device already holds max_in_flight patch working sets
            gate = 0.0
            if len(in_flight_release) >= options.max_in_flight:
                gate = in_flight_release[p - options.max_in_flight]
            per_task_level = 0.0 if options.use_level_db else self.gpu.h2d_time(level_bytes)
            _, up_done = h2d.request(gate, self.gpu.h2d_time(roi_bytes) + per_task_level)
            ready = max(up_done, level_ready)
            _, k_done = gpu.request(ready, kernel)
            kernel_sum += kernel
            _, down_done = d2h.request(k_done, self.gpu.d2h_time(divq_bytes))
            in_flight_release.append(down_done)

        resident = min(patches_on_node, options.max_in_flight)
        memory = options.base_device_bytes
        memory += roi_bytes * resident + divq_bytes * resident
        memory += level_bytes if options.use_level_db else level_bytes * resident
        return {
            "makespan": max(r.makespan for r in (h2d, d2h, gpu)),
            "kernel": kernel_sum,
            "h2d_bytes": h2d_bytes,
            "memory": memory,
        }

    def node_pipeline_cpu(
        self,
        problem: RMCRTProblem,
        patch_size: int,
        patches_on_node: int,
        options: SimOptions,
    ) -> Dict[str, float]:
        """The [5]-style CPU configuration: patch tasks list-scheduled
        across the node's cores, no PCIe stage, host memory only."""
        if patches_on_node < 1:
            return {"makespan": 0.0, "kernel": 0.0, "h2d_bytes": 0, "memory": 0}
        cores = SlotResource(self.cpu.cores, "cores")
        steps = self.ray_model.steps_per_ray(problem, patch_size)
        cells = problem.cells_per_patch(patch_size)
        task = self.cpu.task_time(cells, problem.rays_per_cell, steps)
        for _ in range(patches_on_node):
            cores.request(0.0, task)
        roi_bytes = problem.patch_roi_bytes(patch_size)
        memory = patches_on_node * roi_bytes + problem.coarse_level_bytes
        return {
            "makespan": cores.makespan,
            "kernel": task * patches_on_node,
            "h2d_bytes": 0,
            "memory": memory,
        }

    # ------------------------------------------------------------------
    def simulate_timestep(
        self,
        problem: RMCRTProblem,
        patch_size: int,
        num_gpus: int,
        options: Optional[SimOptions] = None,
    ) -> TimestepBreakdown:
        options = options if options is not None else SimOptions()
        max_gpus = self.spec.num_nodes * self.spec.gpus_per_node
        if num_gpus < 1 or num_gpus > max_gpus:
            raise ReproError(
                f"num_gpus must be in [1, {max_gpus}], got {num_gpus}"
            )
        patches = problem.num_patches(patch_size)
        active = min(num_gpus, patches)
        ppg = math.ceil(patches / active)

        comm = multi_level_comm_per_rank(
            problem, patch_size, active, options.offnode_halo_fraction
        )
        net_time = (
            comm.total_messages * self.network.latency_s
            + comm.total_bytes / self.network.effective_bandwidth
        )
        local_time = self.pool_model.local_comm_time(
            comm.total_messages, options.pool, options.threads
        )

        if options.device == "gpu":
            pipe = self.node_pipeline(problem, patch_size, ppg, options)
            memory_cap = self.spec.gpu_memory_bytes
        elif options.device == "cpu":
            pipe = self.node_pipeline_cpu(problem, patch_size, ppg, options)
            memory_cap = self.spec.host_memory_bytes
        else:
            raise ReproError(f"unknown device {options.device!r}")
        exposed_net = net_time * (1.0 - options.overlap_comm_compute)
        total = exposed_net + local_time + pipe["makespan"]
        return TimestepBreakdown(
            num_gpus=num_gpus,
            active_gpus=active,
            patches_per_gpu=ppg,
            network_time=net_time,
            local_comm_time=local_time,
            h2d_bytes=int(pipe["h2d_bytes"]),
            pipeline_time=pipe["makespan"],
            kernel_time=pipe["kernel"],
            total_time=total,
            gpu_memory_bytes=int(pipe["memory"]),
            gpu_memory_ok=pipe["memory"] <= memory_cap,
        )


# ----------------------------------------------------------------------
# strong scaling studies (Figures 2 and 3)
# ----------------------------------------------------------------------
@dataclass
class ScalingSeries:
    patch_size: int
    gpu_counts: List[int]
    times: List[float]
    breakdowns: List[TimestepBreakdown] = field(default_factory=list)

    def efficiency(self, from_gpus: int, to_gpus: int) -> float:
        """Parallel efficiency per the paper's eq. (3), relative form:
        E = T(n0) * n0 / (n1 * T(n1))."""
        try:
            i = self.gpu_counts.index(from_gpus)
            j = self.gpu_counts.index(to_gpus)
        except ValueError:
            raise ReproError(
                f"gpu counts {from_gpus}/{to_gpus} not in series {self.gpu_counts}"
            ) from None
        return (self.times[i] * from_gpus) / (to_gpus * self.times[j])


@dataclass
class CampaignEvent:
    """One priced occurrence in a campaign timeline."""

    step: int
    kind: str       #: 'checkpoint' | 'rank-death'
    gpus: int       #: GPU count after the event
    cost_s: float   #: wall-clock the event added
    detail: str = ""


@dataclass
class CampaignReport:
    """Failure-aware campaign accounting (the dessim counterpart of a
    ``repro resilience drill``: same fault-plan vocabulary, priced on
    the machine model instead of executed)."""

    num_steps: int
    initial_gpus: int
    final_gpus: int
    checkpoints: int
    deaths: int
    compute_s: float      #: productive timestep time
    checkpoint_s: float   #: PFS checkpoint writes
    recovery_s: float     #: restart costs (job relaunch + restore read)
    rework_s: float       #: steps recomputed because they post-dated
                          #: the last checkpoint
    events: List[CampaignEvent] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.compute_s + self.checkpoint_s + self.recovery_s + self.rework_s

    @property
    def overhead_fraction(self) -> float:
        """Fraction of wall-clock not spent on first-attempt science."""
        total = self.total_s
        return 0.0 if total <= 0 else 1.0 - self.compute_s / total

    def as_dict(self) -> dict:
        return {
            "num_steps": self.num_steps,
            "initial_gpus": self.initial_gpus,
            "final_gpus": self.final_gpus,
            "checkpoints": self.checkpoints,
            "deaths": self.deaths,
            "compute_s": self.compute_s,
            "checkpoint_s": self.checkpoint_s,
            "recovery_s": self.recovery_s,
            "rework_s": self.rework_s,
            "total_s": self.total_s,
            "overhead_fraction": self.overhead_fraction,
            "events": [
                {
                    "step": e.step, "kind": e.kind, "gpus": e.gpus,
                    "cost_s": e.cost_s, "detail": e.detail,
                }
                for e in self.events
            ],
        }


def simulate_campaign(
    problem: RMCRTProblem,
    patch_size: int,
    num_gpus: int,
    num_steps: int,
    fault_plan=None,
    checkpoint_every: int = 2,
    pfs_bandwidth: float = 50e9,
    restart_cost_s: float = 30.0,
    simulator: Optional[ClusterSimulator] = None,
    options: Optional[SimOptions] = None,
) -> CampaignReport:
    """Price a many-timestep campaign under failures and checkpoints.

    Each step costs one :meth:`ClusterSimulator.simulate_timestep` at
    the *current* GPU count (deaths shrink the machine, so survivors
    carry more patches — the dessim analogue of
    ``grid.loadbalance.reassign_on_failure``). Checkpoints cost the
    state volume over ``pfs_bandwidth``. A ``fault_plan`` rank death
    costs ``restart_cost_s`` (relaunch + restore read) plus recomputing
    every step since the last checkpoint at the reduced GPU count.
    """
    if num_steps < 1:
        raise ReproError(f"num_steps must be >= 1, got {num_steps}")
    if checkpoint_every < 1:
        raise ReproError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if pfs_bandwidth <= 0:
        raise ReproError("pfs_bandwidth must be positive")
    sim = simulator if simulator is not None else ClusterSimulator()

    # checkpointed state: every fine patch's property ROI + del.q plus
    # one coarse-level copy — the same fields repro.resilience snapshots
    patches = problem.num_patches(patch_size)
    state_bytes = (
        patches * (problem.patch_roi_bytes(patch_size)
                   + problem.patch_divq_bytes(patch_size))
        + problem.coarse_level_bytes
    )
    checkpoint_cost = state_bytes / pfs_bandwidth

    step_cost_cache: Dict[int, float] = {}

    def step_cost(gpus: int) -> float:
        if gpus not in step_cost_cache:
            step_cost_cache[gpus] = sim.simulate_timestep(
                problem, patch_size, gpus, options
            ).total_time
        return step_cost_cache[gpus]

    report = CampaignReport(
        num_steps=num_steps, initial_gpus=num_gpus, final_gpus=num_gpus,
        checkpoints=0, deaths=0, compute_s=0.0, checkpoint_s=0.0,
        recovery_s=0.0, rework_s=0.0,
    )
    gpus = num_gpus
    last_checkpoint = 0
    for step in range(1, num_steps + 1):
        deaths = fault_plan.rank_deaths_at(step) if fault_plan is not None else []
        deaths = [d for d in deaths if gpus > 1]
        if deaths:
            gpus = max(1, gpus - len(deaths))
            rework_steps = (step - 1) - last_checkpoint
            rework = rework_steps * step_cost(gpus)
            report.deaths += len(deaths)
            report.recovery_s += restart_cost_s
            report.rework_s += rework
            report.events.append(
                CampaignEvent(
                    step=step, kind="rank-death", gpus=gpus,
                    cost_s=restart_cost_s + rework,
                    detail=f"{len(deaths)} death(s); {rework_steps} step(s) replayed",
                )
            )
        report.compute_s += step_cost(gpus)
        if step % checkpoint_every == 0:
            report.checkpoints += 1
            report.checkpoint_s += checkpoint_cost
            last_checkpoint = step
            report.events.append(
                CampaignEvent(
                    step=step, kind="checkpoint", gpus=gpus,
                    cost_s=checkpoint_cost,
                    detail=f"{state_bytes / 1024 ** 3:.2f} GiB",
                )
            )
    report.final_gpus = gpus
    return report


class StrongScalingStudy:
    """Sweep GPU counts for several patch sizes on one problem."""

    def __init__(self, simulator: Optional[ClusterSimulator] = None) -> None:
        self.sim = simulator if simulator is not None else ClusterSimulator()

    def run(
        self,
        problem: RMCRTProblem,
        patch_sizes: List[int],
        gpu_counts: List[int],
        options: Optional[SimOptions] = None,
    ) -> Dict[int, ScalingSeries]:
        out: Dict[int, ScalingSeries] = {}
        for ps in patch_sizes:
            max_gpus = problem.num_patches(ps)
            counts = [g for g in gpu_counts if g <= max_gpus]
            series = ScalingSeries(patch_size=ps, gpu_counts=counts, times=[])
            for g in counts:
                b = self.sim.simulate_timestep(problem, ps, g, options)
                series.times.append(b.total_time)
                series.breakdowns.append(b)
            out[ps] = series
        return out
