"""Shared utilities: timers, seeded RNG streams, error types.

These are deliberately dependency-light; every other subpackage may
import from here, but :mod:`repro.util` imports nothing from the rest
of the library.
"""

from repro.util.timing import Timer, TimerRegistry, format_seconds
from repro.util.rng import RandomStreams, spawn_stream
from repro.util.errors import (
    ReproError,
    GridError,
    SchedulerError,
    DataWarehouseError,
    AllocationError,
    CommError,
    PerfError,
)

__all__ = [
    "Timer",
    "TimerRegistry",
    "format_seconds",
    "RandomStreams",
    "spawn_stream",
    "ReproError",
    "GridError",
    "SchedulerError",
    "DataWarehouseError",
    "AllocationError",
    "CommError",
    "PerfError",
]
