"""Shared utilities: timers, seeded RNG streams, atomic writes, error types.

These are deliberately dependency-light; every other subpackage may
import from here, but :mod:`repro.util` imports nothing from the rest
of the library.
"""

from repro.util.timing import Timer, TimerRegistry, format_seconds
from repro.util.rng import RandomStreams, spawn_stream
from repro.util.atomic import (
    FS_EFFECTS,
    atomic_save_array,
    atomic_savez,
    atomic_write_bytes,
    atomic_write_text,
    register_fs_effect,
)
from repro.util.errors import (
    ReproError,
    GridError,
    SchedulerError,
    DataWarehouseError,
    AllocationError,
    CommError,
    PerfError,
    ResilienceError,
    InjectedFault,
)

__all__ = [
    "Timer",
    "TimerRegistry",
    "format_seconds",
    "RandomStreams",
    "spawn_stream",
    "FS_EFFECTS",
    "atomic_save_array",
    "atomic_savez",
    "atomic_write_bytes",
    "atomic_write_text",
    "register_fs_effect",
    "ReproError",
    "GridError",
    "SchedulerError",
    "DataWarehouseError",
    "AllocationError",
    "CommError",
    "PerfError",
    "ResilienceError",
    "InjectedFault",
]
