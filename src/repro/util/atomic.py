"""Atomic file writes: tmp-file + ``os.replace``.

Every on-disk artifact a crashed writer could tear — archive step
directories, service cache entries, spool results, checkpoint chunks
and manifests — goes through these helpers so readers only ever see
absent-or-complete files, never half-written ones. ``os.replace`` is
atomic on POSIX within a filesystem; the temp file lives next to its
target so the rename never crosses a mount.

The restore path (:mod:`repro.resilience`) still *verifies* content
hashes — atomicity protects against our own interrupted writers, not
against bit rot or truncation by the storage layer — but corruption
should never be self-inflicted.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]

#: Effect-annotation registry: function name -> declarative filesystem
#: effect summary, consumed by the crash-consistency analyzer
#: (:mod:`repro.check.fs`). Each entry declares that calling the named
#: function performs an *atomic publication* to the path passed at
#: positional index ``path_arg`` — the analyzer treats such calls as
#: safe publications instead of raw writes, which is what lets it
#: verify interprocedurally that every final-path write in the tree
#: goes through this module. Out-of-tree helpers that wrap these
#: primitives can add themselves via :func:`register_fs_effect`.
FS_EFFECTS: Dict[str, dict] = {
    "atomic_write_bytes": {"effect": "atomic_publish", "path_arg": 0},
    "atomic_write_text": {"effect": "atomic_publish", "path_arg": 0},
    "atomic_savez": {"effect": "atomic_publish", "path_arg": 0},
    "atomic_save_array": {"effect": "atomic_publish", "path_arg": 0},
    "append_jsonl": {"effect": "append", "path_arg": 0},
}


def register_fs_effect(name: str, effect: str = "atomic_publish",
                       path_arg: int = 0) -> None:
    """Declare *name* as an atomicity-preserving filesystem helper.

    ``effect`` is the analyzer-visible effect kind (``atomic_publish``
    is the only kind with special meaning today); ``path_arg`` the
    positional index of the published path.
    """
    FS_EFFECTS[name] = {"effect": effect, "path_arg": int(path_arg)}


def _tmp_path(target: Path) -> Path:
    """Hidden sibling keeping the full suffix chain (``np.savez`` and
    friends append their extension to names that lack it)."""
    return target.parent / f".{target.name}.tmp"


def atomic_write_bytes(path: PathLike, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically; returns the final path."""
    target = Path(path)
    tmp = _tmp_path(target)
    try:
        tmp.write_bytes(data)
        os.replace(tmp, target)
    except Exception:
        # a failed write or rename must not leave the hidden temp file
        # behind — readers never see it, but leaked temps accumulate
        # and a re-run would silently overwrite a half-written one
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return target


def atomic_write_text(path: PathLike, text: str) -> Path:
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_savez(path: PathLike, **arrays) -> Path:
    """``np.savez_compressed`` with atomic publication.

    Serializes to memory first, so the temp file needs no ``.npz``
    suffix bookkeeping and a crash mid-serialization leaves nothing
    behind at all.
    """
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return atomic_write_bytes(path, buf.getvalue())


def atomic_save_array(path: PathLike, array: np.ndarray) -> Path:
    """One array in ``.npy`` format, written atomically."""
    buf = io.BytesIO()
    np.save(buf, array, allow_pickle=False)
    return atomic_write_bytes(path, buf.getvalue())


def append_jsonl(path: PathLike, record: dict) -> Path:
    """Append one JSON record as a single newline-terminated line.

    Appends are not replace-atomic, but a single ``write`` of one
    short line means the only failure mode a crash can leave behind is
    a torn *final* line — which every JSONL reader in this tree
    (tsdb scan, event log) already tolerates and heals. POSIX O_APPEND
    keeps concurrent appenders from interleaving within a line for
    writes this small.
    """
    target = Path(path)
    line = json.dumps(record, sort_keys=True) + "\n"
    with target.open("a", encoding="utf-8") as fh:
        fh.write(line)
        fh.flush()
    return target
