"""Lightweight wall-clock timers.

Uintah reports per-component times (task exec, MPI wait, local comm);
:class:`TimerRegistry` mirrors that: named accumulating timers that the
schedulers and benchmark harnesses share.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


def format_seconds(seconds: float) -> str:
    """Render a duration compactly (``1.234 s``, ``12.3 ms``, ``4.5 us``)."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.3f} us"


@dataclass
class Timer:
    """An accumulating stopwatch.

    Supports use as a context manager::

        t = Timer("kernel")
        with t:
            run_kernel()
        print(t.elapsed)
    """

    name: str = ""
    elapsed: float = 0.0
    count: int = 0
    _start: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._start is not None:
            raise RuntimeError(f"Timer {self.name!r} already running")
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError(f"Timer {self.name!r} not running")
        dt = time.perf_counter() - self._start
        self._start = None
        self.elapsed += dt
        self.count += 1
        return dt

    def reset(self) -> None:
        self.elapsed = 0.0
        self.count = 0
        self._start = None

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def current(self) -> float:
        """Accumulated time *including* any in-flight interval — what a
        report taken mid-measurement should show, where :attr:`elapsed`
        alone would silently drop the running portion."""
        if self._start is not None:
            return self.elapsed + (time.perf_counter() - self._start)
        return self.elapsed

    @property
    def mean(self) -> float:
        """Mean duration per start/stop cycle (0 if never stopped)."""
        return self.elapsed / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (running timers report partial time)."""
        return {
            "name": self.name,
            "elapsed": self.current,
            "count": self.count,
            "mean": self.mean,
            "running": self.running,
        }

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class TimerRegistry:
    """A named collection of :class:`Timer` objects.

    ``registry("taskexec")`` returns (creating on first use) the timer
    with that name, so call sites never need to pre-declare timers.
    """

    def __init__(self) -> None:
        self._timers: Dict[str, Timer] = {}

    def __call__(self, name: str) -> Timer:
        timer = self._timers.get(name)
        if timer is None:
            timer = Timer(name)
            self._timers[name] = timer
        return timer

    def __contains__(self, name: str) -> bool:
        return name in self._timers

    def __iter__(self):
        return iter(self._timers.values())

    def __len__(self) -> int:
        return len(self._timers)

    def reset(self) -> None:
        for timer in self._timers.values():
            timer.reset()

    def as_dict(self) -> Dict[str, dict]:
        """All timers as JSON-ready snapshots, keyed by name."""
        return {name: t.as_dict() for name, t in self._timers.items()}

    def publish_metrics(self, registry, **labels) -> None:
        """Publish every timer into a metrics registry: elapsed seconds
        as a gauge (partial time included), cycles as a gauge."""
        for timer in self:
            registry.gauge(
                f"timer.{timer.name}.seconds", **labels
            ).set(timer.current)
            registry.gauge(f"timer.{timer.name}.count", **labels).set(timer.count)

    def report(self) -> str:
        """A fixed-width table of all timers, longest first. Running
        timers contribute their partially-elapsed interval."""
        rows = sorted(self._timers.values(), key=lambda t: -t.current)
        lines = [f"{'timer':<28}{'total':>14}{'count':>10}{'mean':>14}"]
        for t in rows:
            total = format_seconds(t.current) + ("*" if t.running else "")
            lines.append(
                f"{t.name:<28}{total:>14}"
                f"{t.count:>10}{format_seconds(t.mean):>14}"
            )
        return "\n".join(lines)
