"""Exception hierarchy for the repro library.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without masking genuine programming errors
(``TypeError``, ``KeyError`` from user code, ...).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GridError(ReproError):
    """Invalid grid, level, patch, or region construction/query."""


class SchedulerError(ReproError):
    """Task-graph compilation or execution failure (cycles, deadlock,
    missing dependencies, double-computes)."""


class DataWarehouseError(ReproError):
    """Missing or conflicting variables in a DataWarehouse, ghost-cell
    requests that cannot be satisfied, or GPU DW capacity exhaustion."""


class AllocationError(ReproError):
    """Out-of-memory or invalid free in the simulated allocators."""


class CommError(ReproError):
    """Simulated-MPI misuse: unmatched request handles, double
    completion, messages to unknown ranks."""


class PerfError(ReproError):
    """Observability misuse: mismatched span begin/end pairs, metric
    kind conflicts, invalid counter updates."""


class ServiceError(ReproError):
    """Radiation-service failures: queue overload (backpressure),
    expired request deadlines, worker solves that exhausted their
    retries, or submission to a stopped service."""


class ResilienceError(ReproError):
    """Checkpoint/restart failures: corrupt or torn checkpoint chunks,
    manifests that fail their integrity hash, restores with no valid
    checkpoint to fall back to, or recovery with no surviving ranks."""


class InjectedFault(ResilienceError):
    """A deliberate failure raised by a :class:`~repro.resilience.faultplan.FaultPlan`.

    Distinguishable from organic failures so drills can assert that the
    failure they recovered from was the one they injected."""
