"""Reproducible, decomposition-independent random streams.

RMCRT results must not depend on how the domain is decomposed into
patches or on execution order, so each (patch, purpose) pair gets its
own counter-derived stream, exactly as Uintah seeds its per-patch
Mersenne twisters from patch IDs.

NumPy's ``SeedSequence.spawn`` machinery provides statistically
independent child streams; we key children on stable integer tuples so
the same patch always receives the same stream regardless of which rank
owns it.

Key components may also be *names* (non-numeric identifier strings):
subsystems that need their own stream family — the spectral sampler's
per-patch wavelength draws must not perturb the ray stream, or the
gray and spectral solvers would stop being bit-comparable — register a
purpose name instead of inventing a magic integer. Names hash to
stable 62-bit integers (SHA-256 based, so identical across processes
and PYTHONHASHSEED values) and round-trip through
:meth:`RandomStreams.get_state` / :meth:`RandomStreams.set_state` the
same way integer keys do.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Tuple, Union

import numpy as np

from repro.util.errors import ReproError

#: a key component: a plain integer, or a non-numeric identifier string
KeyPart = Union[int, str]


def _name_to_int(name: str) -> int:
    """Stable 62-bit integer for a stream name (process-independent)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 2


def _canonical_key(key: Iterable[KeyPart]) -> Tuple[KeyPart, ...]:
    """Validate and normalise a key path.

    Integers pass through; strings must be non-numeric identifiers so
    the serialized form (``str(part)``) parses back unambiguously —
    a name like ``"7"`` would collide with the integer key 7.
    """
    out = []
    for part in key:
        if isinstance(part, str):
            if not part or part.lstrip("-").isdigit():
                raise ReproError(
                    f"stream name {part!r} is empty or numeric; names must "
                    f"be identifiers so state keys stay unambiguous"
                )
            out.append(part)
        else:
            out.append(int(part))
    return tuple(out)


def spawn_stream(seed: int, *key: KeyPart) -> np.random.Generator:
    """A generator derived from ``seed`` and a key path of integers
    and/or names.

    The same (seed, key) always yields the same stream; distinct keys
    yield independent streams.
    """
    spawn_key = tuple(
        _name_to_int(k) if isinstance(k, str) else int(k)
        for k in _canonical_key(key)
    )
    ss = np.random.SeedSequence(entropy=seed, spawn_key=spawn_key)
    return np.random.Generator(np.random.Philox(ss))


class RandomStreams:
    """A cache of per-key generators sharing one root seed.

    >>> streams = RandomStreams(seed=42)
    >>> g = streams.for_patch(patch_id=7)
    >>> g2 = streams.for_patch(patch_id=7)   # same object
    >>> g is g2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[Tuple[KeyPart, ...], np.random.Generator] = {}

    def get(self, *key: KeyPart) -> np.random.Generator:
        k = _canonical_key(key)
        gen = self._cache.get(k)
        if gen is None:
            gen = spawn_stream(self.seed, *k)
            self._cache[k] = gen
        return gen

    def for_patch(self, patch_id: int, purpose: int = 0) -> np.random.Generator:
        """Stream for a patch; ``purpose`` separates uses (rays vs noise)."""
        return self.get(purpose, patch_id)

    def named(self, name: str, *key: KeyPart) -> np.random.Generator:
        """Stream for a named purpose (e.g. ``named("spectral", patch_id)``).

        Named streams are independent of every integer-keyed stream, so
        a subsystem can add its own draws without shifting anyone
        else's sequence — the spectral sampler's requirement.
        """
        return self.get(name, *key)

    def fresh(self, *key: KeyPart) -> np.random.Generator:
        """A new generator for (seed, key), bypassing the cache.

        Used by tests that need to replay a stream from its start.
        """
        return spawn_stream(self.seed, *key)

    def invalidate(self, keys: Iterable[Tuple[KeyPart, ...]] = ()) -> None:
        if not keys:
            self._cache.clear()
        else:
            for k in keys:
                self._cache.pop(_canonical_key(k), None)

    # ------------------------------------------------------------------
    # state capture / restore (checkpoint support)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-able snapshot of every live stream's position.

        Checkpoint/restart needs streams to resume mid-sequence: a
        restored run must draw the exact values the uninterrupted run
        would have drawn. Keys that were never requested are absent —
        they spawn fresh on first use, exactly as in the original run.
        Named components serialize as their (non-numeric) identifier
        text, integers as digits, so the two never collide on restore.
        """
        return {
            "seed": self.seed,
            "streams": {
                ",".join(str(x) for x in key): _state_to_jsonable(
                    gen.bit_generator.state
                )
                for key, gen in self._cache.items()
            },
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (inverse round-trip).

        Replaces the stream cache: snapshotted streams resume at their
        saved positions, everything else is forgotten (and will respawn
        deterministically from the root seed).
        """
        if int(state.get("seed", self.seed)) != self.seed:
            raise ReproError(
                f"RNG state was captured with seed {state['seed']}, this "
                f"RandomStreams has seed {self.seed}"
            )
        self._cache.clear()
        for key_s, gen_state in state.get("streams", {}).items():
            key = _parse_state_key(key_s)
            gen = spawn_stream(self.seed, *key)
            gen.bit_generator.state = _state_from_jsonable(gen_state)
            self._cache[key] = gen


def _parse_state_key(key_s: str) -> Tuple[KeyPart, ...]:
    """Inverse of the ``",".join(str(part))`` state-key serialization:
    digit runs (with optional sign) are integer components, everything
    else is a stream name."""
    if not key_s:
        return ()
    return tuple(
        int(part) if part.lstrip("-").isdigit() else part
        for part in key_s.split(",")
    )


def _state_to_jsonable(state):
    """BitGenerator state -> pure-python JSON-able structure."""
    if isinstance(state, dict):
        return {k: _state_to_jsonable(v) for k, v in state.items()}
    if isinstance(state, np.ndarray):
        return {"__ndarray__": state.tolist(), "dtype": str(state.dtype)}
    if isinstance(state, np.integer):
        return int(state)
    return state


def _state_from_jsonable(state):
    if isinstance(state, dict):
        if "__ndarray__" in state:
            return np.asarray(state["__ndarray__"], dtype=state["dtype"])
        return {k: _state_from_jsonable(v) for k, v in state.items()}
    return state
