"""Reproducible, decomposition-independent random streams.

RMCRT results must not depend on how the domain is decomposed into
patches or on execution order, so each (patch, purpose) pair gets its
own counter-derived stream, exactly as Uintah seeds its per-patch
Mersenne twisters from patch IDs.

NumPy's ``SeedSequence.spawn`` machinery provides statistically
independent child streams; we key children on stable integer tuples so
the same patch always receives the same stream regardless of which rank
owns it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.util.errors import ReproError


def spawn_stream(seed: int, *key: int) -> np.random.Generator:
    """A generator derived from ``seed`` and an integer key path.

    The same (seed, key) always yields the same stream; distinct keys
    yield independent streams.
    """
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(int(k) for k in key))
    return np.random.Generator(np.random.Philox(ss))


class RandomStreams:
    """A cache of per-key generators sharing one root seed.

    >>> streams = RandomStreams(seed=42)
    >>> g = streams.for_patch(patch_id=7)
    >>> g2 = streams.for_patch(patch_id=7)   # same object
    >>> g is g2
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._cache: Dict[Tuple[int, ...], np.random.Generator] = {}

    def get(self, *key: int) -> np.random.Generator:
        k = tuple(int(x) for x in key)
        gen = self._cache.get(k)
        if gen is None:
            gen = spawn_stream(self.seed, *k)
            self._cache[k] = gen
        return gen

    def for_patch(self, patch_id: int, purpose: int = 0) -> np.random.Generator:
        """Stream for a patch; ``purpose`` separates uses (rays vs noise)."""
        return self.get(purpose, patch_id)

    def fresh(self, *key: int) -> np.random.Generator:
        """A new generator for (seed, key), bypassing the cache.

        Used by tests that need to replay a stream from its start.
        """
        return spawn_stream(self.seed, *key)

    def invalidate(self, keys: Iterable[Tuple[int, ...]] = ()) -> None:
        if not keys:
            self._cache.clear()
        else:
            for k in keys:
                self._cache.pop(tuple(int(x) for x in k), None)

    # ------------------------------------------------------------------
    # state capture / restore (checkpoint support)
    # ------------------------------------------------------------------
    def get_state(self) -> dict:
        """JSON-able snapshot of every live stream's position.

        Checkpoint/restart needs streams to resume mid-sequence: a
        restored run must draw the exact values the uninterrupted run
        would have drawn. Keys that were never requested are absent —
        they spawn fresh on first use, exactly as in the original run.
        """
        return {
            "seed": self.seed,
            "streams": {
                ",".join(str(x) for x in key): _state_to_jsonable(
                    gen.bit_generator.state
                )
                for key, gen in self._cache.items()
            },
        }

    def set_state(self, state: dict) -> None:
        """Restore a :meth:`get_state` snapshot (inverse round-trip).

        Replaces the stream cache: snapshotted streams resume at their
        saved positions, everything else is forgotten (and will respawn
        deterministically from the root seed).
        """
        if int(state.get("seed", self.seed)) != self.seed:
            raise ReproError(
                f"RNG state was captured with seed {state['seed']}, this "
                f"RandomStreams has seed {self.seed}"
            )
        self._cache.clear()
        for key_s, gen_state in state.get("streams", {}).items():
            key = tuple(int(x) for x in key_s.split(",")) if key_s else ()
            gen = spawn_stream(self.seed, *key)
            gen.bit_generator.state = _state_from_jsonable(gen_state)
            self._cache[key] = gen


def _state_to_jsonable(state):
    """BitGenerator state -> pure-python JSON-able structure."""
    if isinstance(state, dict):
        return {k: _state_to_jsonable(v) for k, v in state.items()}
    if isinstance(state, np.ndarray):
        return {"__ndarray__": state.tolist(), "dtype": str(state.dtype)}
    if isinstance(state, np.integer):
        return int(state)
    return state


def _state_from_jsonable(state):
    if isinstance(state, dict):
        if "__ndarray__" in state:
            return np.asarray(state["__ndarray__"], dtype=state["dtype"])
        return {k: _state_from_jsonable(v) for k, v in state.items()}
    return state
