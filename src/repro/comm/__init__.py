"""MPI-request management data structures (paper Section IV.A):
the legacy mutex-protected vector (with its historical race available
for demonstration) and the wait-free slot pool that replaced it."""

from repro.comm.request import BufferLedger, CommNode
from repro.comm.stats import PoolStats
from repro.comm.pool_locked import LockedVectorCommPool
from repro.comm.pool_waitfree import ProtectedIterator, WaitFreeCommPool
from repro.comm.driver import (
    WorkloadResult,
    drain_before_snapshot,
    make_pool,
    run_comm_workload,
)

__all__ = [
    "BufferLedger",
    "CommNode",
    "PoolStats",
    "LockedVectorCommPool",
    "WaitFreeCommPool",
    "ProtectedIterator",
    "WorkloadResult",
    "drain_before_snapshot",
    "make_pool",
    "run_comm_workload",
]
