"""The wait-free MPI-request pool — contribution (iii) and Algorithm 1.

The redesign that replaced the locked vector: a pool of fixed slots,
each guarded by its own atomic flag. A thread claims a slot with a
single try-lock (the Python analogue of a C++11 atomic
test-and-set); a claimed slot hands back a **unique protected
iterator** — a move-only handle that is the *only* way to touch the
referenced record, so no two threads can ever dereference the same
node. Requests are then tested individually (``MPI_Test``) instead of
collectively (``MPI_Testsome``), which is what makes per-slot exclusion
sufficient.

Progress properties (Herlihy & Shavit's taxonomy, paper ref [10]):
no operation ever blocks waiting for another thread — a try-lock that
fails simply moves to the next slot — so every thread completes every
pass in a bounded number of steps regardless of what other threads do.
Capacity growth appends a new chunk under a short lock; Uintah sizes
the pool a priori so growth is off the steady-state path, and so do we.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, List, Optional

from repro.comm.request import BufferLedger, CommNode
from repro.comm.stats import PoolStats, PoolStatsMixin
from repro.util.errors import CommError


class _Slot:
    __slots__ = ("flag", "occupied", "value")

    def __init__(self) -> None:
        self.flag = threading.Lock()  # try-acquire == atomic TAS
        self.occupied = False
        self.value: Optional[CommNode] = None


class ProtectedIterator:
    """Unique handle to one claimed slot.

    Move-only semantics, enforced at runtime: the handle is unusable
    after :meth:`erase` or :meth:`release`, and it cannot be copied
    into validity — holding it *is* holding the slot's flag.
    """

    def __init__(self, slot: _Slot) -> None:
        self._slot: Optional[_Slot] = slot

    @property
    def valid(self) -> bool:
        return self._slot is not None

    @property
    def value(self) -> CommNode:
        if self._slot is None:
            raise CommError("use of released/erased iterator")
        return self._slot.value  # type: ignore[return-value]

    def erase(self) -> None:
        """Remove the record from the pool and release the slot."""
        if self._slot is None:
            raise CommError("double erase/release of iterator")
        self._slot.value = None
        self._slot.occupied = False
        self._slot.flag.release()
        self._slot = None

    def release(self) -> None:
        """Release the slot leaving the record in the pool."""
        if self._slot is None:
            raise CommError("double erase/release of iterator")
        self._slot.flag.release()
        self._slot = None

    def __enter__(self) -> "ProtectedIterator":
        return self

    def __exit__(self, *exc) -> None:
        if self._slot is not None:
            self.release()

    def __bool__(self) -> bool:
        return self.valid


class WaitFreeCommPool(PoolStatsMixin):
    """Slot pool with per-slot atomic claim flags (Algorithm 1)."""

    def __init__(
        self,
        capacity: int = 256,
        ledger: Optional[BufferLedger] = None,
        growth_chunk: int = 256,
    ) -> None:
        if capacity < 1:
            raise CommError("capacity must be >= 1")
        self.ledger = ledger if ledger is not None else BufferLedger()
        self._slots: List[_Slot] = [_Slot() for _ in range(capacity)]
        self._growth_chunk = int(growth_chunk)
        self._growth_lock = threading.Lock()
        self.processed = 0
        self.stats = PoolStats()
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Occupied-slot count (racy snapshot, diagnostics only)."""
        return sum(1 for s in self._slots if s.occupied)

    @property
    def capacity(self) -> int:
        return len(self._slots)

    def _grow(self) -> None:
        with self._growth_lock:
            self._slots = self._slots + [_Slot() for _ in range(self._growth_chunk)]
        with self._stats_lock:
            self.stats.grows += 1

    # ------------------------------------------------------------------
    # pool operations
    # ------------------------------------------------------------------
    def insert(self, node: CommNode) -> None:
        """Claim any empty slot and store the record."""
        claim_failures = 0
        try:
            while True:
                for slot in self._slots:
                    if slot.occupied:
                        continue
                    if slot.flag.acquire(blocking=False):
                        if not slot.occupied:
                            slot.value = node
                            slot.occupied = True
                            slot.flag.release()
                            return
                        slot.flag.release()
                    else:
                        claim_failures += 1
                self._grow()
        finally:
            if claim_failures:
                with self._stats_lock:
                    self.stats.claim_failures += claim_failures

    def find_any(
        self, predicate: Callable[[CommNode], bool]
    ) -> Optional[ProtectedIterator]:
        """Claim the first unclaimed, occupied slot whose record
        satisfies ``predicate``; None if no such slot right now.

        The predicate runs *while holding the slot's flag* (so testing
        the request is race-free), exactly Algorithm 1's
        ``ready_request`` lambda.
        """
        scans = 0
        claim_failures = 0
        try:
            for slot in self._slots:
                if not slot.occupied:
                    continue
                scans += 1
                if slot.flag.acquire(blocking=False):
                    if slot.occupied and predicate(slot.value):
                        return ProtectedIterator(slot)
                    slot.flag.release()
                else:
                    claim_failures += 1
            return None
        finally:
            with self._stats_lock:
                self.stats.slot_scans += scans
                self.stats.claim_failures += claim_failures

    def unsafe_iter_values(self) -> Iterator[CommNode]:
        """Snapshot iteration for tests/diagnostics (no exclusion)."""
        for slot in self._slots:
            if slot.occupied and slot.value is not None:
                yield slot.value

    # ------------------------------------------------------------------
    # Algorithm 1, lines 1-9
    # ------------------------------------------------------------------
    def process_ready(self) -> int:
        """Find-and-finish completed requests until none are claimable.

        Each iteration is the paper's Algorithm 1: find_any(ready) ->
        finishCommunication -> erase. Returns how many THIS call
        processed."""
        done = 0
        traced = 0
        while True:
            it = self.find_any(lambda node: node.test())
            if it is None:
                break
            node = it.value
            self.ledger.allocate(node.nbytes)
            if not node.finish_communication(self.ledger):
                raise CommError(
                    "wait-free pool double-processed a record — unique "
                    "iterator invariant violated"
                )
            if node.ctx is not None:
                traced += 1
            it.erase()
            done += 1
        with self._stats_lock:
            self.processed += done
            self.stats.retired += done
            self.stats.ctx_propagated += traced
            self.stats.passes += 1
        return done

    def drain(self, budget: Optional[int] = None) -> int:
        total = 0
        passes = 0
        while len(self) > 0:
            total += self.process_ready()
            passes += 1
            if budget is not None and passes >= budget:
                break
        return total
