"""The legacy request container: a mutex-protected vector scanned with
MPI_Testsome (paper Section IV.A).

Two operating modes reproduce the paper's before-story:

* ``safe`` (default): every scan holds the vector's lock end-to-end.
  Correct, but the lock serializes all threads — the contention the
  wait-free pool removes, measured in E1b.
* ``racy``: the historical bug. The completion scan runs under a
  *read* view (no exclusion), so multiple threads can observe the same
  request complete, each allocates a receive buffer, and only the
  first to claim the record processes it and frees — every loser's
  buffer leaks, exactly the failure mode that killed large RMCRT runs
  with out-of-memory errors. The ledger counts the leaked buffers.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional

from repro.comm.request import BufferLedger, CommNode
from repro.comm.stats import PoolStats, PoolStatsMixin
from repro.util.errors import CommError


class LockedVectorCommPool(PoolStatsMixin):
    """Vector of :class:`CommNode` + one Pthread-style lock.

    ``unpack_delay`` models the work a real receive path does between
    observing completion and claiming the record: allocating the
    receive buffer and unpacking the message into it. In native Uintah
    that window is real CPU time; under the Python GIL it must be made
    explicit or the race it opens (racy mode) is un-observably narrow.
    """

    def __init__(
        self,
        mode: str = "safe",
        ledger: Optional[BufferLedger] = None,
        unpack_delay: float = 0.0,
    ) -> None:
        if mode not in ("safe", "racy"):
            raise CommError(f"mode must be 'safe' or 'racy', got {mode!r}")
        self.mode = mode
        self.unpack_delay = float(unpack_delay)
        self.ledger = ledger if ledger is not None else BufferLedger()
        self._nodes: List[CommNode] = []
        self._lock = threading.Lock()
        self.processed = 0
        self.races_observed = 0
        self.stats = PoolStats()
        self._stats_lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._nodes)

    def insert(self, node: CommNode) -> None:
        with self._lock:
            self._nodes.append(node)

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def process_ready(self) -> int:
        """One Testsome-style pass: find completed requests, allocate
        their buffers, run callbacks, erase. Returns how many THIS call
        processed."""
        if self.mode == "safe":
            return self._process_safe()
        return self._process_racy()

    def _process_safe(self) -> int:
        done = 0
        scanned = 0
        traced = 0
        with self._lock:
            remaining: List[CommNode] = []
            for node in self._nodes:
                scanned += 1
                if node.test():
                    # allocate the receive buffer, process, release
                    self.ledger.allocate(node.nbytes)
                    if node.finish_communication(self.ledger):
                        done += 1
                        if node.ctx is not None:
                            traced += 1
                    remaining.append(None)  # erased
                else:
                    remaining.append(node)
            self._nodes = [n for n in remaining if n is not None]
        with self._stats_lock:
            self.processed += done
            self.stats.retired += done
            self.stats.ctx_propagated += traced
            self.stats.slot_scans += scanned
            self.stats.passes += 1
        return done

    def _process_racy(self) -> int:
        # the bug: the completion scan takes a *snapshot* without
        # exclusion, so concurrent callers race on the same records
        snapshot = list(self._nodes)  # unsynchronized read view
        done = 0
        with self._stats_lock:
            self.stats.slot_scans += len(snapshot)
            self.stats.passes += 1
        for node in snapshot:
            if node.test():
                # every racing thread allocates a buffer for the message
                # and unpacks into it...
                self.ledger.allocate(node.nbytes)
                if self.unpack_delay > 0:
                    time.sleep(self.unpack_delay)
                else:
                    time.sleep(0)  # yield: the unpack window
                if node.finish_communication(self.ledger):
                    done += 1
                    if node.ctx is not None:
                        with self._stats_lock:
                            self.stats.ctx_propagated += 1
                    with self._lock:
                        try:
                            self._nodes.remove(node)
                        except ValueError:
                            pass
                else:
                    # ...but only the winner frees it: this thread's
                    # allocation is leaked (ledger.outstanding grows)
                    with self._stats_lock:
                        self.races_observed += 1
                        self.stats.claim_failures += 1
        with self._stats_lock:
            self.processed += done
            self.stats.retired += done
        return done

    def drain(self, budget: Optional[int] = None) -> int:
        """Process until the pool is empty (or ``budget`` passes)."""
        total = 0
        passes = 0
        while len(self) > 0:
            total += self.process_ready()
            passes += 1
            if budget is not None and passes >= budget:
                break
        return total
