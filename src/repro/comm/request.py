"""Communication records and buffer accounting.

A :class:`CommNode` is Uintah's ``CommunicationRecord``: one
outstanding MPI request plus the buffer that must be released exactly
once when the message is processed. The :class:`BufferLedger` is the
measurable stand-in for nodal heap usage — the Section IV.A race
manifested as buffers allocated by losing threads and never freed, and
the ledger makes that leak (and double-frees) directly observable.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional



class BufferLedger:
    """Thread-safe allocation accounting for message buffers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.allocated = 0
        self.freed = 0
        self.bytes_allocated = 0
        self.bytes_freed = 0
        self.double_frees = 0

    def allocate(self, nbytes: int) -> None:
        with self._lock:
            self.allocated += 1
            self.bytes_allocated += int(nbytes)

    def free(self, nbytes: int) -> None:
        with self._lock:
            self.freed += 1
            self.bytes_freed += int(nbytes)
            if self.freed > self.allocated:
                self.double_frees += 1

    @property
    def outstanding(self) -> int:
        """Buffers allocated but never freed — the leak counter."""
        with self._lock:
            return self.allocated - self.freed

    @property
    def outstanding_bytes(self) -> int:
        with self._lock:
            return self.bytes_allocated - self.bytes_freed


class CommNode:
    """One outstanding request + its completion callback.

    ``finish_communication`` is idempotent-checked: a second invocation
    (the double-processing race) raises unless ``count_only`` is set,
    in which case it increments ``double_processed`` on the ledger owner
    — the mode the legacy racy pool uses so the experiment can count
    races instead of crashing.
    """

    def __init__(
        self,
        request,  # a repro.runtime.mpi Request (duck-typed: .test()/.data)
        nbytes: int = 0,
        on_finish: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.request = request
        self.nbytes = int(nbytes)
        self.on_finish = on_finish
        self._finished = False
        self._finish_lock = threading.Lock()

    def test(self) -> bool:
        """Non-destructive completion poll (cf. MPI_Test)."""
        return self.request.test()

    def finish_communication(self, ledger: Optional[BufferLedger] = None) -> bool:
        """Process the completed message exactly once.

        Returns True if this call did the processing, False if another
        thread already had (the double-processing the wait-free pool
        makes impossible by construction).
        """
        with self._finish_lock:
            if self._finished:
                return False
            self._finished = True
        if self.on_finish is not None:
            self.on_finish(self.request.data)
        if ledger is not None:
            ledger.free(self.nbytes)
        return True

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def ctx(self):
        """The sender's causal trace context, if the underlying request
        carried one (see :mod:`repro.perf.tracectx`); pools count these
        so causal coverage is measurable."""
        return getattr(self.request, "ctx", None)
