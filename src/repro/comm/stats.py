"""Request-pool operation counters shared by both pool designs.

The paper's message-leak bug class (Section IV.A) is invisible in
aggregate timings but obvious in operation counts: a healthy pool
retires every inserted request exactly once, and the wait-free design
trades a few extra slot scans and failed claim attempts for lock
freedom. Both pools accumulate these counts locally (plain integer
adds — nothing on the hot path touches a registry) and flush them into
a :class:`~repro.perf.metrics.MetricsRegistry` via
:meth:`PoolStatsMixin.publish_metrics`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass
class PoolStats:
    #: slots/records examined while scanning for work
    slot_scans: int = 0
    #: CAS-style claim attempts that lost (try-lock failed, or a racy
    #: completion lost the finish race)
    claim_failures: int = 0
    #: requests fully processed and erased from the pool
    retired: int = 0
    #: process_ready() passes
    passes: int = 0
    #: capacity growth events
    grows: int = 0
    #: retired requests whose message carried a causal trace context
    #: (repro.perf.tracectx) — the pool's causal-coverage measure
    ctx_propagated: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class PoolStatsMixin:
    """Publishing surface for pools that keep a :class:`PoolStats`.

    ``publish_metrics`` is flush-style: it increments counters by the
    delta since the previous publish, so periodic publishing (e.g. once
    per rank loop) never double-counts.
    """

    stats: PoolStats
    ledger = None

    def publish_metrics(self, registry, **labels) -> None:
        snapshot = self.stats.as_dict()
        last = getattr(self, "_published_stats", None) or {}
        for name, value in snapshot.items():
            delta = value - last.get(name, 0)
            if delta:
                registry.counter(f"comm.pool.{name}", **labels).inc(delta)
        self._published_stats = snapshot
        if self.ledger is not None:
            registry.gauge("comm.pool.outstanding_buffers", **labels).set(
                self.ledger.outstanding
            )
            registry.gauge("comm.pool.outstanding_bytes", **labels).set(
                self.ledger.outstanding_bytes
            )
