"""Multi-threaded workload driver for the request pools.

Reproduces the paper's operating conditions in miniature: many threads
of one node concurrently processing the node's outstanding MPI
receives (MPI_THREAD_MULTIPLE style). Used by the correctness tests
(no leaks, no double-processing under real concurrency) and by the
E1b contention benchmark that calibrates the Table I model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Union

from repro.comm.pool_locked import LockedVectorCommPool
from repro.comm.pool_waitfree import WaitFreeCommPool
from repro.comm.request import BufferLedger, CommNode
from repro.perf import tracectx
from repro.runtime.mpi import SimMPI
from repro.util.errors import CommError

Pool = Union[LockedVectorCommPool, WaitFreeCommPool]


@dataclass
class WorkloadResult:
    wall_time: float
    processed: int
    expected: int
    leaked_buffers: int
    leaked_bytes: int
    races_observed: int
    num_threads: int

    @property
    def throughput(self) -> float:
        """Messages processed per second across all threads."""
        return self.processed / self.wall_time if self.wall_time > 0 else float("inf")

    @property
    def clean(self) -> bool:
        """All messages processed exactly once, every buffer freed."""
        return (
            self.processed == self.expected
            and self.leaked_buffers == 0
            and self.races_observed == 0
        )


def make_pool(kind: str, ledger: BufferLedger = None, unpack_delay: float = 1e-5) -> Pool:
    """'waitfree', 'locked' (safe), or 'legacy-racy'.

    ``unpack_delay`` (legacy-racy only) is the modelled buffer-unpack
    window; see :class:`LockedVectorCommPool`.
    """
    ledger = ledger if ledger is not None else BufferLedger()
    if kind == "waitfree":
        return WaitFreeCommPool(ledger=ledger)
    if kind == "locked":
        return LockedVectorCommPool(mode="safe", ledger=ledger)
    if kind == "legacy-racy":
        return LockedVectorCommPool(mode="racy", ledger=ledger, unpack_delay=unpack_delay)
    raise CommError(f"unknown pool kind {kind!r}")


def drain_before_snapshot(
    fabric: SimMPI,
    timeout_s: float = 5.0,
    poll_s: float = 0.001,
) -> float:
    """Wait until ``fabric`` is quiescent; returns the wait in seconds.

    Checkpoints must capture a *consistent* cut: no message may be
    in flight — staged in the fabric, unmatched at a rank, or sitting
    in a posted receive — when state is snapshotted, or the restored
    run would silently drop it. Callers take the snapshot (or declare
    the barrier reached) only after this returns; a fabric that never
    drains within ``timeout_s`` raises :class:`CommError` rather than
    blocking a checkpoint cadence forever.
    """
    if timeout_s <= 0:
        raise CommError(f"timeout_s must be positive, got {timeout_s}")
    start = time.perf_counter()
    while not fabric.quiescent():
        if time.perf_counter() - start > timeout_s:
            raise CommError(
                f"comm fabric still has in-flight traffic after {timeout_s}s; "
                f"cannot take a consistent snapshot"
            )
        time.sleep(poll_s)
    return time.perf_counter() - start


def run_comm_workload(
    pool: Pool,
    num_threads: int = 4,
    num_messages: int = 256,
    payload_bytes: int = 1024,
    overlapped_sends: bool = True,
) -> WorkloadResult:
    """Drive ``num_messages`` through ``pool`` with ``num_threads``
    concurrent processors.

    All receives are posted (and their records inserted) up front; a
    dedicated sender thread then feeds matching messages while the
    worker threads hammer ``process_ready`` — completions arrive *while*
    threads scan, which is what exposes the legacy race. With
    ``overlapped_sends=False`` all messages complete before processing
    starts (pure contention measurement, no in-flight racing window).
    """
    if num_threads < 1 or num_messages < 1:
        raise CommError("need >= 1 thread and >= 1 message")
    fabric = SimMPI(2)
    recv_comm = fabric.comm(0)
    send_comm = fabric.comm(1)
    payload = bytes(payload_bytes)

    for i in range(num_messages):
        req = recv_comm.irecv(source=1, tag=i)
        pool.insert(CommNode(req, nbytes=payload_bytes))

    def sender() -> None:
        # one causal trace for the whole workload, a child hop per
        # message — lets the pools' ctx_propagated counter verify that
        # every retired request still carried its sender's context
        root = tracectx.new_trace()
        for i in range(num_messages):
            with tracectx.use(root.child()):
                send_comm.isend(payload, dest=0, tag=i)

    def worker() -> None:
        while pool.processed < num_messages:
            if pool.process_ready() == 0:
                time.sleep(0)  # yield; nothing claimable right now

    send_thread = threading.Thread(target=sender, name="sender")
    workers = [
        threading.Thread(target=worker, name=f"worker-{t}") for t in range(num_threads)
    ]

    start = time.perf_counter()
    if overlapped_sends:
        for w in workers:
            w.start()
        send_thread.start()
    else:
        send_thread.start()
        send_thread.join()
        for w in workers:
            w.start()
    if overlapped_sends:
        send_thread.join()
    for w in workers:
        w.join()
    wall = time.perf_counter() - start

    races = getattr(pool, "races_observed", 0)
    return WorkloadResult(
        wall_time=wall,
        processed=pool.processed,
        expected=num_messages,
        leaked_buffers=pool.ledger.outstanding,
        leaked_bytes=pool.ledger.outstanding_bytes,
        races_observed=races,
        num_threads=num_threads,
    )
