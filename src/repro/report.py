"""One-command reproduction report.

``python -m repro.report`` regenerates every paper table and figure on
the cluster model and prints them next to the published values — the
quick-look counterpart to the full benchmark suite (which additionally
runs the live-measurement experiments E1b/E4/E5/E6/E7-executable).
"""

from __future__ import annotations

import sys

from repro.dessim import (
    LARGE,
    MEDIUM,
    ClusterSimulator,
    SimOptions,
    StrongScalingStudy,
    multi_level_comm_per_rank,
    single_level_comm_per_rank,
)

#: Table I as printed in the paper
PAPER_TABLE1 = {
    512: (6.25, 1.42, 4.40),
    1024: (2.68, 1.18, 2.27),
    2048: (1.26, 0.54, 2.33),
    4096: (0.89, 0.36, 2.47),
    8192: (0.79, 0.30, 2.63),
    16384: (0.73, 0.23, 3.17),
}

PATCH_SIZES = [16, 32, 64]


def report_table1(sim: ClusterSimulator, out) -> None:
    print("=" * 72, file=out)
    print("Table I / Figure 1 — local communication time (s)", file=out)
    print("=" * 72, file=out)
    print(f"{'nodes':>6} | {'model before':>12} {'model after':>11} {'model x':>8}"
          f" | {'paper before':>12} {'paper after':>11} {'paper x':>8}", file=out)
    for nodes, (pb, pa, px) in PAPER_TABLE1.items():
        before = sim.simulate_timestep(
            LARGE, 8, nodes, SimOptions(pool="locked")
        ).local_comm_time
        after = sim.simulate_timestep(
            LARGE, 8, nodes, SimOptions(pool="waitfree")
        ).local_comm_time
        print(f"{nodes:>6} | {before:>12.3f} {after:>11.3f} {before / after:>8.2f}"
              f" | {pb:>12.2f} {pa:>11.2f} {px:>8.2f}", file=out)
    print(file=out)


def report_figure(sim: ClusterSimulator, problem, title, gpu_counts, out,
                  quote_efficiencies=False) -> None:
    print("=" * 72, file=out)
    print(title, file=out)
    print("=" * 72, file=out)
    study = StrongScalingStudy(sim)
    results = study.run(problem, PATCH_SIZES, gpu_counts)
    print(f"{'GPUs':>7} |" + "".join(f"  patch {ps}^3" for ps in PATCH_SIZES),
          file=out)
    for g in gpu_counts:
        row = f"{g:>7} |"
        for ps in PATCH_SIZES:
            s = results[ps]
            row += (
                f" {s.times[s.gpu_counts.index(g)]:10.3f}"
                if g in s.gpu_counts
                else f" {'--':>10}"
            )
        print(row, file=out)
    if quote_efficiencies:
        s16 = results[16]
        print(f"\nefficiency 4096->8192:  {s16.efficiency(4096, 8192):6.1%} "
              f"(paper: 96%)", file=out)
        print(f"efficiency 4096->16384: {s16.efficiency(4096, 16384):6.1%} "
              f"(paper: 89%)", file=out)
    print(file=out)


def report_comm_volume(out) -> None:
    print("=" * 72, file=out)
    print("E8 — per-rank communication: single-level vs data onion (LARGE)",
          file=out)
    print("=" * 72, file=out)
    print(f"{'ranks':>7} {'single-level':>14} {'2-level':>10} {'reduction':>10}",
          file=out)
    for ranks in (512, 2048, 8192, 16384):
        s = single_level_comm_per_rank(LARGE, 16, ranks).total_bytes
        m = multi_level_comm_per_rank(LARGE, 16, ranks).total_bytes
        print(f"{ranks:>7} {s / 1e9:>12.2f}GB {m / 1e6:>8.1f}MB {s / m:>9.0f}x",
              file=out)
    print(file=out)


def main(out=None) -> int:
    out = out if out is not None else sys.stdout
    sim = ClusterSimulator()
    print("\nRMCRT @ 16,384 GPUs — reproduction report "
          "(model values; see EXPERIMENTS.md)\n", file=out)
    report_table1(sim, out)
    report_figure(
        sim, MEDIUM,
        "Figure 2 — MEDIUM strong scaling (256^3 + 64^3, s/timestep)",
        [16, 64, 256, 1024, 4096], out,
    )
    report_figure(
        sim, LARGE,
        "Figure 3 — LARGE strong scaling (512^3 + 128^3, s/timestep)",
        [64, 256, 1024, 4096, 8192, 16384], out,
        quote_efficiencies=True,
    )
    report_comm_volume(out)
    print("Run `pytest benchmarks/ --benchmark-only -s` for the measured "
          "experiments\n(E1b pools, E4 convergence, E5 kernels, E6 "
          "allocators, E7 level DB, E11 traces).", file=out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
