"""repro — reproduction of Humphrey et al., "Radiative Heat Transfer
Calculation on 16384 GPUs Using a Reverse Monte Carlo Ray Tracing
Approach with Adaptive Mesh Refinement" (IPDPS 2016).

The package implements the paper's multi-level RMCRT radiation solver
together with every substrate it runs on: a structured-AMR grid, a
Uintah-style DataWarehouse and task runtime (host + GPU), simulated
MPI, the wait-free request pool and custom allocators of Section IV,
an ARCHES-lite CFD host code, and a discrete-event Titan cluster
simulator used to regenerate the paper's scaling studies.

Quickstart::

    from repro import RMCRTSolver
    result = RMCRTSolver(rays_per_cell=25).solve_benchmark(resolution=41)
    print(result.divq.mean())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

# grid substrate
from repro.grid import (
    Box,
    CellType,
    Grid,
    Level,
    LoadBalancer,
    Patch,
    build_single_level_grid,
    build_two_level_grid,
    decompose_level,
)

# radiation physics
from repro.radiation import (
    BurnsChristonBenchmark,
    DiscreteOrdinates,
    RadiativeProperties,
    SpectralBand,
    SpectralRMCRT,
    product_quadrature,
    sn_level_symmetric,
)

# the paper's core contribution
from repro.core import (
    DistributedRMCRT,
    LevelFields,
    MultiLevelRMCRT,
    RMCRTResult,
    RMCRTSolver,
    SingleLevelRMCRT,
    VirtualRadiometer,
    benchmark_property_init,
)

# runtime
from repro.runtime import (
    Computes,
    DistributedScheduler,
    GPUScheduler,
    MultiGPUScheduler,
    Requires,
    SerialScheduler,
    SimMPI,
    SimulationController,
    Task,
    TaskGraph,
    ThreadedScheduler,
)

# DataWarehouse
from repro.dw import (
    CCVariable,
    DataArchive,
    DataWarehouse,
    GPUDataWarehouse,
    VarLabel,
)

# Section IV infrastructure
from repro.comm import LockedVectorCommPool, WaitFreeCommPool
from repro.memory import ArenaAllocator, SimulatedHeap, SizeClassPool

# machine + cluster simulation
from repro.machine import GPUModel, NetworkModel, TitanSpec, TITAN
from repro.dessim import (
    ClusterSimulator,
    LARGE,
    MEDIUM,
    RMCRTProblem,
    SimOptions,
    StrongScalingStudy,
)

# ARCHES-lite
from repro.arches import BoilerScenario, CoupledSimulation, EnergyEquation

# solve-as-a-service layer
from repro.service import (
    RadiationService,
    ServiceClient,
    ServiceConfig,
    SolveRequest,
    SolveResult,
)
from repro.ups import parse_ups, run_ups, scene_fingerprint, spec_fingerprint

__all__ = [
    "__version__",
    # grid
    "Box",
    "CellType",
    "Grid",
    "Level",
    "LoadBalancer",
    "Patch",
    "build_single_level_grid",
    "build_two_level_grid",
    "decompose_level",
    # radiation
    "BurnsChristonBenchmark",
    "DiscreteOrdinates",
    "RadiativeProperties",
    "SpectralBand",
    "SpectralRMCRT",
    "product_quadrature",
    "sn_level_symmetric",
    # core
    "DistributedRMCRT",
    "LevelFields",
    "MultiLevelRMCRT",
    "RMCRTResult",
    "RMCRTSolver",
    "SingleLevelRMCRT",
    "VirtualRadiometer",
    "benchmark_property_init",
    # runtime
    "Computes",
    "DistributedScheduler",
    "GPUScheduler",
    "MultiGPUScheduler",
    "Requires",
    "SerialScheduler",
    "SimMPI",
    "SimulationController",
    "Task",
    "TaskGraph",
    "ThreadedScheduler",
    # dw
    "CCVariable",
    "DataArchive",
    "DataWarehouse",
    "GPUDataWarehouse",
    "VarLabel",
    # infrastructure
    "LockedVectorCommPool",
    "WaitFreeCommPool",
    "ArenaAllocator",
    "SimulatedHeap",
    "SizeClassPool",
    # machine / dessim
    "GPUModel",
    "NetworkModel",
    "TitanSpec",
    "TITAN",
    "ClusterSimulator",
    "LARGE",
    "MEDIUM",
    "RMCRTProblem",
    "SimOptions",
    "StrongScalingStudy",
    # arches
    "BoilerScenario",
    "CoupledSimulation",
    "EnergyEquation",
    # service layer
    "RadiationService",
    "ServiceClient",
    "ServiceConfig",
    "SolveRequest",
    "SolveResult",
    "parse_ups",
    "run_ups",
    "scene_fingerprint",
    "spec_fingerprint",
]
