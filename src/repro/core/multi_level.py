"""Multi-level ("data onion") RMCRT — the paper's core algorithm.

Each fine-mesh patch task owns fine-resolution radiative properties for
its patch plus a halo (the region of interest); everywhere beyond, rays
march coarsened, domain-spanning copies of the properties projected to
the radiation levels. The physics error this introduces is the loss of
sub-coarse-cell variation far from the evaluation point — small,
because distant contributions are both attenuated (exp(-tau)) and
averaged over many rays — while the distributed-memory win is the
point of the paper: per-node data drops from O(N_fine) to
O(patch + halo + N_coarse).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.grid.grid import Grid
from repro.core.fields import LevelFields
from repro.core.kernels import patch_roi, trace_patch_multi_level
from repro.core.single_level import RMCRTResult, _whole_domain_patch
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams
from repro.util.timing import TimerRegistry


def project_to_coarser_levels(
    grid: Grid, fine_props: RadiativeProperties
) -> List[RadiativeProperties]:
    """Property bundles for every level, coarsest-first.

    The finest entry is ``fine_props`` itself; each coarser level gets
    the conservative projection through the cumulative refinement
    ratio — the distributed analogue is the coarsen-and-allgather step
    whose message volume the cost model (E8) accounts.
    """
    if fine_props.interior != grid.finest_level.domain_box:
        raise ReproError("fine properties do not match the finest level")
    bundles: List[Optional[RadiativeProperties]] = [None] * grid.num_levels
    bundles[-1] = fine_props
    for idx in range(grid.num_levels - 2, -1, -1):
        finer_level = grid.level(idx + 1)
        ratio = finer_level.refinement_ratio
        if not (ratio[0] == ratio[1] == ratio[2]):
            raise ReproError(f"anisotropic refinement {ratio} not supported")
        bundles[idx] = bundles[idx + 1].coarsen(ratio[0])
    return bundles  # type: ignore[return-value]


class MultiLevelRMCRT:
    """The 2+-level AMR RMCRT solver of Sections III.B-III.C."""

    def __init__(
        self,
        rays_per_cell: int = 25,
        threshold: float = 1e-4,
        seed: int = 0,
        halo: int = 4,
        reflections: bool = False,
        centered_origins: bool = False,
    ) -> None:
        if halo < 0:
            raise ReproError(f"halo must be >= 0, got {halo}")
        self.rays_per_cell = int(rays_per_cell)
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.halo = int(halo)
        self.reflections = bool(reflections)
        self.centered_origins = bool(centered_origins)

    def solve(self, grid: Grid, fine_props: RadiativeProperties) -> RMCRTResult:
        if grid.num_levels < 2:
            raise ReproError(
                "multi-level RMCRT needs >= 2 levels; use SingleLevelRMCRT"
            )
        bundles = project_to_coarser_levels(grid, fine_props)
        all_fields = [
            LevelFields.from_properties(grid.level(i), bundles[i])
            for i in range(grid.num_levels)
        ]
        fine_level = grid.finest_level
        fine_fields = all_fields[-1]

        streams = RandomStreams(self.seed)
        timers = TimerRegistry()
        divq = np.empty(fine_level.domain_box.extent)
        patches = fine_level.patches or [_whole_domain_patch(fine_level)]
        rays = 0
        with timers("rmcrt_solve"):
            for patch in patches:
                rng = streams.for_patch(patch.patch_id)
                roi = patch_roi(fine_level.domain_box, patch.box, self.halo)
                with timers("kernel"):
                    pdivq = trace_patch_multi_level(
                        all_fields,
                        patch.box,
                        roi,
                        self.rays_per_cell,
                        rng,
                        threshold=self.threshold,
                        reflections=self.reflections,
                        centered_origins=self.centered_origins,
                    )
                divq[patch.box.slices(origin=fine_level.domain_box.lo)] = pdivq
                rays += patch.box.volume * self.rays_per_cell
        return RMCRTResult(divq=divq, rays_traced=rays, timers=timers)
