"""Level-resident field bundles the marching kernels consume.

A :class:`LevelFields` is the device-side view of one mesh level:
the three radiative-property arrays (with their one-cell wall ring)
plus the geometric metadata (spacing, anchor, ring origin) the DDA
needs to convert between physical positions and array offsets. This is
exactly what the GPU DataWarehouse's level database stores once per
level and shares across all patch tasks on a GPU (paper Section III.C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.grid.box import Box
from repro.grid.level import Level
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import GridError


@dataclass
class LevelFields:
    """Marching view of one level's radiative properties."""

    abskg: np.ndarray
    sigma_t4: np.ndarray
    cell_type: np.ndarray
    interior: Box
    dx: Tuple[float, float, float]
    anchor: Tuple[float, float, float]

    def __post_init__(self) -> None:
        expected = self.interior.grow(1).extent
        for name in ("abskg", "sigma_t4", "cell_type"):
            if tuple(getattr(self, name).shape) != expected:
                raise GridError(
                    f"{name} shape {getattr(self, name).shape} != ring extent {expected}"
                )
        self.dx = tuple(float(v) for v in self.dx)
        self.anchor = tuple(float(v) for v in self.anchor)

    @property
    def ring_box(self) -> Box:
        return self.interior.grow(1)

    @property
    def ring_lo(self):
        return self.ring_box.lo

    @staticmethod
    def from_properties(level: Level, props: RadiativeProperties) -> "LevelFields":
        if props.interior != level.domain_box:
            raise GridError(
                f"properties interior {props.interior} != level domain {level.domain_box}"
            )
        return LevelFields(
            abskg=props.abskg,
            sigma_t4=props.sigma_t4,
            cell_type=props.cell_type,
            interior=level.domain_box,
            dx=level.dx,
            anchor=level.anchor,
        )

    # ------------------------------------------------------------------
    # coordinate transforms (vectorized over (n, 3) arrays)
    # ------------------------------------------------------------------
    def position_to_cell(self, pos: np.ndarray, nudge_dir: np.ndarray = None) -> np.ndarray:
        """Cell indices containing physical positions.

        ``nudge_dir``, when given, bumps positions a relative 1e-9 of a
        cell along the ray so a position lying exactly on a cell face
        lands in the *downstream* cell — required at level-handoff where
        fine-patch boundaries coincide with coarse faces.
        """
        dx = np.asarray(self.dx)
        p = np.asarray(pos, dtype=np.float64)
        if nudge_dir is not None:
            p = p + 1e-9 * dx * np.asarray(nudge_dir)
        return np.floor((p - np.asarray(self.anchor)) / dx).astype(np.int64)

    def cell_center(self, cell: np.ndarray) -> np.ndarray:
        return np.asarray(self.anchor) + (np.asarray(cell, dtype=np.float64) + 0.5) * np.asarray(self.dx)

    def offsets(self, cell: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Array offsets for cell indices (caller guarantees in-ring)."""
        lo = self.ring_lo
        c = np.asarray(cell)
        return c[..., 0] - lo[0], c[..., 1] - lo[1], c[..., 2] - lo[2]

    @property
    def nbytes(self) -> int:
        return self.abskg.nbytes + self.sigma_t4.nbytes + self.cell_type.nbytes
