"""Patch-level RMCRT "device kernels".

These are the batch entry points the GPU scheduler launches per patch
task: trace all rays for every cell of a patch region and reduce them
to the divergence of the heat flux,

    del.q[c] = 4 pi kappa[c] (sigma_t4[c] / pi - mean_r sumI_r(c)).

Ray batches are chunked so device "global memory" stays bounded no
matter the patch size — the Python analogue of sizing a CUDA launch so
its working set fits the K20X's 6 GB (paper Section III.C).
"""

from __future__ import annotations


import numpy as np

from repro.grid.box import Box
from repro.core.dda import RayBatch, march
from repro.core.fields import LevelFields
from repro.core.rays import generate_patch_rays
from repro.util.errors import ReproError

#: default rays per kernel launch chunk
DEFAULT_CHUNK_RAYS = 1 << 17


def divq_from_sums(
    fields: LevelFields, box: Box, sum_i_mean: np.ndarray
) -> np.ndarray:
    """Reduce per-cell mean incoming intensity to del.q over ``box``.

    Solid cells (intrusions — boiler tubes and the like) are not part
    of the participating medium: their del.q is zeroed, as in Uintah.
    """
    from repro.grid.celltype import CellType

    sl = box.slices(origin=fields.ring_lo)
    kappa = fields.abskg[sl]
    st4 = fields.sigma_t4[sl]
    mean = sum_i_mean.reshape(box.extent)
    divq = 4.0 * np.pi * kappa * (st4 / np.pi - mean)
    solid = fields.cell_type[sl] != CellType.FLOW
    if solid.any():
        divq = np.where(solid, 0.0, divq)
    return divq


def trace_patch_single_level(
    fields: LevelFields,
    box: Box,
    rays_per_cell: int,
    rng: np.random.Generator,
    threshold: float = 1e-4,
    reflections: bool = False,
    centered_origins: bool = False,
    chunk_rays: int = DEFAULT_CHUNK_RAYS,
) -> np.ndarray:
    """del.q over ``box`` tracing every ray on one level.

    ``box`` must lie inside the level interior. Rays are generated from
    ``rng`` in cell order, chunked along whole-cell boundaries so the
    per-cell mean is exact regardless of chunk size.
    """
    if not fields.interior.contains_box(box):
        raise ReproError(f"patch box {box} outside level interior {fields.interior}")
    if rays_per_cell < 1:
        raise ReproError(f"rays_per_cell must be >= 1, got {rays_per_cell}")

    _, origins, directions = generate_patch_rays(
        fields, box, rays_per_cell, rng, centered_origins=centered_origins
    )
    total = origins.shape[0]
    cells_per_chunk = max(1, chunk_rays // rays_per_cell)
    stride = cells_per_chunk * rays_per_cell

    sums = np.empty(box.volume)
    for start in range(0, total, stride):
        end = min(start + stride, total)
        batch = RayBatch.fresh(origins[start:end], directions[start:end])
        march(batch=batch, fields=fields, threshold=threshold, reflections=reflections)
        per_cell = batch.sum_i.reshape(-1, rays_per_cell).mean(axis=1)
        sums[start // rays_per_cell: end // rays_per_cell] = per_cell

    return divq_from_sums(fields, box, sums)


def trace_patch_multi_level(
    level_fields: list,
    box: Box,
    roi: Box,
    rays_per_cell: int,
    rng: np.random.Generator,
    threshold: float = 1e-4,
    reflections: bool = False,
    centered_origins: bool = False,
    chunk_rays: int = DEFAULT_CHUNK_RAYS,
) -> np.ndarray:
    """del.q over a fine patch using the data-onion hierarchy.

    ``level_fields`` is ordered coarsest-first (matching grid levels);
    rays start on the finest level restricted to ``roi`` (the fine data
    this patch task owns: patch + halo, plus any adjacent wall ring) and
    cascade to successively coarser levels when they leave it. On
    levels below the finest, rays march over the *whole* level — every
    coarse level spans the domain by construction (Section III.C).
    """
    if len(level_fields) < 1:
        raise ReproError("need at least one level")
    fine = level_fields[-1]
    if not fine.interior.contains_box(box):
        raise ReproError(f"patch box {box} outside fine interior {fine.interior}")
    if not fine.ring_box.contains_box(roi) or not roi.contains_box(box):
        raise ReproError(f"roi {roi} must satisfy box <= roi <= fine ring box")

    _, origins, directions = generate_patch_rays(
        fine, box, rays_per_cell, rng, centered_origins=centered_origins
    )
    total = origins.shape[0]
    cells_per_chunk = max(1, chunk_rays // rays_per_cell)
    stride = cells_per_chunk * rays_per_cell

    sums = np.empty(box.volume)
    for start in range(0, total, stride):
        end = min(start + stride, total)
        batch = RayBatch.fresh(origins[start:end], directions[start:end])
        march(
            batch=batch,
            fields=fine,
            roi=roi,
            threshold=threshold,
            reflections=reflections,
        )
        # cascade: any parked ray continues on the next coarser level
        for coarse in reversed(level_fields[:-1]):
            if batch.parked().size == 0:
                break
            march(
                batch=batch,
                fields=coarse,
                threshold=threshold,
                reflections=reflections,
                from_handoff=True,
            )
        if batch.parked().size:
            raise ReproError(
                "rays left the coarsest level's ROI — the coarsest level "
                "must span the whole domain"
            )
        per_cell = batch.sum_i.reshape(-1, rays_per_cell).mean(axis=1)
        sums[start // rays_per_cell: end // rays_per_cell] = per_cell

    return divq_from_sums(fine, box, sums)


def patch_roi(fine_interior: Box, patch_box: Box, halo: int) -> Box:
    """The fine-level region of interest for a patch task.

    patch + ``halo`` cells, clipped against the interior but keeping the
    wall ring wherever the grown box pokes out of the domain — so rays
    still terminate at true domain walls on the fine level instead of
    being handed off through them.
    """
    grown = patch_box.grow(halo)
    return grown.intersect(fine_interior.grow(1))
