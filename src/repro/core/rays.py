"""Ray generation for RMCRT.

Reverse Monte Carlo traces rays *backwards* from the cell where the
divergence of the heat flux is wanted; directions are sampled
isotropically over the full sphere and origins are either the cell
centre ("CCRays" in Uintah) or jittered uniformly within the cell.
Streams are keyed per patch (see :mod:`repro.util.rng`) so results are
independent of domain decomposition and execution order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grid.box import Box
from repro.core.fields import LevelFields


def isotropic_directions(rng: np.random.Generator, n: int) -> np.ndarray:
    """``n`` unit vectors uniform on the sphere.

    Sampled as cos(theta) ~ U(-1, 1), phi ~ U(0, 2*pi) — the exact
    scheme Uintah's findRayDirection uses.
    """
    cos_theta = 1.0 - 2.0 * rng.random(n)
    phi = 2.0 * np.pi * rng.random(n)
    sin_theta = np.sqrt(np.maximum(0.0, 1.0 - cos_theta ** 2))
    return np.column_stack(
        (sin_theta * np.cos(phi), sin_theta * np.sin(phi), cos_theta)
    )


def cell_ray_origins(
    fields: LevelFields,
    cells: np.ndarray,
    rays_per_cell: int,
    rng: np.random.Generator,
    centered: bool = False,
) -> np.ndarray:
    """Origins for ``rays_per_cell`` rays in each of ``cells`` (m, 3).

    Returns ``(m * rays_per_cell, 3)`` positions, grouped by cell
    (all rays of cell 0 first). Jittered origins never sit exactly on a
    face: uniform in the open cell.
    """
    dx = np.asarray(fields.dx)
    anchor = np.asarray(fields.anchor)
    cells = np.asarray(cells, dtype=np.float64)
    base = anchor + cells * dx  # low corner of each cell
    rep = np.repeat(base, rays_per_cell, axis=0)
    if centered:
        return rep + 0.5 * dx
    jitter = rng.random((rep.shape[0], 3))
    return rep + jitter * dx


def region_cells(box: Box) -> np.ndarray:
    """All cell indices of a box as an (volume, 3) array, C order.

    Row order matches ``ndarray.reshape(-1)`` of a field over the box,
    so per-cell results scatter back with a plain reshape.
    """
    gx, gy, gz = np.meshgrid(
        np.arange(box.lo[0], box.hi[0]),
        np.arange(box.lo[1], box.hi[1]),
        np.arange(box.lo[2], box.hi[2]),
        indexing="ij",
    )
    return np.column_stack((gx.ravel(), gy.ravel(), gz.ravel()))


def generate_patch_rays(
    fields: LevelFields,
    box: Box,
    rays_per_cell: int,
    rng: np.random.Generator,
    centered_origins: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(cells, origins, directions) for every cell of ``box``.

    ``origins``/``directions`` have ``box.volume * rays_per_cell`` rows
    grouped by cell. Direction sampling happens *after* origin sampling
    from the same stream, mirroring Uintah's per-ray draw order.
    """
    cells = region_cells(box)
    origins = cell_ray_origins(fields, cells, rays_per_cell, rng, centered=centered_origins)
    directions = isotropic_directions(rng, origins.shape[0])
    return cells, origins, directions
