"""Single-level RMCRT solver.

The pre-AMR configuration (paper Section III.C): one fine mesh, every
ray marches it end-to-end, and in the distributed setting the entire
domain's properties must be replicated on every node —
O(N_total^2) communication, which is precisely what made problems
beyond 256^3 intractable and motivated the multi-level approach. Kept
as a first-class solver because it is the accuracy gold standard the
multi-level solver is validated against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.grid.grid import Grid
from repro.core.fields import LevelFields
from repro.core.kernels import trace_patch_single_level
from repro.core.cpu_kernel import trace_rays_scalar
from repro.core.rays import generate_patch_rays
from repro.core.kernels import divq_from_sums
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError
from repro.util.rng import RandomStreams
from repro.util.timing import TimerRegistry


@dataclass
class RMCRTResult:
    """Output of one radiation solve."""

    divq: np.ndarray                 #: del.q on the (finest) level interior
    rays_traced: int
    timers: TimerRegistry
    per_patch: Dict[int, np.ndarray] = field(default_factory=dict)
    #: incident radiative flux in wall-adjacent cells (pipelines with
    #: compute_boundary_flux=True), zeros elsewhere; None when not computed
    wall_flux: "np.ndarray | None" = None

    @property
    def total_emission(self) -> float:
        """Domain integral of del.q (net radiative loss, per unit dx^3)."""
        return float(self.divq.sum())


class SingleLevelRMCRT:
    """Trace every ray on one (the finest) level.

    ``backend='vectorized'`` runs the batch DDA kernel (the simulated
    GPU path); ``'scalar'`` the per-ray reference loop (the CPU path).
    """

    def __init__(
        self,
        rays_per_cell: int = 25,
        threshold: float = 1e-4,
        seed: int = 0,
        reflections: bool = False,
        centered_origins: bool = False,
        backend: str = "vectorized",
    ) -> None:
        if backend not in ("vectorized", "scalar"):
            raise ReproError(f"unknown backend {backend!r}")
        self.rays_per_cell = int(rays_per_cell)
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.reflections = bool(reflections)
        self.centered_origins = bool(centered_origins)
        self.backend = backend

    def solve(self, grid: Grid, props: RadiativeProperties) -> RMCRTResult:
        level = grid.finest_level
        fields = LevelFields.from_properties(level, props)
        streams = RandomStreams(self.seed)
        timers = TimerRegistry()

        divq = np.empty(level.domain_box.extent)
        patches = level.patches or [_whole_domain_patch(level)]
        rays = 0
        with timers("rmcrt_solve"):
            for patch in patches:
                rng = streams.for_patch(patch.patch_id)
                with timers("kernel"):
                    if self.backend == "vectorized":
                        pdivq = trace_patch_single_level(
                            fields,
                            patch.box,
                            self.rays_per_cell,
                            rng,
                            threshold=self.threshold,
                            reflections=self.reflections,
                            centered_origins=self.centered_origins,
                        )
                    else:
                        pdivq = self._scalar_patch(fields, patch.box, rng)
                divq[patch.box.slices(origin=level.domain_box.lo)] = pdivq
                rays += patch.box.volume * self.rays_per_cell
        return RMCRTResult(divq=divq, rays_traced=rays, timers=timers)

    def _scalar_patch(self, fields: LevelFields, box, rng) -> np.ndarray:
        _, origins, directions = generate_patch_rays(
            fields, box, self.rays_per_cell, rng,
            centered_origins=self.centered_origins,
        )
        sums = trace_rays_scalar(
            fields, origins, directions,
            threshold=self.threshold, reflections=self.reflections,
        )
        per_cell = sums.reshape(-1, self.rays_per_cell).mean(axis=1)
        return divq_from_sums(fields, box, per_cell)


def _whole_domain_patch(level):
    from repro.grid.patch import Patch

    return Patch(patch_id=0, level_index=level.index, box=level.domain_box)
