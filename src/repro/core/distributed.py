"""Multi-level RMCRT expressed as a Uintah task graph.

This is the paper's production shape: radiation is not a monolithic
solve but three task types compiled into the per-timestep graph —

1. ``rmcrt.initProperties`` (per fine patch): evaluate/copy the
   radiative properties onto the patch (in ARCHES these come from the
   CFD state; here from a property-initializer callable).
2. ``rmcrt.coarsen`` (once per graph): project the fine properties to
   every coarse radiation level and publish them as PER_LEVEL
   variables — the "global halo on all coarse levels" requirement that
   the level database and the per-rank broadcast dedup make affordable.
3. ``rmcrt.trace`` (per fine patch, optionally a device task): march
   the patch's rays over fine data restricted to the patch ROI plus the
   shared coarse levels, computing del.q.

Faithfulness guard: the trace task materializes fine-level data ONLY
inside its declared ROI (everything else is NaN), so any kernel read
outside the data the task graph actually communicated poisons the
result instead of silently using data a real distributed run would not
have.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.grid.box import Box
from repro.grid.celltype import CellType
from repro.grid.grid import Grid
from repro.grid.level import Level
from repro.grid.loadbalance import LoadBalancer
from repro.grid.refinement import coarsen_average, coarsen_max
from repro.dw.label import cc, per_level
from repro.radiation.constants import SIGMA_SB
from repro.core.fields import LevelFields
from repro.core.kernels import patch_roi, trace_patch_multi_level
from repro.core.single_level import RMCRTResult
from repro.runtime.scheduler import (
    DistributedScheduler,
    SerialScheduler,
    ThreadedScheduler,
    gather_cc,
)
from repro.runtime.gpu_scheduler import GPUScheduler
from repro.runtime.task import Computes, Requires, Task
from repro.runtime.taskgraph import TaskGraph
from repro.util.errors import ReproError
from repro.util.rng import spawn_stream
from repro.util.timing import TimerRegistry

ABSKG = cc("abskg")
SIGMA_T4 = cc("sigma_t4")
CELL_TYPE = cc("cell_type")
DIVQ = cc("divq")
WALL_FLUX = cc("wall_flux")

PropertyInit = Callable[[Level, Box], Dict[str, np.ndarray]]


def benchmark_property_init(benchmark) -> PropertyInit:
    """Property initializer for a Burns & Christon benchmark object."""

    def init(level: Level, box: Box) -> Dict[str, np.ndarray]:
        return {
            "abskg": benchmark.abskg_field(level, box),
            "sigma_t4": np.ones(box.extent),
            "cell_type": np.full(box.extent, CellType.FLOW, dtype=np.int8),
        }

    return init


class DistributedRMCRT:
    """The 3-task RMCRT pipeline over any of the runtime's schedulers."""

    def __init__(
        self,
        grid: Grid,
        property_init: PropertyInit,
        rays_per_cell: int = 25,
        halo: int = 4,
        threshold: float = 1e-4,
        seed: int = 0,
        wall_temperature: float = 0.0,
        wall_emissivity: float = 1.0,
        device: bool = False,
        compute_boundary_flux: bool = False,
        flux_rays_per_face: int = 16,
    ) -> None:
        if grid.num_levels < 2:
            raise ReproError("DistributedRMCRT needs a multi-level grid")
        if not grid.finest_level.patches:
            raise ReproError("the finest level must be decomposed into patches")
        self.grid = grid
        self.property_init = property_init
        self.rays_per_cell = int(rays_per_cell)
        self.halo = int(halo)
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.wall_temperature = float(wall_temperature)
        self.wall_emissivity = float(wall_emissivity)
        self.device = bool(device)
        self.compute_boundary_flux = bool(compute_boundary_flux)
        self.flux_rays_per_face = int(flux_rays_per_face)
        self._coarse_labels = {
            idx: {
                "abskg": per_level(f"abskg_L{idx}"),
                "sigma_t4": per_level(f"sigma_t4_L{idx}"),
                "cell_type": per_level(f"cell_type_L{idx}"),
            }
            for idx in range(grid.num_levels - 1)
        }

    # ------------------------------------------------------------------
    # task callbacks
    # ------------------------------------------------------------------
    def _init_cb(self, ctx) -> None:
        fields = self.property_init(ctx.level, ctx.patch.box)
        ctx.compute(ABSKG, fields["abskg"])
        ctx.compute(SIGMA_T4, fields["sigma_t4"])
        ctx.compute(CELL_TYPE, fields["cell_type"].astype(np.float64))

    def _coarsen_cb(self, ctx) -> None:
        abskg = ctx.require(ABSKG)
        st4 = ctx.require(SIGMA_T4)
        ct = ctx.require(CELL_TYPE)
        fine_idx = self.grid.num_levels - 1
        for idx in range(fine_idx - 1, -1, -1):
            ratio = self.grid.level(idx + 1).refinement_ratio[0]
            abskg = coarsen_average(abskg, ratio)
            st4 = coarsen_average(st4, ratio)
            ct = coarsen_max(ct, ratio)
            labels = self._coarse_labels[idx]
            ctx.compute_level(labels["abskg"], abskg)
            ctx.compute_level(labels["sigma_t4"], st4)
            ctx.compute_level(labels["cell_type"], ct)

    def _wall_ring_fields(self, level: Level) -> LevelFields:
        """Level-shaped arrays pre-filled with the wall ring; interior NaN."""
        interior = level.domain_box
        ring = interior.grow(1)
        abskg = np.full(ring.extent, self.wall_emissivity)
        st4 = np.full(ring.extent, SIGMA_SB * self.wall_temperature ** 4)
        ct = np.full(ring.extent, CellType.WALL, dtype=np.int8)
        inner = interior.slices(origin=ring.lo)
        abskg[inner] = np.nan
        st4[inner] = np.nan
        ct[inner] = CellType.FLOW
        return LevelFields(
            abskg=abskg,
            sigma_t4=st4,
            cell_type=ct,
            interior=interior,
            dx=level.dx,
            anchor=level.anchor,
        )

    def _build_fields(self, ctx):
        """Assemble the per-task level fields (fine ROI + coarse levels)
        from the DataWarehouse — shared by the trace and boundary-flux
        callbacks. Returns (all_fields coarsest-first, roi)."""
        fine_level = self.grid.finest_level
        interior = fine_level.domain_box
        roi = patch_roi(interior, ctx.patch.box, self.halo)

        fine = self._wall_ring_fields(fine_level)
        data_region = ctx.patch.box.grow(self.halo).intersect(interior)
        sl = data_region.slices(origin=fine.ring_lo)
        ghost_region = ctx.patch.box.grow(self.halo)

        def paste(arr_name, label):
            ghost = ctx.require(label, default=np.nan)
            piece = ghost[data_region.slices(origin=ghost_region.lo)]
            getattr(fine, arr_name)[sl] = piece

        paste("abskg", ABSKG)
        paste("sigma_t4", SIGMA_T4)
        ct_ghost = ctx.require(CELL_TYPE, default=float(CellType.WALL))
        fine.cell_type[sl] = ct_ghost[
            data_region.slices(origin=ghost_region.lo)
        ].astype(np.int8)

        all_fields: List[LevelFields] = []
        for idx in range(self.grid.num_levels - 1):
            level = self.grid.level(idx)
            labels = self._coarse_labels[idx]
            coarse = self._wall_ring_fields(level)
            inner = level.domain_box.slices(origin=coarse.ring_lo)
            coarse.abskg[inner] = ctx.require_level(labels["abskg"])
            coarse.sigma_t4[inner] = ctx.require_level(labels["sigma_t4"])
            coarse.cell_type[inner] = ctx.require_level(labels["cell_type"]).astype(np.int8)
            all_fields.append(coarse)
        all_fields.append(fine)
        return all_fields, roi

    def _trace_cb(self, ctx) -> None:
        all_fields, roi = self._build_fields(ctx)
        rng = spawn_stream(self.seed, 0, ctx.patch.patch_id)
        divq = trace_patch_multi_level(
            all_fields,
            ctx.patch.box,
            roi,
            self.rays_per_cell,
            rng,
            threshold=self.threshold,
        )
        if np.isnan(divq).any():
            raise ReproError(
                f"trace on patch {ctx.patch.patch_id} read cells outside its "
                f"ROI (NaN poisoning fired) — halo/ROI declaration is wrong"
            )
        ctx.compute(DIVQ, divq)

    def _bflux_cb(self, ctx) -> None:
        """Incident radiative flux in the patch's wall-adjacent cells —
        the boiler designer's quantity of interest (Section III.A),
        computed with multi-level radiometer rays."""
        from repro.core.boundary_flux import WALLS, incident_flux_multilevel

        all_fields, roi = self._build_fields(ctx)
        interior = self.grid.finest_level.domain_box
        flux = np.zeros(ctx.patch.box.extent)
        for axis, side in WALLS:
            slab_lo = list(interior.lo)
            slab_hi = list(interior.hi)
            if side == 0:
                slab_hi[axis] = slab_lo[axis] + 1
            else:
                slab_lo[axis] = slab_hi[axis] - 1
            face_box = Box(tuple(slab_lo), tuple(slab_hi)).intersect(ctx.patch.box)
            if face_box.empty:
                continue  # this patch does not touch that wall
            rng = spawn_stream(self.seed, 1, ctx.patch.patch_id, 2 * axis + side)
            q = incident_flux_multilevel(
                all_fields, axis, side, face_box,
                self.flux_rays_per_face, rng,
                roi=roi, threshold=self.threshold,
            )
            if np.isnan(q).any():
                raise ReproError(
                    f"boundary flux on patch {ctx.patch.patch_id} read cells "
                    f"outside its ROI"
                )
            target = flux[face_box.slices(origin=ctx.patch.box.lo)]
            # edge/corner cells accumulate contributions from each wall
            target += np.expand_dims(q, axis)
        ctx.compute(WALL_FLUX, flux)

    # ------------------------------------------------------------------
    # graph assembly + solve
    # ------------------------------------------------------------------
    def build_graph(
        self, assignment: Optional[Dict[int, int]] = None, num_ranks: int = 1
    ):
        return self.build_taskgraph().compile(
            assignment=assignment, num_ranks=num_ranks
        )

    def build_taskgraph(self) -> TaskGraph:
        """The uncompiled task list — what ``repro check graph`` and the
        static validator inspect before compilation."""
        fine_idx = self.grid.num_levels - 1
        tg = TaskGraph(self.grid)
        tg.add_task(
            Task(
                "rmcrt.initProperties",
                self._init_cb,
                computes=[Computes(ABSKG), Computes(SIGMA_T4), Computes(CELL_TYPE)],
            ),
            fine_idx,
        )
        coarse_computes = [
            Computes(lbl, level_index=idx)
            for idx, labels in self._coarse_labels.items()
            for lbl in labels.values()
        ]
        tg.add_level_task(
            Task(
                "rmcrt.coarsen",
                self._coarsen_cb,
                requires=[Requires(ABSKG), Requires(SIGMA_T4), Requires(CELL_TYPE)],
                computes=coarse_computes,
            ),
            fine_idx,
        )
        trace_requires = [
            Requires(ABSKG, num_ghost=self.halo),
            Requires(SIGMA_T4, num_ghost=self.halo),
            Requires(CELL_TYPE, num_ghost=self.halo),
        ] + [
            Requires(lbl, level_index=idx)
            for idx, labels in self._coarse_labels.items()
            for lbl in labels.values()
        ]
        tg.add_task(
            Task(
                "rmcrt.trace",
                self._trace_cb,
                requires=trace_requires,
                computes=[Computes(DIVQ)],
                device=self.device,
            ),
            fine_idx,
        )
        if self.compute_boundary_flux:
            tg.add_task(
                Task(
                    "rmcrt.boundaryFlux",
                    self._bflux_cb,
                    requires=list(trace_requires),
                    computes=[Computes(WALL_FLUX)],
                    device=self.device,
                ),
                fine_idx,
            )
        return tg

    def solve(
        self,
        scheduler: str = "serial",
        num_ranks: int = 1,
        num_threads: int = 4,
        pool_kind: str = "waitfree",
        gpu=None,
        tracer=None,
        metrics=None,
    ) -> RMCRTResult:
        """Run the pipeline and gather del.q on the fine level.

        ``tracer``/``metrics`` flow into the chosen scheduler so a solve
        shows up in the observability layer; after a distributed solve,
        :attr:`last_runtime_stats` holds the across-rank reduction of
        the scheduler's per-rank stats.
        """
        timers = TimerRegistry()
        fine = self.grid.finest_level
        rays = sum(p.num_cells for p in fine.patches) * self.rays_per_cell
        self.last_runtime_stats = None
        with timers("rmcrt_solve"):
            if scheduler == "serial":
                graph = self.build_graph()
                dw = SerialScheduler(tracer=tracer, metrics=metrics).execute(graph)
                rank_dws = {0: dw}
            elif scheduler == "threaded":
                graph = self.build_graph()
                dw = ThreadedScheduler(
                    num_threads=num_threads, tracer=tracer, metrics=metrics
                ).execute(graph)
                rank_dws = {0: dw}
            elif scheduler == "gpu":
                graph = self.build_graph()
                engine = GPUScheduler(gpu=gpu, tracer=tracer, metrics=metrics)
                dw = engine.execute(graph)
                rank_dws = {0: dw}
            elif scheduler == "distributed":
                lb = LoadBalancer(num_ranks)
                assignment = lb.assign(fine.patches)
                graph = self.build_graph(assignment=assignment, num_ranks=num_ranks)
                engine = DistributedScheduler(
                    num_ranks, pool_kind=pool_kind, tracer=tracer, metrics=metrics
                )
                rank_dws = engine.execute(graph)
                self.last_runtime_stats = engine.runtime_stats()
            else:
                raise ReproError(f"unknown scheduler {scheduler!r}")
            divq = gather_cc(graph, rank_dws, DIVQ, self.grid.num_levels - 1)
            wall_flux = None
            if self.compute_boundary_flux:
                wall_flux = gather_cc(
                    graph, rank_dws, WALL_FLUX, self.grid.num_levels - 1
                )
        if metrics is not None:
            for rank, dw in rank_dws.items():
                dw.publish_metrics(metrics, rank=rank)
        return RMCRTResult(
            divq=divq, rays_traced=rays, timers=timers, wall_flux=wall_flux
        )
