"""The paper's primary contribution: single- and multi-level RMCRT
solvers and their batched ray-marching kernels."""

from repro.core.fields import LevelFields
from repro.core.rays import (
    isotropic_directions,
    cell_ray_origins,
    region_cells,
    generate_patch_rays,
)
from repro.core.dda import RayBatch, RayStatus, march
from repro.core.cpu_kernel import march_single_ray, trace_rays_scalar
from repro.core.kernels import (
    trace_patch_single_level,
    trace_patch_multi_level,
    divq_from_sums,
    patch_roi,
)
from repro.core.single_level import SingleLevelRMCRT, RMCRTResult
from repro.core.multi_level import MultiLevelRMCRT, project_to_coarser_levels
from repro.core.boundary_flux import (
    VirtualRadiometer,
    cosine_hemisphere_directions,
    incident_flux_multilevel,
    WALLS,
)
from repro.core.solver import RMCRTSolver
from repro.core.distributed import (
    DistributedRMCRT,
    benchmark_property_init,
    ABSKG,
    SIGMA_T4,
    CELL_TYPE,
    DIVQ,
    WALL_FLUX,
)

__all__ = [
    "DistributedRMCRT",
    "benchmark_property_init",
    "ABSKG",
    "SIGMA_T4",
    "CELL_TYPE",
    "DIVQ",
    "LevelFields",
    "isotropic_directions",
    "cell_ray_origins",
    "region_cells",
    "generate_patch_rays",
    "RayBatch",
    "RayStatus",
    "march",
    "march_single_ray",
    "trace_rays_scalar",
    "trace_patch_single_level",
    "trace_patch_multi_level",
    "divq_from_sums",
    "patch_roi",
    "SingleLevelRMCRT",
    "RMCRTResult",
    "MultiLevelRMCRT",
    "project_to_coarser_levels",
    "VirtualRadiometer",
    "cosine_hemisphere_directions",
    "WALLS",
    "RMCRTSolver",
]
