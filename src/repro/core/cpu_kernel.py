"""Scalar per-ray reference implementation of the RMCRT march.

A direct, loop-per-ray transcription of Uintah's CPU ``updateSumI`` —
deliberately unoptimized. Its roles:

* **differential oracle**: the vectorized batch kernel in
  :mod:`repro.core.dda` must produce bit-identical sumI for the same
  rays (tests enforce this), and
* **"CPU" side of the GPU/CPU throughput contrast** in the kernel
  benchmarks (E5), standing in for the one-ray-per-thread CPU path the
  paper compares its GPU kernels against.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.grid.box import Box
from repro.grid.celltype import CellType
from repro.core.dda import RayStatus
from repro.core.fields import LevelFields
from repro.util.errors import ReproError


def march_single_ray(
    fields: LevelFields,
    origin,
    direction,
    roi: Optional[Box] = None,
    threshold: float = 1e-4,
    reflections: bool = False,
    tau0: float = 0.0,
    sum_i0: float = 0.0,
    from_handoff: bool = False,
    max_steps: int = 1_000_000,
) -> Tuple[float, float, int, Optional[Tuple[float, float, float]]]:
    """March one ray; returns (sum_i, tau, status, exit_pos)."""
    dx = fields.dx
    anchor = fields.anchor
    ox, oy, oz = (float(v) for v in origin)
    d = [float(v) for v in direction]

    cell = [0, 0, 0]
    for k, p in enumerate((ox, oy, oz)):
        q = p
        if from_handoff:
            q = p + 1e-9 * dx[k] * d[k]
        cell[k] = int(math.floor((q - anchor[k]) / dx[k]))

    step = [0, 0, 0]
    tmax = [math.inf] * 3
    tdelta = [math.inf] * 3
    pos = (ox, oy, oz)
    for k in range(3):
        if d[k] > 0:
            step[k] = 1
            tmax[k] = (anchor[k] + (cell[k] + 1) * dx[k] - pos[k]) / d[k]
            tdelta[k] = dx[k] / d[k]
        elif d[k] < 0:
            step[k] = -1
            tmax[k] = (anchor[k] + cell[k] * dx[k] - pos[k]) / d[k]
            tdelta[k] = -dx[k] / d[k]

    tau = float(tau0)
    sum_i = float(sum_i0)
    tcur = 0.0
    log_threshold = -math.log(threshold)
    lo = fields.ring_lo
    abskg, st4, ctype = fields.abskg, fields.sigma_t4, fields.cell_type
    inv_pi = 1.0 / math.pi

    # launching inside a wall cell (parked exactly on the domain face):
    # the ray has reached the wall — absorb immediately
    i0, j0, k0 = cell[0] - lo[0], cell[1] - lo[1], cell[2] - lo[2]
    if ctype[i0, j0, k0] != CellType.FLOW:
        sum_i += abskg[i0, j0, k0] * st4[i0, j0, k0] * inv_pi * math.exp(-tau)
        return sum_i, tau, int(RayStatus.WALL_HIT), None

    for _ in range(max_steps):
        ax = 0
        if tmax[1] < tmax[ax]:
            ax = 1
        if tmax[2] < tmax[ax]:
            ax = 2
        t_next = tmax[ax]
        seg = t_next - tcur
        i, j, k = cell[0] - lo[0], cell[1] - lo[1], cell[2] - lo[2]
        kap = abskg[i, j, k]
        emis = st4[i, j, k] * inv_pi
        tau_new = tau + kap * seg
        sum_i += emis * (math.exp(-tau) - math.exp(-tau_new))
        tau = tau_new
        tcur = t_next
        cell[ax] += step[ax]
        tmax[ax] += tdelta[ax]

        if roi is not None and not roi.contains_point(cell):
            exit_pos = (ox + tcur * d[0], oy + tcur * d[1], oz + tcur * d[2])
            return sum_i, tau, int(RayStatus.LEFT_ROI), exit_pos

        i, j, k = cell[0] - lo[0], cell[1] - lo[1], cell[2] - lo[2]
        if ctype[i, j, k] != CellType.FLOW:
            wall_emis = abskg[i, j, k]
            sum_i += wall_emis * st4[i, j, k] * inv_pi * math.exp(-tau)
            if reflections and (1.0 - wall_emis) > threshold:
                tau += -math.log(1.0 - wall_emis)
                d[ax] = -d[ax]
                step[ax] = -step[ax]
                cell[ax] += step[ax]
                tmax[ax] = tcur + tdelta[ax]
            else:
                return sum_i, tau, int(RayStatus.WALL_HIT), None

        if tau > log_threshold:
            return sum_i, tau, int(RayStatus.EXTINCT), None

    raise ReproError(f"ray did not terminate within {max_steps} steps")


def trace_rays_scalar(
    fields: LevelFields,
    origins: np.ndarray,
    directions: np.ndarray,
    threshold: float = 1e-4,
    reflections: bool = False,
) -> np.ndarray:
    """sum_i for each ray, scalar path (single level, full domain)."""
    n = origins.shape[0]
    out = np.empty(n)
    for r in range(n):
        out[r], _, _, _ = march_single_ray(
            fields,
            origins[r],
            directions[r],
            threshold=threshold,
            reflections=reflections,
        )
    return out
