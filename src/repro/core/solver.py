"""The public RMCRT façade.

:class:`RMCRTSolver` is the library's front door: hand it a grid and a
property bundle (or let it build the Burns & Christon benchmark) and it
dispatches to the single- or multi-level solver by grid shape.
"""

from __future__ import annotations

from typing import Optional

from repro.grid.grid import Grid
from repro.core.multi_level import MultiLevelRMCRT
from repro.core.single_level import RMCRTResult, SingleLevelRMCRT
from repro.radiation.benchmark import BurnsChristonBenchmark
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError


class RMCRTSolver:
    """Dispatching solver: single-level for 1-level grids, data-onion
    multi-level otherwise.

    Parameters mirror Uintah's RMCRT spec: ``rays_per_cell`` (nDivQRays),
    ``threshold`` (ray termination transmissivity), ``halo`` (fine-level
    ROI margin), ``reflections`` (non-black walls), and ``seed``.
    """

    def __init__(
        self,
        rays_per_cell: int = 25,
        threshold: float = 1e-4,
        seed: int = 0,
        halo: int = 4,
        reflections: bool = False,
        centered_origins: bool = False,
        backend: str = "vectorized",
    ) -> None:
        self.rays_per_cell = int(rays_per_cell)
        self.threshold = float(threshold)
        self.seed = int(seed)
        self.halo = int(halo)
        self.reflections = bool(reflections)
        self.centered_origins = bool(centered_origins)
        self.backend = backend

    def solve(self, grid: Grid, props: RadiativeProperties) -> RMCRTResult:
        """Compute del.q on the finest level of ``grid``."""
        if grid.num_levels == 1:
            inner = SingleLevelRMCRT(
                rays_per_cell=self.rays_per_cell,
                threshold=self.threshold,
                seed=self.seed,
                reflections=self.reflections,
                centered_origins=self.centered_origins,
                backend=self.backend,
            )
        else:
            if self.backend != "vectorized":
                raise ReproError(
                    "the scalar reference backend only supports single-level grids"
                )
            inner = MultiLevelRMCRT(
                rays_per_cell=self.rays_per_cell,
                threshold=self.threshold,
                seed=self.seed,
                halo=self.halo,
                reflections=self.reflections,
                centered_origins=self.centered_origins,
            )
        return inner.solve(grid, props)

    def solve_benchmark(
        self,
        benchmark: Optional[BurnsChristonBenchmark] = None,
        resolution: int = 41,
        levels: int = 1,
        refinement_ratio: int = 4,
        fine_patch_size: Optional[int] = None,
    ) -> RMCRTResult:
        """One-call Burns & Christon solve (quickstart path)."""
        bench = benchmark or BurnsChristonBenchmark(resolution=resolution)
        if levels == 1:
            grid = bench.single_level_grid(patch_size=fine_patch_size)
        elif levels == 2:
            grid = bench.two_level_grid(
                refinement_ratio=refinement_ratio,
                fine_patch_size=fine_patch_size,
            )
        else:
            raise ReproError(f"benchmark supports 1 or 2 levels, got {levels}")
        props = bench.properties_for_level(grid.finest_level)
        return self.solve(grid, props)
