"""Batched 3-D DDA ray marching — the RMCRT device kernel's core.

This is the vectorized (SoA, mask-compacted) equivalent of the CUDA
``updateSumI`` kernel in Uintah's GPU RMCRT (paper Section III): a
whole batch of rays advances cell-by-cell through a level's property
arrays using the Amanatides-Woo traversal, accumulating the incoming
intensity

    sumI = integral kappa(s) Ib(s) exp(-tau(s)) ds
         = sum over segments  Ib_cell * (exp(-tau_in) - exp(-tau_out))

until each ray is extinguished: it enters a wall/intrusion cell (adding
the attenuated wall emission, optionally reflecting), drops below the
transmissivity threshold, or — in multi-level mode — leaves the fine
region of interest and is parked for hand-off to a coarser level.

The batch layout is exactly what a GPU wants (one ray per lane, masked
divergence handled by compacting the active set), which is why this
module doubles as the "GPU kernel" of the reproduction: NumPy's
vector unit plays the role of the K20X's SIMT lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Optional

import numpy as np

from repro.grid.box import Box
from repro.grid.celltype import CellType
from repro.core.fields import LevelFields
from repro.util.errors import ReproError


class RayStatus(IntEnum):
    ALIVE = 0        #: still marching (only transiently, inside the loop)
    WALL_HIT = 1     #: absorbed at a wall/intrusion surface
    EXTINCT = 2      #: transmissivity fell below threshold
    LEFT_ROI = 3     #: exited the region of interest (multi-level hand-off)


@dataclass
class RayBatch:
    """SoA state for a batch of rays.

    ``sum_i`` is the accumulated incoming intensity per ray; ``tau`` the
    optical depth from the ray origin. Parked rays (LEFT_ROI) carry
    their exit position for re-initialization on a coarser level.
    """

    origins: np.ndarray      # (n, 3) float
    directions: np.ndarray   # (n, 3) float unit vectors
    sum_i: np.ndarray        # (n,) float
    tau: np.ndarray          # (n,) float
    status: np.ndarray       # (n,) int8 RayStatus
    exit_pos: np.ndarray     # (n, 3) float, valid where status == LEFT_ROI

    @staticmethod
    def fresh(origins: np.ndarray, directions: np.ndarray) -> "RayBatch":
        origins = np.ascontiguousarray(origins, dtype=np.float64)
        directions = np.ascontiguousarray(directions, dtype=np.float64)
        if origins.shape != directions.shape or origins.ndim != 2 or origins.shape[1] != 3:
            raise ReproError(
                f"origins {origins.shape} / directions {directions.shape} must be (n, 3)"
            )
        n = origins.shape[0]
        return RayBatch(
            origins=origins,
            directions=directions,
            sum_i=np.zeros(n),
            tau=np.zeros(n),
            status=np.full(n, RayStatus.ALIVE, dtype=np.int8),
            exit_pos=np.zeros_like(origins),
        )

    @property
    def n(self) -> int:
        return self.origins.shape[0]

    def parked(self) -> np.ndarray:
        """Indices of rays awaiting a coarser level."""
        return np.nonzero(self.status == RayStatus.LEFT_ROI)[0]


def march(
    fields: LevelFields,
    batch: RayBatch,
    roi: Optional[Box] = None,
    threshold: float = 1e-4,
    reflections: bool = False,
    max_steps: Optional[int] = None,
    from_handoff: bool = False,
) -> RayBatch:
    """March every ALIVE/LEFT_ROI ray of ``batch`` through ``fields``.

    ``roi`` restricts marching to a cell-index box (which must lie
    within the level's ring box); rays stepping outside it are parked
    with status LEFT_ROI and a recorded exit position. Without ``roi``
    rays always terminate inside the wall ring, which encloses the
    domain by construction.

    ``from_handoff`` re-launches previously parked rays from their exit
    positions (nudged along the direction so positions exactly on a
    coarse face land downstream).

    Returns ``batch`` (mutated in place) for chaining.
    """
    ring = fields.ring_box
    if roi is not None and not ring.contains_box(roi):
        raise ReproError(f"roi {roi} escapes level ring box {ring}")

    if from_handoff:
        launch = np.nonzero(batch.status == RayStatus.LEFT_ROI)[0]
        start_pos = batch.exit_pos[launch]
    else:
        launch = np.nonzero(batch.status == RayStatus.ALIVE)[0]
        start_pos = batch.origins[launch]
    if launch.size == 0:
        return batch
    batch.status[launch] = RayStatus.ALIVE

    dirs = batch.directions[launch]
    dx = np.asarray(fields.dx)
    anchor = np.asarray(fields.anchor)

    cell = fields.position_to_cell(start_pos, nudge_dir=dirs if from_handoff else None)
    step = np.sign(dirs).astype(np.int64)
    with np.errstate(divide="ignore"):
        tdelta = np.where(dirs != 0.0, dx / np.abs(dirs), np.inf)
        next_bound = anchor + (cell + (step > 0)) * dx
        tmax = np.where(dirs != 0.0, (next_bound - start_pos) / dirs, np.inf)
    tcur = np.zeros(launch.size)

    # local (compacting) working copies; scattered back on termination
    tau = batch.tau[launch].copy()
    sum_i = batch.sum_i[launch].copy()
    log_threshold = -np.log(threshold)

    if max_steps is None:
        e = ring.extent
        max_steps = 16 * (e[0] + e[1] + e[2] + 3)

    rows = np.arange(launch.size)  # stable identity for scatter-back
    abskg, st4, ctype = fields.abskg, fields.sigma_t4, fields.cell_type
    inv_pi = 1.0 / np.pi

    # a ray may launch already inside a wall cell (e.g. parked exactly on
    # the domain face and handed to a coarser level): it has reached the
    # wall — absorb it before the march
    sx, sy, sz = fields.offsets(cell)
    at_wall = ctype[sx, sy, sz] != CellType.FLOW
    if np.any(at_wall):
        w = rows[at_wall]
        sum_i[w] += abskg[sx[w], sy[w], sz[w]] * st4[sx[w], sy[w], sz[w]] * inv_pi * np.exp(-tau[w])
        batch.status[launch[w]] = RayStatus.WALL_HIT

    active = rows[batch.status[launch] == RayStatus.ALIVE]

    for _ in range(max_steps):
        if active.size == 0:
            break
        a = active
        ax = np.argmin(tmax[a], axis=1)
        t_next = tmax[a, ax]
        seg = t_next - tcur[a]

        ox, oy, oz = fields.offsets(cell[a])
        kap = abskg[ox, oy, oz]
        emis = st4[ox, oy, oz] * inv_pi
        tau_old = tau[a]
        tau_new = tau_old + kap * seg
        sum_i[a] += emis * (np.exp(-tau_old) - np.exp(-tau_new))
        tau[a] = tau_new
        tcur[a] = t_next

        cell[a, ax] += step[a, ax]
        tmax[a, ax] += tdelta[a, ax]

        ncell = cell[a]
        if roi is not None:
            inside = np.all((ncell >= roi.lo) & (ncell < roi.hi), axis=1)
            left = a[~inside]
            if left.size:
                batch.status[launch[left]] = RayStatus.LEFT_ROI
                batch.exit_pos[launch[left]] = (
                    start_pos[left] + tcur[left, None] * dirs[left]
                )
            a = a[inside]
            if a.size == 0:
                active = a
                continue

        nx, ny, nz = fields.offsets(cell[a])
        ct = ctype[nx, ny, nz]
        hit = ct != CellType.FLOW
        if np.any(hit):
            h = a[hit]
            wall_emis = abskg[nx[hit], ny[hit], nz[hit]]
            wall_emit = st4[nx[hit], ny[hit], nz[hit]] * inv_pi
            sum_i[h] += wall_emis * wall_emit * np.exp(-tau[h])
            if reflections:
                rho = 1.0 - wall_emis
                reflect = rho > threshold
                absorbed = h[~reflect]
                batch.status[launch[absorbed]] = RayStatus.WALL_HIT
                r = h[reflect]
                if r.size:
                    # a specular reflection is the flip of the direction
                    # component on the hit axis plus a grey attenuation:
                    # future contributions carry an extra factor rho,
                    # i.e. tau increases by -ln(rho)
                    tau[r] += -np.log(rho[reflect])
                    hit_idx = np.nonzero(hit)[0][reflect]  # positions within a
                    axes = ax[hit_idx]
                    dirs[r, axes] = -dirs[r, axes]
                    step[r, axes] = -step[r, axes]
                    cell[r, axes] += step[r, axes]  # back into the flow cell
                    tmax[r, axes] = tcur[r] + tdelta[r, axes]
            else:
                batch.status[launch[h]] = RayStatus.WALL_HIT

        # threshold extinction: exp(-tau) < threshold
        dead = a[(tau[a] > log_threshold) & (batch.status[launch[a]] == RayStatus.ALIVE)]
        if dead.size:
            batch.status[launch[dead]] = RayStatus.EXTINCT

        active = rows[batch.status[launch] == RayStatus.ALIVE]
    else:
        still = int((batch.status[launch] == RayStatus.ALIVE).sum())
        if still:
            raise ReproError(
                f"{still} rays still alive after {max_steps} DDA steps — "
                f"grid/threshold configuration cannot terminate them"
            )

    batch.tau[launch] = tau
    batch.sum_i[launch] = sum_i
    return batch
