"""Boundary (wall) incident-flux calculation — the virtual radiometer.

The quantity the CCMSC boiler designers actually need is the radiative
heat flux to the walls (paper Section III.A). RMCRT computes it with
the same reverse trick used for del.q: from a point on the wall, trace
rays *into* the domain over the inward hemisphere with cosine-weighted
importance sampling, so the incident flux is

    q_in = integral over hemisphere of I(s) (n . s) dOmega
         = pi * E[ sumI ]        (for cosine-sampled directions).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.grid.box import Box
from repro.core.dda import RayBatch, march
from repro.core.fields import LevelFields
from repro.util.errors import ReproError

#: (axis, side) for the six walls; side 0 = low face, 1 = high face
WALLS: List[Tuple[int, int]] = [(a, s) for a in range(3) for s in (0, 1)]


def cosine_hemisphere_directions(
    rng: np.random.Generator, n: int, axis: int, side: int
) -> np.ndarray:
    """``n`` cosine-weighted directions about the inward wall normal.

    For the low face the inward normal is +axis; for the high face it
    is -axis. Malley's method: uniform disk lift.
    """
    r = np.sqrt(rng.random(n))
    phi = 2.0 * np.pi * rng.random(n)
    u = r * np.cos(phi)
    v = r * np.sin(phi)
    w = np.sqrt(np.maximum(0.0, 1.0 - r * r))
    dirs = np.empty((n, 3))
    other = [d for d in range(3) if d != axis]
    dirs[:, axis] = w if side == 0 else -w
    dirs[:, other[0]] = u
    dirs[:, other[1]] = v
    return dirs


class VirtualRadiometer:
    """Monte Carlo incident-flux estimator on domain wall faces."""

    def __init__(
        self,
        rays_per_face: int = 100,
        threshold: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if rays_per_face < 1:
            raise ReproError("rays_per_face must be >= 1")
        self.rays_per_face = int(rays_per_face)
        self.threshold = float(threshold)
        self.seed = int(seed)

    def incident_flux(
        self,
        fields: LevelFields,
        axis: int,
        side: int,
        face_box: Box = None,
    ) -> np.ndarray:
        """Incident flux on each boundary face of one wall.

        ``face_box`` (a 2-D slab of interior cells adjacent to the
        wall, default: the whole wall) selects which faces to sample.
        Returns the flux per face, shaped like the slab with the wall
        axis squeezed out.
        """
        if (axis, side) not in WALLS:
            raise ReproError(f"invalid wall ({axis}, {side})")
        interior = fields.interior
        slab_lo = list(interior.lo)
        slab_hi = list(interior.hi)
        if side == 0:
            slab_hi[axis] = slab_lo[axis] + 1
        else:
            slab_lo[axis] = slab_hi[axis] - 1
        slab = Box(tuple(slab_lo), tuple(slab_hi))
        if face_box is not None:
            slab = slab.intersect(face_box)
            if slab.empty:
                raise ReproError("face_box selects no wall faces")

        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(axis, side))
        )
        dx = np.asarray(fields.dx)
        anchor = np.asarray(fields.anchor)

        # ray origins: jittered over each face, exactly on the wall plane
        from repro.core.rays import region_cells

        cells = region_cells(slab)
        m = cells.shape[0]
        n = m * self.rays_per_face
        rep = np.repeat(cells.astype(np.float64), self.rays_per_face, axis=0)
        jitter = rng.random((n, 3))
        pos = anchor + (rep + jitter) * dx
        # clamp the wall axis onto the face plane, nudged one ulp inward
        plane = anchor[axis] + (slab.lo[axis] + (0.0 if side == 0 else 1.0)) * dx[axis]
        inward = 1.0 if side == 0 else -1.0
        pos[:, axis] = plane + inward * 1e-9 * dx[axis]

        dirs = cosine_hemisphere_directions(rng, n, axis, side)
        batch = RayBatch.fresh(pos, dirs)
        march(batch=batch, fields=fields, threshold=self.threshold)
        per_face = batch.sum_i.reshape(m, self.rays_per_face).mean(axis=1)
        flux = np.pi * per_face

        shape = [e for d, e in enumerate(slab.extent) if d != axis]
        return flux.reshape(shape)

    def all_walls(self, fields: LevelFields) -> dict:
        """Incident flux arrays for all six walls, keyed by (axis, side)."""
        return {
            (a, s): self.incident_flux(fields, a, s) for a, s in WALLS
        }


def incident_flux_multilevel(
    level_fields,
    axis: int,
    side: int,
    face_box: Box,
    rays_per_face: int,
    rng: np.random.Generator,
    roi: Box = None,
    threshold: float = 1e-4,
) -> np.ndarray:
    """Multi-level radiometer: wall rays march the fine ROI then
    cascade to the coarse levels, exactly like the del.q rays.

    ``level_fields`` is ordered coarsest-first; ``face_box`` selects the
    wall-adjacent interior cells of the finest level whose faces are
    sampled. Returns the incident flux per face, shaped like the slab
    with the wall axis squeezed out.
    """
    from repro.core.rays import region_cells

    fine = level_fields[-1]
    if (axis, side) not in WALLS:
        raise ReproError(f"invalid wall ({axis}, {side})")
    if face_box.empty:
        raise ReproError("face_box selects no wall faces")

    dx = np.asarray(fine.dx)
    anchor = np.asarray(fine.anchor)
    cells = region_cells(face_box)
    m = cells.shape[0]
    n = m * rays_per_face
    rep = np.repeat(cells.astype(np.float64), rays_per_face, axis=0)
    jitter = rng.random((n, 3))
    pos = anchor + (rep + jitter) * dx
    plane = anchor[axis] + (face_box.lo[axis] + (0.0 if side == 0 else 1.0)) * dx[axis]
    inward = 1.0 if side == 0 else -1.0
    pos[:, axis] = plane + inward * 1e-9 * dx[axis]
    dirs = cosine_hemisphere_directions(rng, n, axis, side)

    batch = RayBatch.fresh(pos, dirs)
    march(batch=batch, fields=fine, roi=roi, threshold=threshold)
    for coarse in reversed(level_fields[:-1]):
        if batch.parked().size == 0:
            break
        march(batch=batch, fields=coarse, threshold=threshold, from_handoff=True)
    if batch.parked().size:
        raise ReproError("radiometer rays escaped the coarsest level")

    per_face = batch.sum_i.reshape(m, rays_per_face).mean(axis=1)
    shape = [e for d, e in enumerate(face_box.extent) if d != axis]
    return (np.pi * per_face).reshape(shape)
