"""CPU node timing model — the "CPU vs GPU" comparison axis.

The paper defers a CPU/GPU performance study to future work but its
predecessor [5] ran the same multi-level RMCRT on Titan's 16-core
Opteron nodes. This model prices that configuration: one ray-marching
task per core through Uintah's threaded scheduler, no PCIe stage, a
per-core scalar DDA rate (dependent loads, ~100 cycles/step on a
2.2 GHz Opteron), and a threading efficiency for shared-memory-bandwidth
contention across 16 cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.titan import TITAN, TitanSpec
from repro.util.errors import ReproError


@dataclass
class CPUNodeModel:
    spec: TitanSpec = TITAN
    #: scalar DDA cell-steps per second per core
    steps_per_second_per_core: float = 2.2e7
    #: scaling efficiency across the node's cores (memory contention)
    parallel_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.steps_per_second_per_core <= 0:
            raise ReproError("per-core rate must be positive")
        if not 0 < self.parallel_efficiency <= 1:
            raise ReproError("parallel_efficiency must be in (0, 1]")

    @property
    def cores(self) -> int:
        return self.spec.cores_per_node

    def task_time(self, cells: int, rays_per_cell: int, steps_per_ray: float) -> float:
        """One patch task on one core (Uintah: task == core)."""
        if cells <= 0 or rays_per_cell <= 0 or steps_per_ray <= 0:
            raise ReproError("task_time needs positive work")
        work = cells * rays_per_cell * steps_per_ray
        return work / (self.steps_per_second_per_core * self.parallel_efficiency)


OPTERON_6274 = CPUNodeModel()
