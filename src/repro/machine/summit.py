"""DOE Summit projection.

The paper's introduction targets "the planned DOE Summit and Sierra
machines"; this module instantiates the machine model with Summit's
published node architecture (4,608 nodes x 6 V100s, NVLink instead of
PCIe gen-2, dual-rail EDR InfiniBand in a fat tree) so the scaling
studies can be projected forward — the reproduction's answer to
"preserve current capabilities on upcoming machines".
"""


from repro.machine.gpu import GPUModel
from repro.machine.network import NetworkModel
from repro.machine.titan import TitanSpec

SUMMIT = TitanSpec(
    cores_per_node=42,              # 2 x POWER9, SMT cores usable
    cpu_clock_hz=3.1e9,
    host_memory_bytes=512 * 1024 ** 3,
    node_memory_bandwidth=340e9,
    gpus_per_node=6,
    num_nodes=4608,
    network_latency_s=1.0e-6,       # EDR IB
    injection_bandwidth=23e9,       # dual-rail EDR per node
    pcie_bandwidth=50e9,            # NVLink 2.0 CPU<->GPU
    pcie_latency_s=2e-6,
    gpu_memory_bytes=16 * 1024 ** 3,   # V100 16 GB
    gpu_peak_flops=7.8e12,
    gpu_memory_bandwidth=900e9,
    gpu_sm_count=80,
    gpu_threads_per_sm=2048,
    gpu_kernel_launch_s=5e-6,
    gpu_copy_engines=2,
)

#: V100 traversal rate scaled from the K20X calibration by memory
#: bandwidth (the kernel is gather-latency/bandwidth bound)
V100 = GPUModel(
    spec=SUMMIT,
    dda_steps_per_second=6e8 * (SUMMIT.gpu_memory_bandwidth / 250e9),
)

SUMMIT_NETWORK = NetworkModel(
    latency_s=SUMMIT.network_latency_s,
    bandwidth=SUMMIT.injection_bandwidth,
)


def summit_simulator():
    """A ClusterSimulator configured for Summit-projected runs."""
    from repro.dessim.cluster import ClusterSimulator

    return ClusterSimulator(spec=SUMMIT, network=SUMMIT_NETWORK, gpu=V100)
