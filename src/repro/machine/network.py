"""Gemini network cost model: alpha-beta point-to-point plus the
collectives the RMCRT communication phase is built from."""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.titan import TITAN
from repro.util.errors import ReproError


@dataclass
class NetworkModel:
    """Alpha-beta model with a torus congestion knob.

    ``congestion`` scales effective bandwidth down for traffic patterns
    that cross the torus bisection (1.0 = pure injection-bound).
    """

    latency_s: float = TITAN.network_latency_s
    bandwidth: float = TITAN.injection_bandwidth
    congestion: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.bandwidth <= 0 or not 0 < self.congestion <= 1:
            raise ReproError("invalid network parameters")

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth * self.congestion

    def ptp_time(self, nbytes: int) -> float:
        """One point-to-point message."""
        return self.latency_s + nbytes / self.effective_bandwidth

    def allgather_time(self, total_bytes: int, num_ranks: int) -> float:
        """Bandwidth-optimal ring allgather of a ``total_bytes`` result
        over ``num_ranks`` (each rank contributes 1/R)."""
        if num_ranks < 1:
            raise ReproError("num_ranks must be >= 1")
        if num_ranks == 1:
            return 0.0
        r = num_ranks
        per_step = total_bytes / r
        return (r - 1) * (self.latency_s + per_step / self.effective_bandwidth)

    def bcast_time(self, nbytes: int, num_ranks: int) -> float:
        """Binomial-tree broadcast."""
        if num_ranks <= 1:
            return 0.0
        import math

        steps = math.ceil(math.log2(num_ranks))
        return steps * (self.latency_s + nbytes / self.effective_bandwidth)

    def halo_exchange_time(self, num_neighbors: int, bytes_per_neighbor: int) -> float:
        """Nearest-neighbour exchange, neighbours overlapped: one latency
        per posted message, payload serialized through the injection port."""
        return (
            num_neighbors * self.latency_s
            + num_neighbors * bytes_per_neighbor / self.effective_bandwidth
        )


GEMINI = NetworkModel()
