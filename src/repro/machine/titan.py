"""DOE Titan (Cray XK7) machine constants.

From the paper's footnote: each node hosts a 16-core AMD Opteron 6274
at 2.2 GHz, 32 GB DDR3, and one NVIDIA Tesla K20X with 6 GB GDDR5;
the Gemini 3-D torus has 1.4 us latency and 20 GB/s peak injection
bandwidth; 52 GB/s node memory bandwidth; 18,688 nodes total.
K20X figures are the public datasheet values.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class TitanSpec:
    # node
    cores_per_node: int = 16
    cpu_clock_hz: float = 2.2e9
    host_memory_bytes: int = 32 * 1024 ** 3
    node_memory_bandwidth: float = 52e9
    gpus_per_node: int = 1
    num_nodes: int = 18_688

    # Gemini 3-D torus
    network_latency_s: float = 1.4e-6
    injection_bandwidth: float = 20e9

    # PCIe gen-2 x16 effective
    pcie_bandwidth: float = 6e9
    pcie_latency_s: float = 10e-6

    # Tesla K20X
    gpu_memory_bytes: int = 6 * 1024 ** 3
    gpu_peak_flops: float = 1.31e12
    gpu_memory_bandwidth: float = 250e9
    gpu_sm_count: int = 14
    gpu_threads_per_sm: int = 2048
    gpu_kernel_launch_s: float = 10e-6
    gpu_copy_engines: int = 2

    @property
    def full_occupancy_threads(self) -> int:
        """Resident threads needed to saturate the device."""
        return self.gpu_sm_count * self.gpu_threads_per_sm


TITAN = TitanSpec()
