"""Calibrated models of the evaluation platform: Titan XK7 node specs,
the Gemini network, and the K20X GPU."""

from repro.machine.titan import TITAN, TitanSpec
from repro.machine.network import GEMINI, NetworkModel
from repro.machine.gpu import K20X, GPUModel
from repro.machine.cpu import OPTERON_6274, CPUNodeModel
from repro.machine.summit import SUMMIT, SUMMIT_NETWORK, V100, summit_simulator

__all__ = [
    "SUMMIT",
    "SUMMIT_NETWORK",
    "V100",
    "summit_simulator",
    "TITAN",
    "TitanSpec",
    "GEMINI",
    "NetworkModel",
    "K20X",
    "GPUModel",
    "OPTERON_6274",
    "CPUNodeModel",
]
