"""K20X kernel and PCIe timing model.

The patch-size study of Section V hinges on one mechanism: Uintah's
GPU RMCRT launches one thread per fine-mesh cell, so a patch's cell
count is the kernel's resident thread count. 16^3 = 4,096 threads
cannot fill a K20X (14 SMX x 2,048 threads = 28,672 resident threads),
32^3 = 32,768 just saturates it, and 64^3 = 262,144 runs several full
waves — which is exactly why "using larger patches provides more work
per GPU and yields a more significant speedup".

``dda_steps_per_second`` is the calibrated full-occupancy traversal
rate. RMCRT's inner loop is memory-latency bound (incoherent gathers of
abskg/sigmaT4 per cell step); the default is chosen so the LARGE
benchmark lands at O(seconds)/timestep at a few thousand GPUs, matching
the scale of the paper's figures. Absolute values are not the
reproduction target — curve shapes and efficiency ratios are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.titan import TITAN, TitanSpec
from repro.util.errors import ReproError


@dataclass
class GPUModel:
    spec: TitanSpec = TITAN
    #: full-occupancy DDA cell-steps per second. Each step performs
    #: several dependent, uncoalesced gathers (abskg, sigma_t4,
    #: cell_type at an arbitrary cell), so the achievable rate is a
    #: small fraction of the 250 GB/s streaming bandwidth:
    #: ~250e9 / (3 gathers x 128-byte transactions) ~ 6e8 steps/s.
    dda_steps_per_second: float = 6e8
    #: occupancy floor: even one warp makes some progress
    min_efficiency: float = 0.02

    def occupancy_efficiency(self, threads: int) -> float:
        """Fraction of peak traversal rate at ``threads`` resident threads.

        Linear ramp to full occupancy — the usual shape for a
        latency-bound kernel, where more resident warps hide more
        memory latency.
        """
        if threads <= 0:
            raise ReproError("threads must be positive")
        full = self.spec.full_occupancy_threads
        return max(self.min_efficiency, min(1.0, threads / full))

    def kernel_time(self, cells: int, rays_per_cell: int, steps_per_ray: float) -> float:
        """One RMCRT patch kernel: one thread per cell, looping rays."""
        if cells <= 0 or rays_per_cell <= 0 or steps_per_ray <= 0:
            raise ReproError("kernel_time needs positive work")
        work = cells * rays_per_cell * steps_per_ray
        eff = self.occupancy_efficiency(cells)
        return self.spec.gpu_kernel_launch_s + work / (self.dda_steps_per_second * eff)

    def h2d_time(self, nbytes: int) -> float:
        return self.spec.pcie_latency_s + nbytes / self.spec.pcie_bandwidth

    def d2h_time(self, nbytes: int) -> float:
        return self.spec.pcie_latency_s + nbytes / self.spec.pcie_bandwidth

    def fits_in_memory(self, nbytes: int) -> bool:
        return nbytes <= self.spec.gpu_memory_bytes


K20X = GPUModel()
