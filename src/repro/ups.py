"""Uintah problem specification (UPS) input files.

Uintah simulations are driven by XML "UPS" files; this module accepts
a UPS-like specification for the reproduction's RMCRT benchmark and
scaling studies, so runs are configured the way a Uintah user would
configure them. Supported layout (tags mirror Uintah's RMCRT spec
where one exists)::

    <Uintah_specification>
      <Grid>
        <resolution> 64 </resolution>
        <levels> 2 </levels>
        <refinement_ratio> 4 </refinement_ratio>
        <patch_size> 16 </patch_size>
      </Grid>
      <RMCRT>
        <nDivQRays> 100 </nDivQRays>
        <Threshold> 0.0001 </Threshold>
        <halo> 4 </halo>
        <allowReflect> false </allowReflect>
        <CCRays> false </CCRays>
        <randomSeed> 0 </randomSeed>
      </RMCRT>
      <Spectral>
        <bands> 3 </bands>
        <temperature> 1400 </temperature>
        <kappaExponent> 0.8 </kappaExponent>
        <emissivity> tungsten </emissivity>
      </Spectral>
      <Scheduler type="distributed" ranks="8" pool="waitfree" threads="16"/>
    </Uintah_specification>

The optional ``<Spectral>`` block switches the solve to the
wavelength-sampled spectral tracer
(:mod:`repro.radiation.spectral.tracer`): ``bands`` Planck-sampled
wavelength bands at the given reference ``temperature`` (or explicit
``<bandEdges>``, micrometres, ``bands + 1`` increasing values with
``inf`` allowed), a kappa power law in wavelength, and a named surface
emissivity table. Spectral solves are restricted to single-level grids
on the serial scheduler — the multi-level band cascade is future work.

Parsing is strict: unknown tags raise, so typos fail loudly instead of
silently running defaults (a lesson every Uintah user learns once).
"""

from __future__ import annotations

import hashlib
import json
import xml.etree.ElementTree as ET
from dataclasses import asdict, dataclass, field
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.core.distributed import DistributedRMCRT, benchmark_property_init
from repro.core.single_level import RMCRTResult
from repro.core.solver import RMCRTSolver
from repro.grid.grid import Grid
from repro.radiation.benchmark import BurnsChristonBenchmark
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError

_BOOL = {"true": True, "false": False, "1": True, "0": False}


@dataclass
class GridSpec:
    resolution: int = 32
    levels: int = 2
    refinement_ratio: int = 4
    patch_size: Optional[int] = None


@dataclass
class RMCRTSpec:
    n_divq_rays: int = 25
    threshold: float = 1e-4
    halo: int = 4
    allow_reflect: bool = False
    cc_rays: bool = False
    random_seed: int = 0


@dataclass
class SchedulerSpec:
    type: str = "serial"
    ranks: int = 1
    pool: str = "waitfree"
    threads: int = 4


@dataclass
class SpectralSpec:
    """The ``<Spectral>`` block: wavelength-sampled transport.

    ``band_edges_um`` is empty for equal-Planck-fraction banding, or
    ``bands + 1`` increasing wavelength edges in micrometres.
    """

    bands: int = 3
    band_edges_um: tuple = ()
    temperature: float = 1000.0
    kappa_exponent: float = 0.0
    emissivity: str = "gray"


@dataclass
class ProblemSpec:
    grid: GridSpec = field(default_factory=GridSpec)
    rmcrt: RMCRTSpec = field(default_factory=RMCRTSpec)
    scheduler: SchedulerSpec = field(default_factory=SchedulerSpec)
    #: None = gray transport (the classic solvers); set = spectral
    spectral: Optional[SpectralSpec] = None


def _text(elem: ET.Element) -> str:
    return (elem.text or "").strip()


def _parse_bool(raw: str, tag: str) -> bool:
    try:
        return _BOOL[raw.lower()]
    except KeyError:
        raise ReproError(f"<{tag}> expects true/false, got {raw!r}") from None


_GRID_TAGS = {
    "resolution": ("resolution", int),
    "levels": ("levels", int),
    "refinement_ratio": ("refinement_ratio", int),
    "patch_size": ("patch_size", int),
}
_RMCRT_TAGS = {
    "nDivQRays": ("n_divq_rays", int),
    "Threshold": ("threshold", float),
    "halo": ("halo", int),
    "randomSeed": ("random_seed", int),
}
_RMCRT_BOOL_TAGS = {"allowReflect": "allow_reflect", "CCRays": "cc_rays"}
_SPECTRAL_TAGS = {
    "bands": ("bands", int),
    "temperature": ("temperature", float),
    "kappaExponent": ("kappa_exponent", float),
    "emissivity": ("emissivity", str),
}


def _parse_band_edges(raw: str) -> tuple:
    try:
        return tuple(float(tok) for tok in raw.split())
    except ValueError:
        raise ReproError(
            f"<bandEdges> expects whitespace-separated wavelengths "
            f"(um, 'inf' allowed), got {raw!r}"
        ) from None


def parse_ups(source: str) -> ProblemSpec:
    """Parse a UPS document from a string or a file path."""
    try:
        if source.lstrip().startswith("<"):
            root = ET.fromstring(source)
        else:
            root = ET.parse(source).getroot()
    except ET.ParseError as exc:
        raise ReproError(f"malformed UPS XML: {exc}") from exc

    if root.tag != "Uintah_specification":
        raise ReproError(
            f"UPS root must be <Uintah_specification>, got <{root.tag}>"
        )
    spec = ProblemSpec()
    for section in root:
        if section.tag == "Grid":
            for child in section:
                if child.tag not in _GRID_TAGS:
                    raise ReproError(f"unknown <Grid> tag <{child.tag}>")
                attr, conv = _GRID_TAGS[child.tag]
                setattr(spec.grid, attr, conv(_text(child)))
        elif section.tag == "RMCRT":
            for child in section:
                if child.tag in _RMCRT_TAGS:
                    attr, conv = _RMCRT_TAGS[child.tag]
                    setattr(spec.rmcrt, attr, conv(_text(child)))
                elif child.tag in _RMCRT_BOOL_TAGS:
                    setattr(
                        spec.rmcrt,
                        _RMCRT_BOOL_TAGS[child.tag],
                        _parse_bool(_text(child), child.tag),
                    )
                else:
                    raise ReproError(f"unknown <RMCRT> tag <{child.tag}>")
        elif section.tag == "Spectral":
            spec.spectral = SpectralSpec()
            for child in section:
                if child.tag in _SPECTRAL_TAGS:
                    attr, conv = _SPECTRAL_TAGS[child.tag]
                    setattr(spec.spectral, attr, conv(_text(child)))
                elif child.tag == "bandEdges":
                    spec.spectral.band_edges_um = _parse_band_edges(_text(child))
                else:
                    raise ReproError(f"unknown <Spectral> tag <{child.tag}>")
        elif section.tag == "Scheduler":
            spec.scheduler.type = section.attrib.get("type", "serial")
            spec.scheduler.ranks = int(section.attrib.get("ranks", "1"))
            spec.scheduler.pool = section.attrib.get("pool", "waitfree")
            spec.scheduler.threads = int(section.attrib.get("threads", "4"))
            unknown = set(section.attrib) - {"type", "ranks", "pool", "threads"}
            if unknown:
                raise ReproError(f"unknown <Scheduler> attributes {sorted(unknown)}")
        else:
            raise ReproError(f"unknown UPS section <{section.tag}>")

    _validate(spec)
    return spec


def _validate(spec: ProblemSpec) -> None:
    g, r, s = spec.grid, spec.rmcrt, spec.scheduler
    if g.levels not in (1, 2):
        raise ReproError(f"levels must be 1 or 2, got {g.levels}")
    if g.resolution < 2:
        raise ReproError(f"resolution must be >= 2, got {g.resolution}")
    if r.n_divq_rays < 1:
        raise ReproError("nDivQRays must be >= 1")
    if not 0 < r.threshold < 1:
        raise ReproError("Threshold must be in (0, 1)")
    if s.type not in ("serial", "threaded", "distributed", "gpu"):
        raise ReproError(f"unknown scheduler type {s.type!r}")
    if spec.spectral is not None:
        _validate_spectral(spec)
    if s.type != "serial":
        if g.patch_size is None:
            raise ReproError(f"{s.type} runs need <patch_size>")
        if g.levels != 2:
            raise ReproError("the RMCRT task pipeline needs a 2-level grid")
        if r.allow_reflect or r.cc_rays:
            raise ReproError(
                "allowReflect/CCRays are only supported by the serial "
                "direct solvers in this reproduction"
            )


def _validate_spectral(spec: ProblemSpec) -> None:
    from repro.radiation.spectral.emissivity import MATERIALS

    sp = spec.spectral
    if sp.bands < 1:
        raise ReproError(f"<Spectral> bands must be >= 1, got {sp.bands}")
    if sp.temperature <= 0:
        raise ReproError(
            f"<Spectral> temperature must be positive, got {sp.temperature}"
        )
    if sp.band_edges_um and len(sp.band_edges_um) != sp.bands + 1:
        raise ReproError(
            f"{sp.bands} spectral bands need {sp.bands + 1} band edges, "
            f"got {len(sp.band_edges_um)}"
        )
    known = {"gray"} | set(MATERIALS)
    if sp.emissivity not in known:
        raise ReproError(
            f"unknown <Spectral> emissivity {sp.emissivity!r}; "
            f"known: {', '.join(sorted(known))}"
        )
    if spec.grid.levels != 1:
        raise ReproError(
            "spectral transport is single-level only (the multi-level "
            "band cascade is future work); set <levels> 1 </levels>"
        )
    if spec.scheduler.type != "serial":
        raise ReproError("spectral transport runs on the serial scheduler only")
    if spec.rmcrt.allow_reflect:
        raise ReproError(
            "allowReflect is not supported by the spectral tracer "
            "(band-resolved reflections are future work)"
        )


def spectral_model(sp: SpectralSpec):
    """Resolve a :class:`SpectralSpec` into the tracer's model.

    Pure function of the spec fields — journaled spectral specs
    rebuild the identical model (and digest) anywhere.
    """
    from repro.radiation.spectral.model import SpectralModel

    return SpectralModel.build(
        bands=sp.bands,
        temperature=sp.temperature,
        band_edges_um=sp.band_edges_um or None,
        kappa_exponent=sp.kappa_exponent,
        emissivity=sp.emissivity,
    )


@dataclass
class PreparedScene:
    """The solve-independent part of a UPS problem: the benchmark
    factory, the built grid, and the finest-level property bundle.

    Preparing a scene is the expensive shared setup of a solve (grid
    decomposition + analytic property evaluation); the service layer's
    micro-batcher prepares one scene and runs every request that shares
    its grid/property fingerprint against it.
    """

    bench: BurnsChristonBenchmark
    grid: Grid
    props: RadiativeProperties


def prepare_scene(spec: ProblemSpec) -> PreparedScene:
    """Build the grid and properties a spec's solve will run against."""
    bench = BurnsChristonBenchmark(resolution=spec.grid.resolution)
    if spec.grid.levels == 1:
        grid = bench.single_level_grid(patch_size=spec.grid.patch_size)
    else:
        grid = bench.two_level_grid(
            refinement_ratio=spec.grid.refinement_ratio,
            fine_patch_size=spec.grid.patch_size,
        )
    return PreparedScene(bench, grid, bench.properties_for_level(grid.finest_level))


def run_prepared(spec: ProblemSpec, scene: PreparedScene) -> RMCRTResult:
    """Run a spec against an already-prepared scene.

    Results are bit-identical to :func:`run_ups` on the same spec — the
    same grid construction and solver calls, only with the scene build
    hoisted out so it can be shared across a batch.
    """
    r = spec.rmcrt
    # three execution paths: the spectral tracer for <Spectral> specs,
    # the 3-task pipeline for threaded/distributed/gpu runs, and the
    # direct solvers for serial gray ones
    if spec.spectral is not None:
        from repro.radiation.spectral.tracer import SpectralTracer

        tracer = SpectralTracer(
            spectral_model(spec.spectral),
            rays_per_cell=r.n_divq_rays,
            threshold=r.threshold,
            seed=r.random_seed,
            centered_origins=r.cc_rays,
        )
        return tracer.solve(scene.grid, scene.props)
    if spec.scheduler.type != "serial":
        drm = DistributedRMCRT(
            scene.grid,
            benchmark_property_init(scene.bench),
            rays_per_cell=r.n_divq_rays,
            halo=r.halo,
            threshold=r.threshold,
            seed=r.random_seed,
        )
        return drm.solve(
            spec.scheduler.type,
            num_ranks=spec.scheduler.ranks,
            num_threads=spec.scheduler.threads,
            pool_kind=spec.scheduler.pool,
        )
    solver = RMCRTSolver(
        rays_per_cell=r.n_divq_rays,
        threshold=r.threshold,
        seed=r.random_seed,
        halo=r.halo,
        reflections=r.allow_reflect,
        centered_origins=r.cc_rays,
    )
    return solver.solve(scene.grid, scene.props)


def run_ups(spec: ProblemSpec) -> RMCRTResult:
    """Build and run the specified Burns & Christon problem."""
    return run_prepared(spec, prepare_scene(spec))


# ----------------------------------------------------------------------
# scene / spec fingerprints
# ----------------------------------------------------------------------
# The service layer treats solves as content-addressed: two requests
# with the same fingerprint are the same solve. The *scene* fingerprint
# covers what the rays march through (grid geometry + the actual
# property arrays); the *spec* fingerprint adds the RMCRT sampling
# parameters and seed. Scheduler choice is deliberately excluded — the
# pipeline reproduces the direct solvers bit-for-bit on every scheduler
# (pinned by tests/test_distributed_rmcrt.py), so a cached result
# serves requests regardless of how they would have been executed.


@lru_cache(maxsize=64)
def _scene_digest(
    resolution: int,
    levels: int,
    refinement_ratio: int,
    patch_size: Optional[int],
    spectral_digest: Optional[str] = None,
) -> str:
    spec = ProblemSpec(
        grid=GridSpec(
            resolution=resolution,
            levels=levels,
            refinement_ratio=refinement_ratio,
            patch_size=patch_size,
        )
    )
    scene = prepare_scene(spec)
    h = hashlib.sha256()
    h.update(
        json.dumps(
            {
                "resolution": resolution,
                "levels": levels,
                "refinement_ratio": refinement_ratio,
                "patch_size": patch_size,
                # the spectral model reshapes the per-band marching
                # fields, so spectral scenes are distinct from the gray
                # scene built from the same grid — and from each other
                "spectral": spectral_digest,
            },
            sort_keys=True,
        ).encode()
    )
    for name in ("abskg", "sigma_t4", "cell_type"):
        arr = np.ascontiguousarray(getattr(scene.props, name))
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


@lru_cache(maxsize=64)
def _spectral_model_digest(
    bands: int,
    band_edges_um: tuple,
    temperature: float,
    kappa_exponent: float,
    emissivity: str,
) -> str:
    return spectral_model(
        SpectralSpec(
            bands=bands,
            band_edges_um=band_edges_um,
            temperature=temperature,
            kappa_exponent=kappa_exponent,
            emissivity=emissivity,
        )
    ).digest()


def _spectral_digest(spec: ProblemSpec) -> Optional[str]:
    sp = spec.spectral
    if sp is None:
        return None
    return _spectral_model_digest(
        sp.bands,
        tuple(sp.band_edges_um),
        sp.temperature,
        sp.kappa_exponent,
        sp.emissivity,
    )


def scene_fingerprint(spec: ProblemSpec) -> str:
    """Digest of the grid geometry and property fields (batching key)."""
    g = spec.grid
    return _scene_digest(
        g.resolution, g.levels, g.refinement_ratio, g.patch_size,
        _spectral_digest(spec),
    )


def spec_to_dict(spec: ProblemSpec) -> dict:
    """A JSON-able round-trippable form of a spec (request journaling)."""
    doc = {
        "grid": asdict(spec.grid),
        "rmcrt": asdict(spec.rmcrt),
        "scheduler": asdict(spec.scheduler),
    }
    if spec.spectral is not None:
        sp = asdict(spec.spectral)
        # JSON has no Infinity; band edges travel as repr strings
        sp["band_edges_um"] = [repr(e) for e in spec.spectral.band_edges_um]
        doc["spectral"] = sp
    return doc


def spec_from_dict(doc: dict) -> ProblemSpec:
    """Inverse of :func:`spec_to_dict`, with the same validation as
    :func:`parse_ups` (a journaled spec is untrusted input: the file
    may have been truncated or edited)."""
    try:
        spectral = None
        if doc.get("spectral") is not None:
            sp = dict(doc["spectral"])
            sp["band_edges_um"] = tuple(
                float(e) for e in sp.get("band_edges_um", ())
            )
            spectral = SpectralSpec(**sp)
        spec = ProblemSpec(
            grid=GridSpec(**doc.get("grid", {})),
            rmcrt=RMCRTSpec(**doc.get("rmcrt", {})),
            scheduler=SchedulerSpec(**doc.get("scheduler", {})),
            spectral=spectral,
        )
    except (TypeError, ValueError) as exc:
        raise ReproError(f"malformed spec document: {exc}") from None
    _validate(spec)
    return spec


def spec_to_ups(spec: ProblemSpec) -> str:
    """Emit a spec as UPS XML that :func:`parse_ups` round-trips.

    The fabric layer uses this to materialize journaled or
    programmatically-built specs back into spool request files — the
    wire format of the file-spool transport is UPS text, so anything
    that re-homes or regenerates requests needs the inverse of
    :func:`parse_ups`.
    """
    g, r, s = spec.grid, spec.rmcrt, spec.scheduler
    lines = ["<Uintah_specification>", "  <Grid>"]
    lines.append(f"    <resolution> {g.resolution} </resolution>")
    lines.append(f"    <levels> {g.levels} </levels>")
    lines.append(f"    <refinement_ratio> {g.refinement_ratio} </refinement_ratio>")
    if g.patch_size is not None:
        lines.append(f"    <patch_size> {g.patch_size} </patch_size>")
    lines.append("  </Grid>")
    lines.append("  <RMCRT>")
    lines.append(f"    <nDivQRays> {r.n_divq_rays} </nDivQRays>")
    lines.append(f"    <Threshold> {r.threshold!r} </Threshold>")
    lines.append(f"    <halo> {r.halo} </halo>")
    lines.append(f"    <allowReflect> {str(r.allow_reflect).lower()} </allowReflect>")
    lines.append(f"    <CCRays> {str(r.cc_rays).lower()} </CCRays>")
    lines.append(f"    <randomSeed> {r.random_seed} </randomSeed>")
    lines.append("  </RMCRT>")
    if spec.spectral is not None:
        sp = spec.spectral
        lines.append("  <Spectral>")
        lines.append(f"    <bands> {sp.bands} </bands>")
        if sp.band_edges_um:
            edges = " ".join(repr(e) for e in sp.band_edges_um)
            lines.append(f"    <bandEdges> {edges} </bandEdges>")
        lines.append(f"    <temperature> {sp.temperature!r} </temperature>")
        lines.append(
            f"    <kappaExponent> {sp.kappa_exponent!r} </kappaExponent>"
        )
        lines.append(f"    <emissivity> {sp.emissivity} </emissivity>")
        lines.append("  </Spectral>")
    lines.append(
        f'  <Scheduler type="{s.type}" ranks="{s.ranks}" '
        f'pool="{s.pool}" threads="{s.threads}"/>'
    )
    lines.append("</Uintah_specification>")
    return "\n".join(lines) + "\n"


def spec_fingerprint(spec: ProblemSpec) -> str:
    """Full content address of a solve: scene + RMCRT params + seed.

    Spectral specs carry a ``spectral`` key (the model digest) that
    gray specs never have — so even the gray-*limit* spectral spec,
    whose answer is bit-identical to the gray solve, addresses a
    distinct cache entry: the estimator is different machinery and the
    identity is an invariant we test, not an equivalence we assume.
    """
    r = spec.rmcrt
    params = {
        "nDivQRays": r.n_divq_rays,
        "Threshold": repr(r.threshold),
        "halo": r.halo,
        "allowReflect": r.allow_reflect,
        "CCRays": r.cc_rays,
        "randomSeed": r.random_seed,
    }
    sd = _spectral_digest(spec)
    if sd is not None:
        params["spectral"] = sd
    h = hashlib.sha256()
    h.update(scene_fingerprint(spec).encode())
    h.update(json.dumps(params, sort_keys=True).encode())
    return h.hexdigest()
