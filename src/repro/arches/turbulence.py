"""Subgrid turbulence closure.

ARCHES models subgrid velocity/species fluctuations with the dynamic
Smagorinsky closure (paper Section II.A). The lite version implements
the constant-coefficient Smagorinsky eddy viscosity

    nu_t = (Cs * Delta)^2 |S|,

which is the base model the dynamic procedure localizes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.arches.operators import strain_rate_magnitude
from repro.util.errors import ReproError


class SmagorinskyModel:
    def __init__(self, cs: float = 0.17) -> None:
        if not 0 < cs < 1:
            raise ReproError(f"Smagorinsky constant {cs} outside (0, 1)")
        self.cs = float(cs)

    def eddy_viscosity(
        self,
        velocity: Tuple[np.ndarray, np.ndarray, np.ndarray],
        dx: Sequence[float],
    ) -> np.ndarray:
        delta = (dx[0] * dx[1] * dx[2]) ** (1.0 / 3.0)
        return (self.cs * delta) ** 2 * strain_rate_magnitude(velocity, dx)

    def effective_diffusivity(
        self,
        velocity: Tuple[np.ndarray, np.ndarray, np.ndarray],
        dx: Sequence[float],
        molecular: float,
        prandtl_t: float = 0.9,
    ) -> np.ndarray:
        """Molecular + turbulent diffusivity for scalar transport."""
        return molecular + self.eddy_viscosity(velocity, dx) / prandtl_t
