"""Finite-volume spatial operators on a uniform collocated mesh.

Central differencing for diffusive terms, first-order upwinding for
advection (the flux-limited path in real ARCHES; upwind is its
monotone limit), with either periodic or fixed-value boundary rings.
All operators are fully vectorized (no Python loops over cells).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.util.errors import ReproError


def pad_field(field: np.ndarray, bc: str, value: float = 0.0) -> np.ndarray:
    """One ghost layer: 'periodic' wraps, 'fixed' holds ``value``,
    'neumann' copies the adjacent interior cell (zero-gradient)."""
    if bc == "periodic":
        return np.pad(field, 1, mode="wrap")
    if bc == "fixed":
        return np.pad(field, 1, mode="constant", constant_values=value)
    if bc == "neumann":
        return np.pad(field, 1, mode="edge")
    raise ReproError(f"unknown bc {bc!r}")


def laplacian(field: np.ndarray, dx: Sequence[float], bc: str = "neumann",
              bc_value: float = 0.0) -> np.ndarray:
    """7-point Laplacian."""
    g = pad_field(field, bc, bc_value)
    c = g[1:-1, 1:-1, 1:-1]
    out = (g[2:, 1:-1, 1:-1] - 2 * c + g[:-2, 1:-1, 1:-1]) / dx[0] ** 2
    out += (g[1:-1, 2:, 1:-1] - 2 * c + g[1:-1, :-2, 1:-1]) / dx[1] ** 2
    out += (g[1:-1, 1:-1, 2:] - 2 * c + g[1:-1, 1:-1, :-2]) / dx[2] ** 2
    return out


def gradient(field: np.ndarray, dx: Sequence[float], bc: str = "neumann",
             bc_value: float = 0.0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Second-order central gradient."""
    g = pad_field(field, bc, bc_value)
    gx = (g[2:, 1:-1, 1:-1] - g[:-2, 1:-1, 1:-1]) / (2 * dx[0])
    gy = (g[1:-1, 2:, 1:-1] - g[1:-1, :-2, 1:-1]) / (2 * dx[1])
    gz = (g[1:-1, 1:-1, 2:] - g[1:-1, 1:-1, :-2]) / (2 * dx[2])
    return gx, gy, gz


def divergence(u: np.ndarray, v: np.ndarray, w: np.ndarray,
               dx: Sequence[float], bc: str = "periodic") -> np.ndarray:
    """Central divergence of a collocated vector field."""
    gu = pad_field(u, bc)
    gv = pad_field(v, bc)
    gw = pad_field(w, bc)
    out = (gu[2:, 1:-1, 1:-1] - gu[:-2, 1:-1, 1:-1]) / (2 * dx[0])
    out += (gv[1:-1, 2:, 1:-1] - gv[1:-1, :-2, 1:-1]) / (2 * dx[1])
    out += (gw[1:-1, 1:-1, 2:] - gw[1:-1, 1:-1, :-2]) / (2 * dx[2])
    return out


def upwind_advection(
    scalar: np.ndarray,
    velocity: Tuple[np.ndarray, np.ndarray, np.ndarray],
    dx: Sequence[float],
    bc: str = "neumann",
    bc_value: float = 0.0,
) -> np.ndarray:
    """-(u . grad) phi with donor-cell upwinding (monotone)."""
    g = pad_field(scalar, bc, bc_value)
    c = g[1:-1, 1:-1, 1:-1]
    out = np.zeros_like(scalar)
    slabs = [
        (g[2:, 1:-1, 1:-1], g[:-2, 1:-1, 1:-1]),
        (g[1:-1, 2:, 1:-1], g[1:-1, :-2, 1:-1]),
        (g[1:-1, 1:-1, 2:], g[1:-1, 1:-1, :-2]),
    ]
    for d, (plus, minus) in enumerate(slabs):
        vel = velocity[d]
        fwd = (plus - c) / dx[d]     # use when vel < 0
        bwd = (c - minus) / dx[d]    # use when vel > 0
        out -= vel * np.where(vel > 0, bwd, fwd)
    return out


def strain_rate_magnitude(
    velocity: Tuple[np.ndarray, np.ndarray, np.ndarray],
    dx: Sequence[float],
    bc: str = "periodic",
) -> np.ndarray:
    """|S| = sqrt(2 S_ij S_ij) for the Smagorinsky model."""
    grads = [gradient(v, dx, bc=bc) for v in velocity]
    mag2 = np.zeros_like(velocity[0])
    for i in range(3):
        for j in range(3):
            sij = 0.5 * (grads[i][j] + grads[j][i])
            mag2 += 2.0 * sij * sij
    return np.sqrt(mag2)
