"""A miniature oxy-coal boiler scenario.

The CCMSC target problem (paper Section I): a boiler box with a hot
reacting core, soot-laden gas whose absorption coefficient peaks in the
flame region, and water-wall boundaries whose incident radiative flux
is *the* quantity of interest. This module builds the fields that
scenario hands to the radiation solver — the domain is a unit cube at
laptop resolutions, but every coupling surface matches the production
shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.grid.grid import Grid, build_two_level_grid
from repro.grid.level import Level
from repro.radiation.constants import SIGMA_SB
from repro.radiation.properties import RadiativeProperties
from repro.util.errors import ReproError


@dataclass
class BoilerScenario:
    """Hot-core boiler fields on a 2-level grid."""

    resolution: int = 32
    refinement_ratio: int = 4
    peak_temperature: float = 1800.0     #: flame core [K]
    ambient_temperature: float = 600.0   #: bulk gas [K]
    wall_temperature: float = 500.0      #: water walls [K]
    soot_kappa_peak: float = 0.8         #: absorption at the flame [1/m]
    soot_kappa_floor: float = 0.05
    inlet_velocity: float = 1.0          #: axial (z) jet speed [m/s]
    #: superheater tube bank: vertical tubes in the upper quarter of the
    #: box, modelled as INTRUSION cells at tube_temperature (the solid
    #: geometry rays terminate against — "the relative simplicity of the
    #: boiler geometry" the paper's replication choice relies on)
    tube_bank: bool = False
    tube_temperature: float = 700.0
    num_tubes: int = 3

    def __post_init__(self) -> None:
        if self.peak_temperature <= self.ambient_temperature:
            raise ReproError("flame core must be hotter than the bulk gas")
        if self.tube_bank and self.num_tubes < 1:
            raise ReproError("tube bank needs >= 1 tube")

    def grid(self, fine_patch_size=None) -> Grid:
        return build_two_level_grid(
            self.resolution,
            refinement_ratio=self.refinement_ratio,
            fine_patch_size=fine_patch_size,
        )

    # ------------------------------------------------------------------
    # fields
    # ------------------------------------------------------------------
    def _centered_coords(self, level: Level):
        x, y, z = level.cell_centers()
        return (
            x[:, None, None] - 0.5,
            y[None, :, None] - 0.5,
            z[None, None, :],
        )

    def temperature_field(self, level: Level) -> np.ndarray:
        """A rising-plume hot core: Gaussian in radius, peaking at
        1/3 height and decaying toward the outlet."""
        xc, yc, z = self._centered_coords(level)
        r2 = xc ** 2 + yc ** 2
        axial = np.exp(-((z - 0.33) ** 2) / (2 * 0.25 ** 2))
        core = np.exp(-r2 / (2 * 0.15 ** 2)) * axial
        return self.ambient_temperature + (
            self.peak_temperature - self.ambient_temperature
        ) * core

    def kappa_field(self, level: Level) -> np.ndarray:
        """Soot loading tracks the flame: kappa peaks where T does."""
        t = self.temperature_field(level)
        norm = (t - self.ambient_temperature) / (
            self.peak_temperature - self.ambient_temperature
        )
        return self.soot_kappa_floor + (
            self.soot_kappa_peak - self.soot_kappa_floor
        ) * norm

    def velocity_field(self, level: Level) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """An axial jet through the core, swirling weakly."""
        xc, yc, _ = self._centered_coords(level)
        r2 = xc ** 2 + yc ** 2
        jet = self.inlet_velocity * np.exp(-r2 / (2 * 0.2 ** 2))
        w = jet * np.ones(level.domain_box.extent[2])[None, None, :]
        swirl = 0.1 * self.inlet_velocity
        u = -swirl * yc * np.ones_like(w)
        v = swirl * xc * np.ones_like(w)
        return u, v, w

    def tube_regions(self, level: Level):
        """Index-space boxes of the tube bank on a level."""
        if not self.tube_bank:
            return []
        from repro.grid.box import Box

        n = level.domain_box.extent[0]
        width = max(1, n // 16)
        z_lo, z_hi = int(0.70 * n), min(n, int(0.70 * n) + max(2, n // 4))
        tubes = []
        for t in range(self.num_tubes):
            cx = int((t + 1) * n / (self.num_tubes + 1))
            tubes.append(
                Box(
                    (cx - width // 2, n // 2 - width // 2, z_lo),
                    (cx - width // 2 + width, n // 2 - width // 2 + width, z_hi),
                ).intersect(level.domain_box)
            )
        return tubes

    def _apply_tubes(self, props: RadiativeProperties, level: Level) -> None:
        from repro.grid.celltype import CellType
        from repro.radiation.constants import SIGMA_SB

        tube_st4 = SIGMA_SB * self.tube_temperature ** 4
        for region in self.tube_regions(level):
            if region.empty:
                continue
            sl = region.slices(origin=props.origin)
            props.cell_type[sl] = CellType.INTRUSION
            props.sigma_t4[sl] = tube_st4
            props.abskg[sl] = 1.0  # black tube surfaces (emissivity)

    def radiative_properties(self, level: Level) -> RadiativeProperties:
        props = RadiativeProperties.from_fields(
            level.domain_box,
            abskg=self.kappa_field(level),
            temperature=self.temperature_field(level),
            wall_temperature=self.wall_temperature,
            wall_emissivity=1.0,
        )
        self._apply_tubes(props, level)
        return props

    def properties_from_temperature(
        self, level: Level, temperature: np.ndarray
    ) -> RadiativeProperties:
        """Rebuild the radiation inputs from an evolved T field (the
        per-radiation-solve coupling step)."""
        props = RadiativeProperties.from_fields(
            level.domain_box,
            abskg=self.kappa_field(level),
            temperature=temperature,
            wall_temperature=self.wall_temperature,
            wall_emissivity=1.0,
        )
        self._apply_tubes(props, level)
        return props
