"""Low-Mach pressure projection (the Hypre solve stand-in).

ARCHES' low-Mach formulation requires a sparse pressure Poisson solve
every timestep, done with Hypre on the real machine (paper Section
II.A). Here: a 7-point periodic Laplacian assembled once per shape and
solved with scipy's conjugate gradient — same role, laptop scale.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.arches.operators import divergence, gradient
from repro.util.errors import ReproError


@lru_cache(maxsize=8)
def _periodic_laplacian(shape: Tuple[int, int, int], dx: Tuple[float, float, float]):
    """Assemble the periodic 7-point Laplacian (cached per shape)."""
    nx, ny, nz = shape
    n = nx * ny * nz

    def idx(i, j, k):
        return (i % nx) * ny * nz + (j % ny) * nz + (k % nz)

    rows, cols, vals = [], [], []
    inv2 = [1.0 / d ** 2 for d in dx]
    i, j, k = np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij")
    i, j, k = i.ravel(), j.ravel(), k.ravel()
    center = idx(i, j, k)
    diag = -2.0 * (inv2[0] + inv2[1] + inv2[2]) * np.ones(n)
    rows.append(center); cols.append(center); vals.append(diag)
    for d, (di, dj, dk) in enumerate([(1, 0, 0), (0, 1, 0), (0, 0, 1)]):
        for sgn in (+1, -1):
            nb = idx(i + sgn * di, j + sgn * dj, k + sgn * dk)
            rows.append(center); cols.append(nb)
            vals.append(np.full(n, inv2[d]))
    a = sp.csr_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    return a


class PressureProjection:
    """Make a collocated velocity field (discretely) divergence-free."""

    def __init__(self, dx: Sequence[float], rtol: float = 1e-8, maxiter: int = 2000):
        self.dx = tuple(float(v) for v in dx)
        self.rtol = float(rtol)
        self.maxiter = int(maxiter)
        self.last_iterations = 0

    def project(
        self,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Returns (u', v', w', p) with div(u') ~ 0 (periodic BCs)."""
        if u.shape != v.shape or v.shape != w.shape:
            raise ReproError("velocity components must share a shape")
        shape = u.shape
        rhs = divergence(u, v, w, self.dx, bc="periodic").ravel()
        rhs = rhs - rhs.mean()  # periodic Poisson solvability
        a = _periodic_laplacian(shape, self.dx)

        iters = [0]

        def count(_):
            iters[0] += 1

        p_flat, info = spla.cg(
            a, rhs, rtol=self.rtol, maxiter=self.maxiter, callback=count
        )
        if info > 0:
            raise ReproError(f"pressure CG failed to converge in {info} iterations")
        self.last_iterations = iters[0]
        p = p_flat.reshape(shape)
        gx, gy, gz = gradient(p, self.dx, bc="periodic")
        return u - gx, v - gy, w - gz, p
