"""ARCHES-lite: the minimal LES-style host code radiation couples into
— SSP-RK integrators, FV operators, pressure projection (Hypre
stand-in), Smagorinsky closure, the energy equation, and the coupled
boiler driver."""

from repro.arches.integrators import advance, get_integrator, ssp_rk1, ssp_rk2, ssp_rk3
from repro.arches.operators import (
    divergence,
    gradient,
    laplacian,
    pad_field,
    strain_rate_magnitude,
    upwind_advection,
)
from repro.arches.projection import PressureProjection
from repro.arches.turbulence import SmagorinskyModel
from repro.arches.energy import EnergyEquation
from repro.arches.momentum import MomentumSolver, taylor_green
from repro.arches.boiler import BoilerScenario
from repro.arches.coupled import CoupledResult, CoupledSimulation

__all__ = [
    "MomentumSolver",
    "taylor_green",
    "advance",
    "get_integrator",
    "ssp_rk1",
    "ssp_rk2",
    "ssp_rk3",
    "divergence",
    "gradient",
    "laplacian",
    "pad_field",
    "strain_rate_magnitude",
    "upwind_advection",
    "PressureProjection",
    "SmagorinskyModel",
    "EnergyEquation",
    "BoilerScenario",
    "CoupledResult",
    "CoupledSimulation",
]
