"""The thermal energy equation with a radiative source.

The coupling the whole paper exists to serve (Section III.A, eq. 1):

    rho*cv dT/dt = -rho*cv (u . grad)T + div(k grad T) + Q''' - div(q_r)

ARCHES solves this equation and feeds the temperature field to the
radiation model; RMCRT returns del.q_r, which closes the loop. The lite
solver treats rho*cv as constant, uses upwind advection + central
diffusion, and accepts any del.q field (typically from
:class:`repro.core.RMCRTSolver`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.arches.integrators import advance
from repro.arches.operators import laplacian, upwind_advection
from repro.util.errors import ReproError


@dataclass
class EnergyEquation:
    """dT/dt = advection + diffusion + (Q''' - div q_r) / (rho cv)."""

    dx: Tuple[float, float, float]
    rho_cv: float = 1.0
    conductivity: float = 1e-3
    rk_order: int = 2
    bc: str = "neumann"            #: 'neumann' (adiabatic) | 'fixed' walls
    wall_temperature: float = 0.0

    def __post_init__(self) -> None:
        if self.rho_cv <= 0 or self.conductivity < 0:
            raise ReproError("rho_cv must be > 0 and conductivity >= 0")

    def rhs(
        self,
        temperature: np.ndarray,
        velocity: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        divq: Optional[np.ndarray] = None,
        heat_source: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        out = (self.conductivity / self.rho_cv) * laplacian(
            temperature, self.dx, bc=self.bc, bc_value=self.wall_temperature
        )
        if velocity is not None:
            out += upwind_advection(
                temperature, velocity, self.dx, bc=self.bc,
                bc_value=self.wall_temperature,
            )
        if heat_source is not None:
            out += heat_source / self.rho_cv
        if divq is not None:
            out -= divq / self.rho_cv
        return out

    def step(
        self,
        temperature: np.ndarray,
        dt: float,
        velocity: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None,
        divq: Optional[np.ndarray] = None,
        heat_source: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One SSP-RK step (the radiative source held frozen across the
        stages — the time-scale separation of Section III.A)."""
        if dt <= 0:
            raise ReproError("dt must be positive")

        def f(t_field, _t):
            return self.rhs(t_field, velocity=velocity, divq=divq,
                            heat_source=heat_source)

        return advance(f, temperature, 0.0, dt, order=self.rk_order)

    def stable_dt(self, velocity=None, safety: float = 0.4) -> float:
        """CFL + diffusive stability bound."""
        diff = self.conductivity / self.rho_cv
        dt_diff = min(d ** 2 for d in self.dx) / (6.0 * diff) if diff > 0 else np.inf
        dt_adv = np.inf
        if velocity is not None:
            umax = max(float(np.abs(v).max()) for v in velocity)
            if umax > 0:
                dt_adv = min(self.dx) / umax
        return safety * min(dt_diff, dt_adv)
