"""The coupled CFD + radiation driver.

Reproduces the production loop of Section III.A: ARCHES advances the
energy equation every timestep; every ``radiation_interval`` steps the
temperature field is handed to RMCRT, which returns a fresh div(q_r)
that is then held frozen in the energy source until the next radiation
solve — the time-scale separation that makes the (expensive) radiation
solve affordable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.arches.boiler import BoilerScenario
from repro.arches.energy import EnergyEquation
from repro.core.solver import RMCRTSolver
from repro.util.errors import ReproError
from repro.util.timing import TimerRegistry


@dataclass
class CoupledResult:
    temperature: np.ndarray
    divq: np.ndarray
    times: List[float]
    mean_temperature_history: List[float]
    radiation_solves: int
    timers: TimerRegistry


class CoupledSimulation:
    """Energy transport + RMCRT radiation on a boiler scenario."""

    def __init__(
        self,
        scenario: Optional[BoilerScenario] = None,
        rays_per_cell: int = 16,
        radiation_interval: int = 5,
        rho_cv: float = 5e4,
        conductivity: float = 1.0,
        rk_order: int = 2,
        seed: int = 0,
        advect: bool = True,
    ) -> None:
        if radiation_interval < 1:
            raise ReproError("radiation_interval must be >= 1")
        self.scenario = scenario if scenario is not None else BoilerScenario()
        self.grid = self.scenario.grid()
        self.level = self.grid.finest_level
        self.radiation_interval = int(radiation_interval)
        self.advect = bool(advect)
        self.energy = EnergyEquation(
            dx=self.level.dx,
            rho_cv=rho_cv,
            conductivity=conductivity,
            rk_order=rk_order,
            bc="fixed",
            wall_temperature=self.scenario.wall_temperature,
        )
        self.solver = RMCRTSolver(rays_per_cell=rays_per_cell, seed=seed, halo=2)

    def run(self, num_steps: int, dt: Optional[float] = None) -> CoupledResult:
        timers = TimerRegistry()
        temperature = self.scenario.temperature_field(self.level)
        velocity = self.scenario.velocity_field(self.level) if self.advect else None
        if dt is None:
            dt = self.energy.stable_dt(velocity)
        divq = np.zeros_like(temperature)
        history: List[float] = []
        times: List[float] = []
        solves = 0
        t = 0.0
        for step in range(num_steps):
            if step % self.radiation_interval == 0:
                with timers("radiation"):
                    props = self.scenario.properties_from_temperature(
                        self.level, temperature
                    )
                    divq = self.solver.solve(self.grid, props).divq
                solves += 1
            with timers("energy"):
                temperature = self.energy.step(
                    temperature, dt, velocity=velocity, divq=divq
                )
            t += dt
            times.append(t)
            history.append(float(temperature.mean()))
        return CoupledResult(
            temperature=temperature,
            divq=divq,
            times=times,
            mean_temperature_history=history,
            radiation_solves=solves,
            timers=timers,
        )
