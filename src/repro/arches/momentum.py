"""Incompressible momentum transport.

Completes the ARCHES-lite low-Mach solution procedure (paper Section
II.A): advect and diffuse the velocity field (molecular plus optional
Smagorinsky eddy viscosity), then project onto the divergence-free
space through the pressure Poisson solve — advection/diffusion with
SSP-RK, projection once per step, periodic boundaries (the projection
operator's domain).

Verification: a single diffusing Fourier mode decays at exactly
exp(-nu k^2 t), and the Taylor-Green vortex decays monotonically at no
less than its viscous rate (upwind advection adds numerical
dissipation, never energy) — both pinned in tests/test_momentum.py.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.arches.integrators import advance
from repro.arches.operators import divergence, laplacian, upwind_advection
from repro.arches.projection import PressureProjection
from repro.arches.turbulence import SmagorinskyModel
from repro.util.errors import ReproError

Velocity = Tuple[np.ndarray, np.ndarray, np.ndarray]


class MomentumSolver:
    """Periodic incompressible momentum: advance + project."""

    def __init__(
        self,
        dx: Tuple[float, float, float],
        viscosity: float = 1e-2,
        smagorinsky: Optional[SmagorinskyModel] = None,
        rk_order: int = 2,
        projection_rtol: float = 1e-8,
    ) -> None:
        if viscosity < 0:
            raise ReproError("viscosity must be >= 0")
        self.dx = tuple(float(v) for v in dx)
        self.viscosity = float(viscosity)
        self.smagorinsky = smagorinsky
        self.rk_order = int(rk_order)
        self.projection = PressureProjection(self.dx, rtol=projection_rtol)
        self.last_pressure: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def rhs(self, velocity: Velocity) -> Velocity:
        """d(u_i)/dt from advection + (molecular + eddy) diffusion."""
        nu = self.viscosity
        if self.smagorinsky is not None:
            nu = nu + self.smagorinsky.eddy_viscosity(velocity, self.dx)
        out = []
        for comp in velocity:
            adv = upwind_advection(comp, velocity, self.dx, bc="periodic")
            diff = nu * laplacian(comp, self.dx, bc="periodic")
            out.append(adv + diff)
        return tuple(out)  # type: ignore[return-value]

    def step(self, velocity: Velocity, dt: float) -> Tuple[Velocity, np.ndarray]:
        """One timestep; returns (projected velocity, pressure)."""
        if dt <= 0:
            raise ReproError("dt must be positive")
        shapes = {v.shape for v in velocity}
        if len(shapes) != 1:
            raise ReproError("velocity components must share a shape")

        packed = np.stack(velocity)

        def f(state, _t):
            rhs = self.rhs((state[0], state[1], state[2]))
            return np.stack(rhs)

        advanced = advance(f, packed, 0.0, dt, order=self.rk_order)
        u, v, w, p = self.projection.project(advanced[0], advanced[1], advanced[2])
        self.last_pressure = p
        return (u, v, w), p

    def stable_dt(self, velocity: Velocity, safety: float = 0.4) -> float:
        umax = max(float(np.abs(c).max()) for c in velocity)
        dt_adv = min(self.dx) / umax if umax > 0 else np.inf
        nu = self.viscosity
        if self.smagorinsky is not None:
            nu = nu + float(self.smagorinsky.eddy_viscosity(velocity, self.dx).max())
        dt_diff = min(d ** 2 for d in self.dx) / (6.0 * nu) if nu > 0 else np.inf
        return safety * min(dt_adv, dt_diff)

    # ------------------------------------------------------------------
    def kinetic_energy(self, velocity: Velocity) -> float:
        """Domain-integrated KE per unit density (cell sum x dV)."""
        dv = self.dx[0] * self.dx[1] * self.dx[2]
        return 0.5 * dv * float(sum((c ** 2).sum() for c in velocity))

    def max_divergence(self, velocity: Velocity) -> float:
        return float(np.abs(divergence(*velocity, self.dx, bc="periodic")).max())


def taylor_green(n: int, amplitude: float = 1.0) -> Tuple[Velocity, Tuple[float, float, float]]:
    """The 2-D Taylor-Green vortex on a periodic [0, 2*pi)^3 grid.

    u =  A sin(x) cos(y), v = -A cos(x) sin(y), w = 0 — an exact
    Navier-Stokes solution decaying as exp(-2 nu t).
    """
    x = np.linspace(0, 2 * np.pi, n, endpoint=False)
    X, Y, _ = np.meshgrid(x, x, x, indexing="ij")
    u = amplitude * np.sin(X) * np.cos(Y)
    v = -amplitude * np.cos(X) * np.sin(Y)
    w = np.zeros_like(u)
    return (u, v, w), (2 * np.pi / n,) * 3
