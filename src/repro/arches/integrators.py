"""Strong-stability-preserving Runge-Kutta time integrators.

ARCHES integrates its discretized transport equations with explicit
SSP RK2/RK3 (paper Section II.A, ref [22] Gottlieb, Shu & Tadmor).
The integrators operate on plain ndarrays (or tuples of them) and a
right-hand-side callable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.util.errors import ReproError

State = np.ndarray
RHS = Callable[[State, float], State]


def ssp_rk1(rhs: RHS, u: State, t: float, dt: float) -> State:
    """Forward Euler (the building block; exposed for tests)."""
    return u + dt * rhs(u, t)


def ssp_rk2(rhs: RHS, u: State, t: float, dt: float) -> State:
    """Two-stage second-order SSP (Heun): u1 = u + dt L(u);
    u_{n+1} = (u + u1 + dt L(u1)) / 2."""
    u1 = u + dt * rhs(u, t)
    return 0.5 * (u + u1 + dt * rhs(u1, t + dt))


def ssp_rk3(rhs: RHS, u: State, t: float, dt: float) -> State:
    """Three-stage third-order SSP (Shu-Osher)."""
    u1 = u + dt * rhs(u, t)
    u2 = 0.75 * u + 0.25 * (u1 + dt * rhs(u1, t + dt))
    return (u + 2.0 * (u2 + dt * rhs(u2, t + 0.5 * dt))) / 3.0


_INTEGRATORS = {1: ssp_rk1, 2: ssp_rk2, 3: ssp_rk3}


def get_integrator(order: int) -> Callable[[RHS, State, float, float], State]:
    try:
        return _INTEGRATORS[order]
    except KeyError:
        raise ReproError(f"no SSP-RK integrator of order {order} (use 1, 2, 3)") from None


def advance(rhs: RHS, u: State, t: float, dt: float, order: int = 2) -> State:
    return get_integrator(order)(rhs, u, t, dt)
