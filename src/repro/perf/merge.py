"""Stitch per-rank trace files into one cross-rank Chrome trace.

A production MPI job writes one trace file per rank; nothing in a
single file says which recv on rank 3 was caused by which send on rank
0. This module restores that story: :func:`write_rank_traces` splits a
recording into per-rank files (what a real per-rank writer would have
produced), and :func:`merge_traces` reads them back, gives every rank
its own ``pid`` (its own process group in the viewer), pairs the
send-side flow starts (``ph: "s"``) with the recv-side flow finishes
(``ph: "f"``) by flow id, and writes one merged trace in which the
viewer draws a message arrow for every matched pair.

The merge is also the audit: its stats report how many send/recv span
pairs exist, how many are connected by a complete flow, and the
connected fraction — the acceptance gate for causal-tracing coverage.
:func:`validate_chrome_trace` is the schema check both tests and the
CLI run over any produced trace.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.atomic import atomic_write_text
from repro.util.errors import PerfError

#: event keys every Chrome trace event must carry
REQUIRED_KEYS = frozenset({"name", "ph", "ts", "pid", "tid"})

#: the driver thread's timeline row in profile recordings (far above
#: any rank tid) — kept in its own per-"rank" file named ``driver``
DRIVER_LABEL = "driver"


def split_events_by_rank(
    events: Iterable[dict], num_ranks: int
) -> Dict[str, List[dict]]:
    """Partition one recording into per-rank event lists.

    Events on tids ``0..num_ranks-1`` (the scheduler pins rank threads
    there) belong to that rank; everything else (driver lane, worker
    threads) lands in the ``driver`` group. Metadata events follow
    their tid like any other event.
    """
    if num_ranks < 1:
        raise PerfError(f"num_ranks must be >= 1, got {num_ranks}")
    groups: Dict[str, List[dict]] = {str(r): [] for r in range(num_ranks)}
    groups[DRIVER_LABEL] = []
    for event in events:
        tid = event.get("tid", 0)
        key = str(tid) if isinstance(tid, int) and 0 <= tid < num_ranks else DRIVER_LABEL
        groups[key].append(event)
    return groups


def rank_trace_path(directory, label: str, prefix: str = "trace_rank") -> Path:
    return Path(directory) / f"{prefix}{label}.json"


def write_rank_traces(
    events: Iterable[dict],
    num_ranks: int,
    directory=".",
    prefix: str = "trace_rank",
) -> List[Path]:
    """Write one ``trace_rank<k>.json`` per rank (plus the driver file);
    returns the written paths in rank order."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for label, group in split_events_by_rank(events, num_ranks).items():
        path = rank_trace_path(directory, label, prefix)
        atomic_write_text(path, json.dumps(group, indent=1) + "\n")
        paths.append(path)
    return paths


def _rank_label(path: Path, prefix: str) -> str:
    stem = path.stem
    return stem[len(prefix):] if stem.startswith(prefix) else stem


def merge_traces(
    paths: Sequence,
    out_path=None,
    prefix: str = "trace_rank",
) -> Tuple[List[dict], dict]:
    """Merge per-rank trace files into one cross-rank trace.

    Each input file becomes its own ``pid`` (numeric rank labels keep
    ``pid == rank``; other files get pids above every rank), gets a
    ``process_name`` metadata event, and contributes its events
    unchanged otherwise — timestamps are already comparable because
    per-rank tracers share one clock base. Flow starts and finishes
    are then paired by ``id``; an unpaired flow event is dropped from
    the merged output (a dangling arrow endpoint renders as viewer
    garbage) but counted in the stats.

    Returns ``(events, stats)`` and, when ``out_path`` is given, writes
    the merged trace there atomically.
    """
    if not paths:
        raise PerfError("merge_traces needs >= 1 per-rank trace file")
    per_file: List[Tuple[str, List[dict]]] = []
    empty_files = 0
    for p in paths:
        path = Path(p)
        try:
            text = path.read_text()
        except OSError as exc:
            raise PerfError(f"unreadable per-rank trace {path}: {exc}") from exc
        if not text.strip():
            # a rank that died before flushing leaves a zero-byte file;
            # its lane is simply empty in the merged view
            empty_files += 1
            per_file.append((_rank_label(path, prefix), []))
            continue
        try:
            events = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PerfError(f"unreadable per-rank trace {path}: {exc}") from exc
        if not isinstance(events, list):
            raise PerfError(f"per-rank trace {path} is not a JSON array")
        per_file.append((_rank_label(path, prefix), events))

    numeric = sorted(int(lbl) for lbl, _ in per_file if lbl.isdigit())
    next_pid = (numeric[-1] + 1) if numeric else 0
    merged: List[dict] = []
    starts: Dict[str, List[dict]] = {}
    finishes: Dict[str, List[dict]] = {}
    send_spans = 0
    recv_spans = 0
    for label, events in per_file:
        if label.isdigit():
            pid = int(label)
        else:
            pid = next_pid
            next_pid += 1
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": f"rank {label}" if label.isdigit() else label},
            }
        )
        for event in events:
            event = dict(event)
            event["pid"] = pid
            ph = event.get("ph")
            if ph == "s":
                starts.setdefault(str(event.get("id")), []).append(event)
            elif ph == "f":
                finishes.setdefault(str(event.get("id")), []).append(event)
            else:
                if ph == "X":
                    if event.get("name") == "comm.send":
                        send_spans += 1
                    elif event.get("name") == "comm.recv":
                        recv_spans += 1
                merged.append(event)

    matched = 0
    for flow_id, start_events in starts.items():
        finish_events = finishes.get(flow_id, [])
        pairs = min(len(start_events), len(finish_events))
        matched += pairs
        merged.extend(start_events[:pairs])
        merged.extend(finish_events[:pairs])
    total_starts = sum(len(v) for v in starts.values())
    total_finishes = sum(len(v) for v in finishes.values())
    unmatched_starts = total_starts - matched
    unmatched_finishes = total_finishes - matched
    merged.sort(key=lambda e: (e.get("ph") != "M", e.get("ts", 0)))

    span_pairs = min(send_spans, recv_spans)
    stats = {
        "files": len(per_file),
        "empty_files": empty_files,
        "events": len(merged),
        "flow_pairs": matched,
        "unmatched_flow_events": unmatched_starts + unmatched_finishes,
        "unmatched_flow_starts": unmatched_starts,
        "unmatched_flow_finishes": unmatched_finishes,
        "send_spans": send_spans,
        "recv_spans": recv_spans,
        "connected_fraction": (matched / span_pairs) if span_pairs else 1.0,
    }
    if out_path is not None:
        atomic_write_text(out_path, json.dumps(merged, indent=1) + "\n")
    return merged, stats


def validate_chrome_trace(events: Iterable[dict]) -> List[str]:
    """Schema-check a trace-event list; returns the problems found.

    Checks the required keys on every event, ``dur`` on complete
    events, ``id`` on flow events, and that every flow id has both its
    start and its finish — the pairing contract
    :func:`merge_traces` guarantees for its own output.
    """
    problems: List[str] = []
    flow_starts: Dict[str, int] = {}
    flow_finishes: Dict[str, int] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        missing = REQUIRED_KEYS - set(event)
        if missing:
            problems.append(f"event {i} ({event.get('name')!r}): missing {sorted(missing)}")
        ph = event.get("ph")
        if ph == "X" and "dur" not in event:
            problems.append(f"event {i} ({event.get('name')!r}): complete event without dur")
        if ph in ("s", "f"):
            if "id" not in event:
                problems.append(f"event {i}: flow event without id")
            else:
                fid = str(event["id"])
                if ph == "s":
                    flow_starts[fid] = flow_starts.get(fid, 0) + 1
                else:
                    flow_finishes[fid] = flow_finishes.get(fid, 0) + 1
    for fid, n in flow_starts.items():
        if flow_finishes.get(fid, 0) != n:
            problems.append(
                f"flow id {fid}: {n} start(s) but {flow_finishes.get(fid, 0)} finish(es)"
            )
    for fid, n in flow_finishes.items():
        if fid not in flow_starts:
            problems.append(f"flow id {fid}: {n} finish(es) with no start")
    return problems
