"""The runtime metrics registry.

Uintah's RuntimeStats give every component a place to publish what it
did — how many tasks ran, how many messages retired, how much memory
the allocators hold. This module provides that publishing surface for
the whole reproduction: a thread-safe registry of **counters**
(monotone totals), **gauges** (point-in-time levels), and
**histograms** (distributions), each optionally carrying labels so one
metric name can hold several series (``comm.pool.retired{pool=waitfree,
rank=3}``).

Publishers either hold a :class:`MetricsRegistry` explicitly or fall
back to the process-wide default (:func:`get_metrics`); hot paths keep
plain integer counters locally and flush them in one
``publish_metrics`` call, so instrumentation never sits on the inner
loop.
"""

from __future__ import annotations

import contextlib
import json
import math
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.util.errors import PerfError

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, object]) -> LabelItems:
    """Canonical, hashable form: sorted (key, str(value)) pairs."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Metric:
    """Base series: a (name, labels) pair with a value lock."""

    kind = "metric"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self._labels = labels
        self._lock = threading.Lock()

    @property
    def labels(self) -> Dict[str, str]:
        return dict(self._labels)

    def as_dict(self) -> dict:
        raise NotImplementedError

    def __repr__(self) -> str:
        lbl = ",".join(f"{k}={v}" for k, v in self._labels)
        return f"<{type(self).__name__} {self.name}{{{lbl}}}>"


class Counter(Metric):
    """A monotone total (rays traced, messages retired, slot scans)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise PerfError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += amount

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self.value}


class Gauge(Metric):
    """A level that moves both ways (footprint, outstanding buffers)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def as_dict(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self.value}


#: default histogram bucket upper bounds: ~exponential, unit-agnostic
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4,
)


class Histogram(Metric):
    """A distribution with cumulative buckets plus min/max/sum/count."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise PerfError(f"histogram {self.name!r} needs >= 1 bucket bound")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)  # +overflow
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile by linear interpolation within
        the bucket holding the target rank (the Prometheus
        ``histogram_quantile`` scheme).

        Resolution is bucket-bounded by construction; the estimate is
        clamped to the observed ``[min, max]`` so sparse tails cannot
        report values outside the data. None when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise PerfError(f"quantile q must be in [0, 1], got {q}")
        with self._lock:
            if not self.count:
                return None
            target = q * self.count
            cumulative = 0
            lo = 0.0
            for bound, in_bucket in zip(self.bounds, self.bucket_counts):
                if cumulative + in_bucket >= target and in_bucket:
                    frac = (target - cumulative) / in_bucket
                    value = lo + frac * (bound - lo)
                    return min(max(value, self.min), self.max)
                cumulative += in_bucket
                lo = bound
            # target lies in the overflow bucket: best upper estimate
            # is the observed maximum
            return self.max

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "labels": self.labels,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [
                {"le": b, "count": c}
                for b, c in zip(self.bounds, self.bucket_counts)
            ]
            + [{"le": None, "count": self.bucket_counts[-1]}],
        }


class MetricsRegistry:
    """All live metric series, keyed by (name, labels).

    ``registry.counter("x", pool="waitfree")`` returns (creating on
    first use) the counter series with exactly those labels; the same
    name with different labels is a distinct series, and reusing a name
    with a different metric *kind* is an error — label sets partition a
    name, kinds may not.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelItems], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Mapping[str, object], **kw):
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._series.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise PerfError(
                        f"metric {name!r} already registered as a {kind}, "
                        f"cannot re-register as a {cls.kind}"
                    )
                metric = cls(name, key[1], **kw)
                self._series[key] = metric
                self._kinds[name] = cls.kind
            elif not isinstance(metric, cls):
                raise PerfError(
                    f"metric {name!r} already registered as a "
                    f"{metric.kind}, cannot re-register as a {cls.kind}"
                )
            return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Optional[Iterable[float]] = None, **labels
    ) -> Histogram:
        kw = {} if buckets is None else {"buckets": buckets}
        return self._get_or_create(Histogram, name, labels, **kw)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __iter__(self):
        with self._lock:
            return iter(list(self._series.values()))

    def series(self, name: str) -> List[Metric]:
        """All label-variants of one metric name."""
        with self._lock:
            return [m for (n, _), m in self._series.items() if n == name]

    def value(self, name: str, **labels) -> float:
        """The value of one counter/gauge series (0 if absent)."""
        key = (name, _label_items(labels))
        with self._lock:
            metric = self._series.get(key)
        if metric is None:
            return 0.0
        return getattr(metric, "value", 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter/gauge name's value across all label sets."""
        return sum(getattr(m, "value", 0.0) for m in self.series(name))

    def reset(self) -> None:
        """Drop every series and kind registration.

        Long-lived service processes (and repeated in-process tests)
        call this between workloads so one run's series never bleed
        into the next snapshot; publishers recreate their series on
        first use afterwards.
        """
        with self._lock:
            self._series.clear()
            self._kinds.clear()

    #: alias — ``clear`` matches the container idiom used elsewhere
    #: (SpanTracer.clear, dict.clear)
    clear = reset

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        out: Dict[str, List[dict]] = {"counters": [], "gauges": [], "histograms": []}
        for metric in self:
            out[metric.kind + "s"].append(metric.as_dict())
        for group in out.values():
            group.sort(key=lambda d: (d["name"], sorted(d["labels"].items())))
        return out

    def write(self, path) -> None:
        """Dump all series as a ``metrics.json`` document, atomically
        (write-then-rename), so concurrent readers never see a torn
        snapshot."""
        from repro.util.atomic import atomic_write_text

        atomic_write_text(
            path, json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )


# ----------------------------------------------------------------------
# the process-wide default registry
# ----------------------------------------------------------------------
_global_metrics = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry (publishers' fallback)."""
    return _global_metrics


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _global_metrics
    previous = _global_metrics
    _global_metrics = registry
    return previous


def reset_metrics() -> None:
    """Clear every series in the default registry (test isolation)."""
    _global_metrics.reset()


@contextlib.contextmanager
def timed(registry: Optional[MetricsRegistry], name: str, **labels):
    """Time a block into ``<name>.seconds``.

    Observes the wall-clock duration in a histogram and mirrors the
    last duration in a gauge (``<name>.last_seconds``) so dashboards
    can show both the distribution and the most recent cost. A ``None``
    registry falls back to the process default, so call sites never
    need their own guard.
    """
    reg = registry if registry is not None else get_metrics()
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        reg.histogram(f"{name}.seconds", **labels).observe(elapsed)
        reg.gauge(f"{name}.last_seconds", **labels).set(elapsed)
