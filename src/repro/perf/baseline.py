"""Perf regression gate: compare fresh BENCH artifacts against baselines.

Every benchmark script writes a ``BENCH_<name>.json`` artifact (see
:mod:`repro.perf.harness`). This module turns a *pair* of those
artifact sets — a committed baseline under ``benchmarks/baselines/``
and a fresh run — into a verdict:

* rows are matched by their identity columns (strings and integer
  parameters such as ``pool``/``threads``/``patch``);
* float columns are metrics, classified **lower-is-better** (times:
  ``mean_s``, ``us_per_message``) or **higher-is-better** (rates:
  ``messages_per_s``, ``cell_rays_per_s``, ``speedup``) by name;
* each metric is compared as a current/baseline ratio, normalised to
  a **slowdown factor** (>1 means slower regardless of direction);
* the verdict is *noise-aware*: one jittery row does not fail the
  gate. A regression is **confirmed** when a benchmark's geometric
  mean slowdown exceeds the tolerance (default 2.5x — committed
  baselines come from a different machine) or any single metric blows
  past the hard limit (default 6x). Thread-contention benchmarks on
  shared CI runners routinely swing 2-3x on one row; a real slowdown
  moves *every* row, and the geomean sees the difference.

The output is ``regression_report.json`` plus a pass/fail exit code:
the CI ``perf-gate`` job. ``--inject-slowdown F`` multiplies the fresh
run's time metrics by ``F`` (and divides its rates) before comparing —
the gate's self-test, proving it actually fails when the tree gets
slower (``--expect-regression`` inverts the exit code for that leg).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.util.errors import PerfError

#: Substrings marking a metric as higher-is-better (checked first —
#: ``cell_rays_per_s`` must not fall through to the ``_s`` time rule).
HIGHER_IS_BETTER = ("per_s", "per_sec", "throughput", "speedup", "hit_rate")

#: Substring / suffix rules for lower-is-better metrics (times).
LOWER_IS_BETTER = ("us_per", "ns_per", "ms_per", "latency", "seconds", "time")

#: Below this absolute baseline value a ratio is all noise — skip.
MIN_MEANINGFUL_BASELINE = 1e-9


def metric_direction(name: str) -> Optional[str]:
    """Classify a column name: ``"higher"``, ``"lower"``, or ``None``."""
    low = name.lower()
    if any(h in low for h in HIGHER_IS_BETTER):
        return "higher"
    if any(h in low for h in LOWER_IS_BETTER) or low.endswith("_s"):
        return "lower"
    return None


def row_key(row: Mapping) -> Tuple:
    """A row's identity: its non-metric columns, sorted.

    Strings and bools always key; ints key unless their name reads as
    a metric (``threads``/``patch`` are parameters, a hypothetical
    integer ``time_ms`` is not). Floats are never identity.
    """
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or isinstance(v, bool):
            parts.append((k, v))
        elif isinstance(v, int) and metric_direction(k) is None:
            parts.append((k, v))
    return tuple(parts)


def _metrics(row: Mapping) -> Dict[str, float]:
    out = {}
    for k, v in row.items():
        if isinstance(v, bool):
            continue
        if isinstance(v, (int, float)) and metric_direction(k) is not None:
            out[k] = float(v)
    return out


def load_artifact(path) -> dict:
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise PerfError(f"unreadable bench artifact {path}: {exc}") from exc
    if not isinstance(payload, dict) or "rows" not in payload:
        raise PerfError(f"{path} is not a BENCH artifact (no rows)")
    return payload


def inject_slowdown(payload: dict, factor: float) -> dict:
    """Return a copy of *payload* made ``factor``x slower.

    Time metrics are multiplied, rate metrics divided — the synthetic
    regression the gate's self-test must catch.
    """
    if factor <= 0:
        raise PerfError(f"slowdown factor must be positive, got {factor}")
    slowed = json.loads(json.dumps(payload))
    for row in slowed.get("rows", []):
        for k, v in list(row.items()):
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                continue
            direction = metric_direction(k)
            if direction == "lower":
                row[k] = float(v) * factor
            elif direction == "higher":
                row[k] = float(v) / factor
    return slowed


def compare_artifacts(
    baseline: dict,
    current: dict,
    *,
    tolerance: float = 2.5,
) -> List[dict]:
    """Compare every matched (row, metric) pair; return comparisons.

    ``ratio`` is always current/baseline; ``slowdown`` normalises it
    so >1 means *slower* for both directions. A single metric past the
    tolerance is only a ``suspect`` — confirmation happens bench-wide
    in :func:`summarize_bench`.
    """
    if tolerance <= 1.0:
        raise PerfError(f"tolerance must exceed 1.0, got {tolerance}")
    base_rows = {row_key(r): r for r in baseline.get("rows", [])}
    comparisons: List[dict] = []
    name = current.get("name") or baseline.get("name") or "?"
    for row in current.get("rows", []):
        key = row_key(row)
        base = base_rows.get(key)
        if base is None:
            comparisons.append({
                "bench": name,
                "row": dict(key),
                "metric": None,
                "status": "new-row",
            })
            continue
        base_metrics = _metrics(base)
        for metric, value in _metrics(row).items():
            ref = base_metrics.get(metric)
            if ref is None:
                continue
            direction = metric_direction(metric)
            if abs(ref) < MIN_MEANINGFUL_BASELINE or ref < 0 or value <= 0:
                status, ratio, slowdown = "skipped", None, None
            else:
                ratio = value / ref
                slowdown = ratio if direction == "lower" else 1.0 / ratio
                status = "suspect" if slowdown > tolerance else "ok"
            comparisons.append({
                "bench": name,
                "row": dict(key),
                "metric": metric,
                "direction": direction,
                "baseline": ref,
                "current": value,
                "ratio": ratio,
                "slowdown": slowdown,
                "status": status,
            })
    return comparisons


def summarize_bench(
    name: str,
    comparisons: Sequence[Mapping],
    *,
    tolerance: float = 2.5,
    hard_limit: float = 6.0,
) -> dict:
    """Fold one benchmark's comparisons into a confirmed/clean verdict.

    Confirmed when the geometric mean slowdown exceeds *tolerance*
    (every row got slower — that is not noise) or any single metric
    exceeds *hard_limit* (one kernel fell off a cliff).
    """
    factors = [
        c["slowdown"]
        for c in comparisons
        if c["bench"] == name and c.get("slowdown") is not None
    ]
    suspects = [
        c for c in comparisons
        if c["bench"] == name and c["status"] == "suspect"
    ]
    geomean = None
    if factors:
        geomean = math.exp(sum(math.log(f) for f in factors) / len(factors))
    worst = max(factors) if factors else None
    confirmed = bool(
        (geomean is not None and geomean > tolerance)
        or (worst is not None and worst > hard_limit)
    )
    return {
        "bench": name,
        "metrics_compared": len(factors),
        "suspects": len(suspects),
        "geomean_slowdown": geomean,
        "worst_slowdown": worst,
        "confirmed_regression": confirmed,
    }


def discover_artifacts(directory) -> List[Path]:
    return sorted(Path(directory).glob("BENCH_*.json"))


def run_gate(
    current_dir,
    baseline_dir,
    *,
    tolerance: float = 2.5,
    hard_limit: float = 6.0,
    slowdown: Optional[float] = None,
    out_path=None,
    names: Optional[Sequence[str]] = None,
) -> dict:
    """Compare every baseline artifact against its fresh counterpart.

    A baseline with no fresh artifact is itself a failure — a
    benchmark silently vanishing must not read as "no regressions".
    Returns the report dict (also written to *out_path* atomically).
    """
    baseline_dir = Path(baseline_dir)
    current_dir = Path(current_dir)
    baselines = discover_artifacts(baseline_dir)
    if names:
        wanted = {f"BENCH_{n}.json" for n in names}
        baselines = [p for p in baselines if p.name in wanted]
    if not baselines:
        raise PerfError(f"no BENCH_*.json baselines under {baseline_dir}")

    comparisons: List[dict] = []
    benches: List[dict] = []
    missing: List[str] = []
    for base_path in baselines:
        cur_path = current_dir / base_path.name
        if not cur_path.exists():
            missing.append(base_path.name)
            continue
        base = load_artifact(base_path)
        cur = load_artifact(cur_path)
        if slowdown is not None:
            cur = inject_slowdown(cur, slowdown)
        cmp = compare_artifacts(base, cur, tolerance=tolerance)
        comparisons.extend(cmp)
        bench_name = cur.get("name") or base.get("name") or base_path.stem
        benches.append(
            summarize_bench(
                bench_name, cmp, tolerance=tolerance, hard_limit=hard_limit
            )
        )

    regressions = [b for b in benches if b["confirmed_regression"]]
    suspects = [c for c in comparisons if c["status"] == "suspect"]
    report = {
        "schema": 1,
        "tolerance": tolerance,
        "hard_limit": hard_limit,
        "injected_slowdown": slowdown,
        "baseline_dir": str(baseline_dir),
        "current_dir": str(current_dir),
        "artifacts_compared": len(baselines) - len(missing),
        "missing_artifacts": missing,
        "comparisons": len(comparisons),
        "benches": benches,
        "suspects": suspects,
        "regressions": regressions,
        "passed": not regressions and not missing,
    }
    if out_path is not None:
        from repro.util.atomic import atomic_write_text

        atomic_write_text(out_path, json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> str:
    verdict = "PASS" if report["passed"] else "FAIL"
    lines = [
        f"perf gate: {verdict}  "
        f"({report['comparisons']} comparisons across "
        f"{report['artifacts_compared']} artifact(s), "
        f"tolerance {report['tolerance']}x geomean, "
        f"hard limit {report['hard_limit']}x"
        + (f", injected slowdown {report['injected_slowdown']}x"
           if report.get("injected_slowdown") else "")
        + ")",
    ]
    for name in report.get("missing_artifacts", []):
        lines.append(f"  MISSING: {name} has a baseline but no fresh run")
    for b in report.get("benches", []):
        state = "REGRESSION" if b["confirmed_regression"] else "ok"
        geo = b["geomean_slowdown"]
        worst = b["worst_slowdown"]
        lines.append(
            f"  {b['bench']:<24} {state:<10} "
            f"geomean {geo:.2f}x, worst {worst:.2f}x, "
            f"{b['suspects']}/{b['metrics_compared']} suspect metric(s)"
            if geo is not None and worst is not None
            else f"  {b['bench']:<24} {state:<10} no comparable metrics"
        )
    for c in report.get("suspects", []):
        row = " ".join(f"{k}={v}" for k, v in sorted(c["row"].items()))
        lines.append(
            f"    suspect: {c['bench']} [{row}] {c['metric']} "
            f"{c['baseline']:.4g} -> {c['current']:.4g} "
            f"({c['slowdown']:.2f}x slower, {c['direction']}-is-better)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro perfgate",
        description="Compare fresh BENCH_<name>.json artifacts against "
        "committed baselines; fail on regression.",
    )
    parser.add_argument(
        "--bench-dir", default=".", help="directory with fresh artifacts"
    )
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory with committed baseline artifacts",
    )
    parser.add_argument("--tolerance", type=float, default=2.5)
    parser.add_argument(
        "--hard-limit",
        type=float,
        default=6.0,
        help="any single metric this many times slower confirms on its own",
    )
    parser.add_argument(
        "--inject-slowdown",
        type=float,
        default=None,
        metavar="F",
        help="self-test: make the fresh run F times slower before comparing",
    )
    parser.add_argument("--out", default="regression_report.json")
    parser.add_argument(
        "--name",
        action="append",
        dest="names",
        help="only gate this benchmark (repeatable)",
    )
    parser.add_argument(
        "--expect-regression",
        action="store_true",
        help="invert the exit code: succeed only if a regression was found "
        "(the self-test leg)",
    )
    args = parser.parse_args(argv)

    try:
        report = run_gate(
            args.bench_dir,
            args.baseline_dir,
            tolerance=args.tolerance,
            hard_limit=args.hard_limit,
            slowdown=args.inject_slowdown,
            out_path=args.out,
            names=args.names,
        )
    except PerfError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_report(report))
    if args.expect_regression:
        if report["passed"]:
            print(
                "error: expected the gate to detect a regression, "
                "but it passed",
                file=sys.stderr,
            )
            return 1
        print("self-test ok: injected regression was detected")
        return 0
    return 0 if report["passed"] else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
