"""Per-rank runtime-stats reduction, Uintah-style.

At scale nobody reads 16,384 individual rank reports: Uintah reduces
every runtime statistic across ranks and prints ``min (on rank a) /
mean / max (on rank b)`` — the max/mean ratio is the load-imbalance
signal and the argmax rank is where to look. This module is that
reduction for any per-rank mapping of numeric stats (the distributed
scheduler's :class:`~repro.runtime.scheduler.RankStats`, the simulated
fabric's per-rank message counts, or the trace simulator's rank
timelines).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Dict, Mapping, Union

Number = Union[int, float]


@dataclass
class StatSummary:
    """One statistic reduced across ranks."""

    name: str
    min: float
    max: float
    mean: float
    total: float
    min_rank: int
    max_rank: int
    ranks: int

    @property
    def imbalance(self) -> float:
        """max/mean — 1.0 is perfectly balanced.

        A single rank is balanced by definition. A non-positive mean
        has no meaningful ratio: all-zero stats are balanced (1.0),
        while a positive max over a zero/negative mean (one rank did
        all the work, others cancelled it out) reports the worst case,
        ``ranks`` — the ratio a one-rank-does-everything distribution
        would produce.
        """
        if self.ranks <= 1:
            return 1.0
        if self.mean > 0:
            return self.max / self.mean
        return 1.0 if self.max <= 0 else float(self.ranks)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "total": self.total,
            "min_rank": self.min_rank,
            "max_rank": self.max_rank,
            "ranks": self.ranks,
            "imbalance": self.imbalance,
        }


def _numeric_items(stats: object) -> Dict[str, Number]:
    """Numeric fields of a per-rank record (dataclass or mapping),
    excluding the rank id itself."""
    if is_dataclass(stats) and not isinstance(stats, type):
        items = {f.name: getattr(stats, f.name) for f in fields(stats)}
    elif isinstance(stats, Mapping):
        items = dict(stats)
    else:
        raise TypeError(f"cannot reduce per-rank record of type {type(stats)}")
    return {
        k: v
        for k, v in items.items()
        if k != "rank" and isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def reduce_rank_stats(per_rank: Mapping[int, object]) -> Dict[str, StatSummary]:
    """Reduce ``{rank: record}`` to ``{stat_name: StatSummary}``.

    Records may be dataclasses (e.g. ``RankStats``) or plain mappings;
    every numeric field present on any rank is reduced, with missing
    entries treated as 0 so ragged mappings (a rank that never sent a
    message) still reduce.
    """
    if not per_rank:
        return {}
    numeric = {rank: _numeric_items(rec) for rank, rec in per_rank.items()}
    names = sorted({name for items in numeric.values() for name in items})
    n = len(numeric)
    out: Dict[str, StatSummary] = {}
    for name in names:
        values = {rank: float(items.get(name, 0.0)) for rank, items in numeric.items()}
        min_rank = min(values, key=lambda r: (values[r], r))
        max_rank = max(values, key=lambda r: (values[r], -r))
        total = sum(values.values())
        out[name] = StatSummary(
            name=name,
            min=values[min_rank],
            max=values[max_rank],
            mean=total / n,
            total=total,
            min_rank=min_rank,
            max_rank=max_rank,
            ranks=n,
        )
    return out


def rank_stats_as_dict(summaries: Mapping[str, StatSummary]) -> Dict[str, dict]:
    return {name: s.as_dict() for name, s in summaries.items()}


def format_rank_stats(
    summaries: Mapping[str, StatSummary], title: str = "Runtime Stats"
) -> str:
    """Uintah's reduced runtime-stats table::

        Runtime Stats (4 ranks)
        stat                    min (rank)        mean         max (rank)       total
        task_exec_time       0.01231 (r2)      0.01502     0.01846 (r1)      0.06008
    """
    rows = sorted(summaries.values(), key=lambda s: s.name)
    ranks = rows[0].ranks if rows else 0
    lines = [
        f"{title} ({ranks} ranks)",
        f"{'stat':<24}{'min (rank)':>18}{'mean':>12}{'max (rank)':>18}{'total':>12}",
    ]
    for s in rows:
        min_cell = f"{s.min:.5g} (r{s.min_rank})"
        max_cell = f"{s.max:.5g} (r{s.max_rank})"
        lines.append(
            f"{s.name:<24}{min_cell:>18}{s.mean:>12.5g}{max_cell:>18}"
            f"{s.total:>12.5g}"
        )
    return "\n".join(lines)


def publish_rank_stats(
    registry,
    per_rank: Mapping[int, object],
    prefix: str,
    **labels,
) -> Dict[str, StatSummary]:
    """Publish both the raw per-rank values (gauges labelled by rank)
    and their reduction (min/mean/max/total gauges) into ``registry``;
    returns the reduction."""
    for rank, rec in per_rank.items():
        for name, value in _numeric_items(rec).items():
            registry.gauge(f"{prefix}.{name}", rank=rank, **labels).set(value)
    summaries = reduce_rank_stats(per_rank)
    for name, s in summaries.items():
        for agg in ("min", "mean", "max", "total"):
            registry.gauge(f"{prefix}.{name}.{agg}", **labels).set(getattr(s, agg))
    return summaries
