"""Runtime observability: metrics, span tracing, rank-stats reduction.

The paper's scaling campaign lived and died on instrumentation — Table
1's component timings, Figure 1's communication-time diagnosis, the
fragmentation factors of Section IV.B all come from the runtime
reporting on itself. This package is that reporting surface for the
reproduction:

* :mod:`repro.perf.metrics` — counters / gauges / histograms with
  labels, published into by schedulers, comm pools, allocators, and
  the DataWarehouse;
* :mod:`repro.perf.tracer` — nested spans with thread/rank
  attribution, exported as Chrome trace-event JSON;
* :mod:`repro.perf.rankstats` — Uintah-style min/mean/max/total
  reduction of per-rank statistics;
* :mod:`repro.perf.harness` — the shared ``BENCH_<name>.json``
  artifact writer for the benchmark scripts;
* :mod:`repro.perf.profile` — the ``python -m repro profile`` runner;
* :mod:`repro.perf.analyze` — critical-path extraction, wall-clock
  attribution, and speedup bounds over merged traces
  (``python -m repro analyze``);
* :mod:`repro.perf.tsdb` — the embedded metrics time-series store and
  snapshot collector behind ``repro status --watch`` history.
"""

from repro.perf.analyze import (
    analyze_events,
    analyze_trace,
    build_span_dag,
    critical_path,
    format_analysis,
)
from repro.perf.harness import (
    BENCH_SCHEMA_VERSION,
    bench_artifact_path,
    write_bench_artifact,
)
from repro.perf.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
    set_metrics,
    timed,
)
from repro.perf.rankstats import (
    StatSummary,
    format_rank_stats,
    publish_rank_stats,
    rank_stats_as_dict,
    reduce_rank_stats,
)
from repro.perf.tracer import SpanTracer, get_tracer, set_tracer
from repro.perf.tsdb import (
    SnapshotCollector,
    TimeSeriesStore,
    flatten_registry,
    get_collector,
    set_collector,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotCollector",
    "SpanTracer",
    "StatSummary",
    "TimeSeriesStore",
    "analyze_events",
    "analyze_trace",
    "bench_artifact_path",
    "build_span_dag",
    "critical_path",
    "flatten_registry",
    "format_analysis",
    "format_rank_stats",
    "get_collector",
    "get_metrics",
    "get_tracer",
    "publish_rank_stats",
    "rank_stats_as_dict",
    "reduce_rank_stats",
    "reset_metrics",
    "set_collector",
    "set_metrics",
    "set_tracer",
    "timed",
    "write_bench_artifact",
]
