"""The profile run: a small instrumented RMCRT simulation.

``python -m repro profile`` drives the distributed 3-task RMCRT
pipeline for a few timesteps with an *enabled* tracer and a fresh
metrics registry, exercises the paper's allocator stack on the
Section IV.B workload so allocator accounting shows up too, and writes

* ``trace.json``   — Chrome trace-event JSON (chrome://tracing,
  Perfetto): one swim-lane per simulated rank plus the driver lane,
  task boxes per timestep;
* ``metrics.json`` — every counter/gauge/histogram the runtime
  published: scheduler per-rank stats, comm-pool internals, MPI fabric
  volume, DataWarehouse traffic, allocator footprints.

The same runner is importable (:func:`run_profile`) so tests can smoke
the artifacts without a subprocess.
"""

from __future__ import annotations

from typing import Optional

from repro.perf.metrics import MetricsRegistry, set_metrics
from repro.perf.tracer import SpanTracer, set_tracer

#: the driver thread's timeline row — far above any rank tid
DRIVER_TID = 1000


def run_profile(
    steps: int = 2,
    resolution: int = 12,
    rays_per_cell: int = 4,
    num_ranks: int = 2,
    pool_kind: str = "waitfree",
    seed: int = 0,
    trace_path: Optional[str] = "trace.json",
    metrics_path: Optional[str] = "metrics.json",
    merge: bool = False,
    rank_trace_dir: Optional[str] = None,
) -> dict:
    """Run ``steps`` instrumented timesteps; write the two artifacts.

    With ``merge=True`` the recording is additionally split into
    per-rank trace files (``trace_rank<k>.json`` under
    ``rank_trace_dir``, default: alongside ``trace_path``) — what a
    real one-file-per-MPI-rank run would have produced — and then
    stitched back through :func:`repro.perf.merge.merge_traces`, so
    ``trace_path`` holds the *merged* trace with cross-rank flow
    arrows, and the summary carries the merge/connectivity stats.

    Returns a summary dict: the artifact paths, event/metric counts,
    and the across-rank runtime-stats reduction of the last step.
    """
    from repro.core import DistributedRMCRT, benchmark_property_init
    from repro.memory.workload import AllocatorStack, generate_trace
    from repro.radiation import BurnsChristonBenchmark
    from repro.util.timing import TimerRegistry

    tracer = SpanTracer(enabled=True)
    metrics = MetricsRegistry()
    # install as process defaults so components resolving get_tracer()/
    # get_metrics() (e.g. the controller) record into the same sinks
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(metrics)
    tracer.register_thread(tid=DRIVER_TID, name="driver")
    timers = TimerRegistry()

    try:
        bench = BurnsChristonBenchmark(resolution=resolution)
        grid = bench.two_level_grid(refinement_ratio=2, fine_patch_size=resolution // 2)
        drm = DistributedRMCRT(
            grid,
            benchmark_property_init(bench),
            rays_per_cell=rays_per_cell,
            halo=2,
            seed=seed,
        )

        last_stats = None
        with timers("profile_run"), tracer.span("profile", cat="driver"):
            for step in range(1, steps + 1):
                with timers("timestep"), tracer.span(
                    f"timestep {step}", cat="driver", step=step
                ):
                    drm.solve(
                        "distributed",
                        num_ranks=num_ranks,
                        pool_kind=pool_kind,
                        tracer=tracer,
                        metrics=metrics,
                    )
                last_stats = drm.last_runtime_stats
                metrics.counter("driver.timesteps").inc()

            # allocator exercise: the Section IV.B workload through the
            # paper's custom stack, so alloc.* metrics have real values
            with tracer.span("allocator_replay", cat="driver"):
                events = generate_trace(timesteps=max(2, steps), seed=seed)
                stack = AllocatorStack("custom")
                for ev in events:
                    if ev.op == "alloc":
                        stack.malloc(ev.tag, ev.size, ev.obj_id)
                    else:
                        stack.free(ev.obj_id)
                stack.arena.publish_metrics(metrics)
                stack.pool.publish_metrics(metrics)
                stack.heap.publish_metrics(metrics)

        timers.publish_metrics(metrics)
    finally:
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)

    merge_stats = None
    rank_trace_paths: list = []
    if merge and trace_path is not None:
        from pathlib import Path

        from repro.perf.merge import merge_traces, write_rank_traces

        directory = (
            Path(rank_trace_dir)
            if rank_trace_dir is not None
            else (Path(trace_path).parent or Path("."))
        )
        rank_trace_paths = write_rank_traces(
            tracer.events(), num_ranks, directory=directory
        )
        _, merge_stats = merge_traces(rank_trace_paths, out_path=trace_path)
    elif trace_path is not None:
        tracer.write(trace_path)
    if metrics_path is not None:
        metrics.write(metrics_path)

    events = tracer.events()
    snapshot = metrics.as_dict()
    return {
        "trace_path": trace_path,
        "metrics_path": metrics_path,
        "merge_stats": merge_stats,
        "rank_trace_paths": [str(p) for p in rank_trace_paths],
        "steps": steps,
        "num_ranks": num_ranks,
        "events": len(events),
        "task_spans": sum(1 for e in events if e.get("cat") == "task"),
        "metrics": sum(len(v) for v in snapshot.values()),
        "runtime_stats": (
            [s.as_dict() for s in last_stats.values()] if last_stats else []
        ),
        "tracer": tracer,
        "registry": metrics,
    }


def format_summary(summary: dict) -> str:
    """Human-readable closing report for the CLI."""
    from repro.perf.rankstats import StatSummary, format_rank_stats

    lines = [
        f"profile: {summary['steps']} timesteps on {summary['num_ranks']} "
        f"simulated ranks",
        f"  {summary['events']} trace events "
        f"({summary['task_spans']} task spans) -> {summary['trace_path']}",
        f"  {summary['metrics']} metric series -> {summary['metrics_path']}",
    ]
    ms = summary.get("merge_stats")
    if ms:
        lines.append(
            f"  merged {ms['files']} per-rank traces: {ms['flow_pairs']} "
            f"send/recv flow pairs, {ms['connected_fraction']:.0%} connected"
        )
    stats = {
        d["name"]: StatSummary(**{k: v for k, v in d.items() if k != "imbalance"})
        for d in summary["runtime_stats"]
    }
    if stats:
        lines.append(format_rank_stats(stats, title="Runtime stats (last timestep)"))
    return "\n".join(lines)
