"""SLO monitoring: streaming quantiles, error budgets, degradation.

The service layer (repro.service) promises latency, not just
correctness; this module is where that promise becomes measurable and
enforceable without retaining samples:

* :class:`P2Quantile` — the Jain & Chlamtac P² algorithm: one
  streaming quantile estimate from five markers, O(1) memory and time
  per observation, no sample buffer. Good to a few percent on smooth
  distributions, which is all a burn-rate alarm needs.
* :class:`EndpointStats` — a per-endpoint bundle of P² sketches
  (p50/p95/p99), counts, and error tally.
* :class:`SloPolicy` / :class:`SloMonitor` — thresholds (p99 latency,
  queue depth, error-budget burn) evaluated into a status snapshot;
  when any threshold is breached the monitor reports the service
  **degraded**, and the service responds by shrinking its admission
  window so the existing bounded-queue backpressure sheds load.

``python -m repro status`` renders a monitor snapshot one-shot or as a
``--watch`` dashboard (see :mod:`repro.__main__`).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.util.errors import PerfError


class P2Quantile:
    """Jain & Chlamtac's P² streaming quantile estimator.

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights are
    nudged toward their ideal positions with a piecewise-parabolic
    interpolation on every observation. Memory is five floats — the
    whole point: per-endpoint p99 over an unbounded request stream with
    nothing retained.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise PerfError(f"P2Quantile needs 0 < q < 1, got {q}")
        self.q = float(q)
        self._initial: List[float] = []  # first five observations, sorted
        self._n: List[int] = []          # marker positions (1-based)
        self._ns: List[float] = []       # desired positions
        self._heights: List[float] = []
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if self._heights:
            self._update(value)
            return
        self._initial.append(value)
        if len(self._initial) == 5:
            self._initial.sort()
            self._heights = list(self._initial)
            self._n = [1, 2, 3, 4, 5]
            q = self.q
            self._ns = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]

    def _update(self, value: float) -> None:
        h = self._heights
        n = self._n
        # find the cell and clamp the extremes
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value < h[i]:
                    k = i - 1
                    break
            else:
                k = 3
        for i in range(k + 1, 5):
            n[i] += 1
        q = self.q
        dn = (q / 2, q, (1 + q) / 2)
        for i in range(1, 4):
            self._ns[i] += dn[i - 1]
        # adjust the three interior markers
        for i in range(1, 4):
            d = self._ns[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                sign = 1 if d >= 1 else -1
                candidate = self._parabolic(i, sign)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        h, n = self._heights, self._n
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: int) -> float:
        h, n = self._heights, self._n
        return h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])

    @property
    def value(self) -> Optional[float]:
        """The current estimate (exact until five observations)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return None
        ordered = sorted(self._initial)
        idx = min(len(ordered) - 1, int(self.q * len(ordered)))
        return ordered[idx]


class EndpointStats:
    """One endpoint's streaming serving statistics."""

    QUANTILES = (0.50, 0.95, 0.99)

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._sketches = {q: P2Quantile(q) for q in self.QUANTILES}
        self.requests = 0
        self.errors = 0

    def observe(self, latency_s: float, error: bool = False) -> None:
        with self._lock:
            self.requests += 1
            if error:
                self.errors += 1
            else:
                # errors are typically fast rejections; folding them
                # into the latency sketch would *flatter* the tail
                for sketch in self._sketches.values():
                    sketch.observe(latency_s)

    def quantile(self, q: float) -> Optional[float]:
        with self._lock:
            sketch = self._sketches.get(q)
            return sketch.value if sketch is not None else None

    @property
    def error_rate(self) -> float:
        with self._lock:
            return self.errors / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "endpoint": self.name,
                "requests": self.requests,
                "errors": self.errors,
                "error_rate": self.errors / self.requests if self.requests else 0.0,
                "p50_s": self._sketches[0.50].value,
                "p95_s": self._sketches[0.95].value,
                "p99_s": self._sketches[0.99].value,
            }


@dataclass
class SloPolicy:
    """The service's promises, as numbers.

    ``error_budget`` is the allowed failure fraction over the window;
    burn rate 1.0 means failing at exactly the budgeted rate, >1 means
    the budget is being consumed faster than it regenerates (Google
    SRE-style multi-window burn alarms collapse to the single live
    window this in-process service has).
    """

    p99_latency_s: float = 5.0       #: p99 solve-request latency bound
    max_queue_depth: int = 48        #: queued requests before degraded
    error_budget: float = 0.02       #: allowed failure fraction
    burn_alarm: float = 1.0          #: degrade when burn rate exceeds this
    min_requests: int = 10           #: no verdicts on tiny samples


class SloMonitor:
    """Evaluate :class:`EndpointStats` against an :class:`SloPolicy`.

    ``degraded`` flips on any breached threshold and back off when the
    breach clears (the sketches are streaming, so sustained good
    behaviour pulls the quantiles back down). The service polls
    :meth:`degraded` at admission and sheds load while it's set.
    """

    def __init__(self, policy: Optional[SloPolicy] = None) -> None:
        self.policy = policy if policy is not None else SloPolicy()
        self._endpoints: Dict[str, EndpointStats] = {}
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._t0 = time.monotonic()

    def endpoint(self, name: str) -> EndpointStats:
        with self._lock:
            stats = self._endpoints.get(name)
            if stats is None:
                stats = self._endpoints[name] = EndpointStats(name)
            return stats

    def observe(self, endpoint: str, latency_s: float, error: bool = False) -> None:
        self.endpoint(endpoint).observe(latency_s, error=error)

    def set_queue_depth(self, depth: int) -> None:
        self._queue_depth = int(depth)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def burn_rate(self, endpoint: str) -> float:
        """Error-budget burn: observed failure fraction / budget."""
        stats = self.endpoint(endpoint)
        if self.policy.error_budget <= 0:
            return float("inf") if stats.error_rate > 0 else 0.0
        return stats.error_rate / self.policy.error_budget

    def breaches(self) -> List[str]:
        """Every currently-breached threshold, human-readable."""
        p = self.policy
        out: List[str] = []
        if self._queue_depth > p.max_queue_depth:
            out.append(
                f"queue depth {self._queue_depth} > {p.max_queue_depth}"
            )
        with self._lock:
            endpoints = list(self._endpoints.values())
        for stats in endpoints:
            if stats.requests < p.min_requests:
                continue
            p99 = stats.quantile(0.99)
            if p99 is not None and p99 > p.p99_latency_s:
                out.append(
                    f"{stats.name}: p99 {p99:.3f}s > {p.p99_latency_s}s"
                )
            burn = self.burn_rate(stats.name)
            if burn > p.burn_alarm:
                out.append(
                    f"{stats.name}: error-budget burn {burn:.2f}x "
                    f"> {p.burn_alarm}x"
                )
        return out

    def degraded(self) -> bool:
        return bool(self.breaches())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        with self._lock:
            endpoints = {name: s.as_dict() for name, s in self._endpoints.items()}
        breaches = self.breaches()
        return {
            "uptime_s": time.monotonic() - self._t0,
            "queue_depth": self._queue_depth,
            "degraded": bool(breaches),
            "breaches": breaches,
            "policy": {
                "p99_latency_s": self.policy.p99_latency_s,
                "max_queue_depth": self.policy.max_queue_depth,
                "error_budget": self.policy.error_budget,
                "burn_alarm": self.policy.burn_alarm,
            },
            "endpoints": endpoints,
        }

    def write(self, path) -> None:
        """Publish the snapshot atomically (the ``status.json`` the
        ``repro status`` dashboard reads)."""
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, json.dumps(self.snapshot(), indent=2) + "\n")


def format_status(snapshot: dict) -> str:
    """Render one monitor snapshot as the terminal dashboard."""

    def fmt_s(v) -> str:
        return f"{v * 1e3:8.1f}ms" if isinstance(v, (int, float)) else "       --"

    state = "DEGRADED" if snapshot.get("degraded") else "ok"
    lines = [
        f"service status: {state}   "
        f"(queue depth {snapshot.get('queue_depth', 0)}, "
        f"up {snapshot.get('uptime_s', 0.0):.0f}s)",
    ]
    for breach in snapshot.get("breaches", []):
        lines.append(f"  BREACH: {breach}")
    endpoints = snapshot.get("endpoints", {})
    if endpoints:
        lines.append(
            f"  {'endpoint':<18} {'requests':>9} {'errors':>7} "
            f"{'burn':>6} {'p50':>10} {'p95':>10} {'p99':>10}"
        )
        budget = snapshot.get("policy", {}).get("error_budget", 0.02) or 1.0
        for name in sorted(endpoints):
            ep = endpoints[name]
            burn = (ep.get("error_rate", 0.0) / budget) if budget else 0.0
            lines.append(
                f"  {name:<18} {ep.get('requests', 0):>9} "
                f"{ep.get('errors', 0):>7} {burn:>5.2f}x "
                f"{fmt_s(ep.get('p50_s'))} {fmt_s(ep.get('p95_s'))} "
                f"{fmt_s(ep.get('p99_s'))}"
            )
    else:
        lines.append("  no endpoint traffic yet")
    return "\n".join(lines)
