"""Benchmark artifact writer: every ``bench_*.py`` gets a JSON record.

The perf trajectory of this repository is a sequence of
``BENCH_<name>.json`` files — one per benchmark per run — so that
"did PR N make the hot path faster?" is a diff of two JSON documents
rather than a scroll through captured stdout. The schema is small and
stable: identifying metadata, the benchmark's parameters, its result
rows, and (optionally) a metrics snapshot.

The output directory resolves, in order: an explicit ``directory``
argument, the ``REPRO_BENCH_DIR`` environment variable, the current
working directory.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Mapping, Optional, Sequence

BENCH_SCHEMA_VERSION = 1


def _jsonable(value):
    """Coerce numpy scalars/arrays and other common types to JSON."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    tolist = getattr(value, "tolist", None)  # numpy arrays & scalars
    if callable(tolist):
        return _jsonable(tolist())
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonable(item())
    as_dict = getattr(value, "as_dict", None)
    if callable(as_dict):
        return _jsonable(as_dict())
    return str(value)


def bench_artifact_path(name: str, directory: Optional[str] = None) -> Path:
    base = directory or os.environ.get("REPRO_BENCH_DIR") or "."
    return Path(base) / f"BENCH_{name}.json"


def write_bench_artifact(
    name: str,
    *,
    params: Optional[Mapping] = None,
    rows: Optional[Sequence[Mapping]] = None,
    metrics: Optional[Mapping] = None,
    extra: Optional[Mapping] = None,
    directory: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``rows`` is the benchmark's result series (one mapping per sweep
    point, e.g. per node count); ``params`` the workload configuration;
    ``metrics`` an optional :meth:`MetricsRegistry.as_dict` snapshot or
    any other summary mapping.
    """
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "name": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "params": _jsonable(params or {}),
        "rows": _jsonable(list(rows or [])),
    }
    if metrics is not None:
        payload["metrics"] = _jsonable(metrics)
    if extra:
        payload.update({str(k): _jsonable(v) for k, v in extra.items()})
    path = bench_artifact_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
