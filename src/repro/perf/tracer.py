"""Span-based tracing with Chrome trace-event export.

The paper's team diagnosed where time went with per-rank timelines
(Figure 1); this tracer produces the same view for the reproduction:
every scheduler wraps task execution in a span, spans nest, and the
whole recording exports as Chrome trace-event JSON — load the file in
``chrome://tracing`` or https://ui.perfetto.dev and every rank/thread
is a swim-lane of task boxes.

Spans are recorded as ``"X"`` (complete) events — one event carrying
``ts`` and ``dur`` — which is both the most compact encoding and the
easiest to validate: every event has ``name``, ``ph``, ``ts``, ``pid``,
``tid``. Simulated timelines (:mod:`repro.dessim.tracesim`) inject
their events through :meth:`SpanTracer.complete` so measured and
modelled runs share one file format.

Observability v2 additions:

* **Causal stamping** — while a :mod:`repro.perf.tracectx` context is
  active on the recording thread, every span's args carry its
  ``trace_id``/``span_id``, so cross-rank and cross-component spans of
  one causal chain are joinable after the fact.
* **Flow events** — :meth:`flow_start` / :meth:`flow_finish` emit
  Chrome ``ph: "s"`` / ``ph: "f"`` events; when a send's flow-start and
  the matching recv's flow-finish share an ``id``, the trace viewer
  draws the message arrow between ranks
  (:func:`repro.perf.merge.merge_traces` stitches per-rank files).
* **Sinks** — every recorded event is also offered to registered sink
  callables (the flight recorder's ring buffer subscribes here). The
  internal event list is append-atomic under a lock, so concurrent
  worker threads can never tear or lose events.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.perf import tracectx
from repro.util.errors import PerfError


class SpanTracer:
    """Nested-span recorder with per-thread attribution.

    One tracer covers the whole process: each OS thread gets its own
    span stack and a stable ``tid`` (auto-assigned in first-use order,
    or pinned via :meth:`register_thread` — the distributed scheduler
    pins rank threads to ``tid == rank``). A disabled tracer turns
    every call into a cheap no-op so instrumentation can stay wired in
    permanently.

    ``t0`` (a ``time.perf_counter()`` reading) anchors the timestamp
    origin; tracers sharing one ``t0`` produce directly comparable
    timelines, which is how per-rank trace files stay alignable for
    :func:`~repro.perf.merge.merge_traces`.
    """

    def __init__(
        self, enabled: bool = True, pid: int = 0, t0: Optional[float] = None
    ) -> None:
        self.enabled = bool(enabled)
        self.pid = int(pid)
        self._t0 = time.perf_counter() if t0 is None else float(t0)
        self._events: List[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: Dict[int, int] = {}
        self._next_tid = 0
        self._sinks: List[Callable[[dict], None]] = []

    # ------------------------------------------------------------------
    # time & thread bookkeeping
    # ------------------------------------------------------------------
    @property
    def t0(self) -> float:
        return self._t0

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._tids.get(ident)
            if tid is None:
                tid = self._next_tid
                self._next_tid += 1
                self._tids[ident] = tid
            return tid

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def register_thread(self, tid: int, name: Optional[str] = None) -> None:
        """Pin the calling thread to ``tid`` (e.g. its simulated rank)
        and optionally name its timeline row."""
        if not self.enabled:
            return
        ident = threading.get_ident()
        with self._lock:
            self._tids[ident] = int(tid)
            self._next_tid = max(self._next_tid, int(tid) + 1)
        if name is not None:
            self._emit(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": self.pid,
                    "tid": int(tid),
                    "args": {"name": name},
                }
            )

    # ------------------------------------------------------------------
    # the event sink
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Subscribe ``sink(event)`` to every event this tracer records
        (the flight recorder's feed). Sinks must be cheap and
        thread-safe; they run on the recording thread."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)

    def _emit(self, event: dict) -> None:
        # append under the lock — concurrent emitters may interleave in
        # order but can never lose or tear an event — then offer the
        # event to sinks outside it, so a slow sink cannot serialize
        # every recording thread.
        with self._lock:
            self._events.append(event)
            sinks = tuple(self._sinks)
        for sink in sinks:
            sink(event)

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    def begin(self, name: str, cat: str = "", **args) -> None:
        """Open a span on the calling thread's stack.

        The thread's active :mod:`~repro.perf.tracectx` context (if
        any) is captured here, at entry — the span belongs to the
        causal chain that *started* it even if the context is popped
        before the span closes."""
        if not self.enabled:
            return
        tracectx.stamp(args)
        self._stack().append((name, cat, args, self._now_us()))

    def end(self, name: Optional[str] = None) -> None:
        """Close the innermost open span; ``name`` (if given) must match
        it — a mismatch means begin/end calls crossed, which is a bug at
        the instrumentation site, so it raises."""
        if not self.enabled:
            return
        stack = self._stack()
        if not stack:
            raise PerfError(
                f"SpanTracer.end({name!r}) with no open span on this thread"
            )
        top_name, cat, args, start = stack[-1]
        if name is not None and name != top_name:
            raise PerfError(
                f"mismatched span stop: end({name!r}) but innermost open "
                f"span is {top_name!r}"
            )
        stack.pop()
        now = self._now_us()
        event = {
            "name": top_name,
            "ph": "X",
            "ts": start,
            "dur": now - start,
            "pid": self.pid,
            "tid": self._tid(),
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._emit(event)

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        self.begin(name, cat, **args)
        try:
            yield self
        finally:
            self.end(name if self.enabled else None)

    def instant(self, name: str, cat: str = "", **args) -> None:
        """A zero-duration marker (Chrome 'instant' event)."""
        if not self.enabled:
            return
        tracectx.stamp(args)
        event = {
            "name": name,
            "ph": "i",
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": self._tid(),
            "s": "t",  # thread-scoped instant
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._emit(event)

    def complete(
        self,
        name: str,
        ts_us: float,
        dur_us: float,
        pid: Optional[int] = None,
        tid: int = 0,
        cat: str = "",
        args: Optional[dict] = None,
    ) -> None:
        """Inject a pre-timed complete event (simulated timelines)."""
        if not self.enabled:
            return
        event = {
            "name": name,
            "ph": "X",
            "ts": float(ts_us),
            "dur": float(dur_us),
            "pid": self.pid if pid is None else int(pid),
            "tid": int(tid),
        }
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = args
        self._emit(event)

    # ------------------------------------------------------------------
    # flow events (message arrows across timeline rows)
    # ------------------------------------------------------------------
    def flow_start(
        self, flow_id, name: str = "msg", cat: str = "comm",
        tid: Optional[int] = None, **args
    ) -> None:
        """The producing end of a flow (Chrome ``ph: "s"``); emit inside
        the send span so the arrow leaves the right box."""
        if not self.enabled:
            return
        tracectx.stamp(args)
        event = {
            "name": name,
            "ph": "s",
            "id": str(flow_id),
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": self._tid() if tid is None else int(tid),
            "cat": cat,
        }
        if args:
            event["args"] = args
        self._emit(event)

    def flow_finish(
        self, flow_id, name: str = "msg", cat: str = "comm",
        tid: Optional[int] = None, **args
    ) -> None:
        """The consuming end of a flow (Chrome ``ph: "f"``, binding to
        the enclosing slice); emit where the message is processed."""
        if not self.enabled:
            return
        tracectx.stamp(args)
        event = {
            "name": name,
            "ph": "f",
            "bp": "e",
            "id": str(flow_id),
            "ts": self._now_us(),
            "pid": self.pid,
            "tid": self._tid() if tid is None else int(tid),
            "cat": cat,
        }
        if args:
            event["args"] = args
        self._emit(event)

    # ------------------------------------------------------------------
    # inspection & export
    # ------------------------------------------------------------------
    def open_spans(self) -> int:
        """Open spans on the *calling* thread (0 = balanced)."""
        return len(self._stack())

    def events(self) -> List[dict]:
        """All recorded events, metadata first then by start time."""
        with self._lock:
            events = list(self._events)
        return sorted(events, key=lambda e: (e["ph"] != "M", e["ts"]))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def to_chrome_trace(self) -> List[dict]:
        """The export payload: a bare JSON array of trace events, which
        chrome://tracing and Perfetto both accept."""
        return self.events()

    def write(self, path) -> None:
        """Export to ``path`` atomically (write-then-rename), so a
        reader — or a crash mid-export — never sees a torn trace."""
        from repro.util.atomic import atomic_write_text

        atomic_write_text(path, json.dumps(self.to_chrome_trace(), indent=1) + "\n")


# ----------------------------------------------------------------------
# the process-wide default tracer: present but disabled, so permanently
# wired instrumentation costs one attribute check until someone turns
# tracing on (the profile CLI swaps in an enabled tracer).
# ----------------------------------------------------------------------
_global_tracer = SpanTracer(enabled=False)


def get_tracer() -> SpanTracer:
    return _global_tracer


def set_tracer(tracer: SpanTracer) -> SpanTracer:
    """Swap the default tracer; returns the previous one."""
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer
    return previous
