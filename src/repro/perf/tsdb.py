"""Embedded metrics time-series store + snapshot collector.

The observability stack so far produces *point-in-time* artifacts: a
``metrics.json`` at the end of a profile, a ``status.json`` per serve
pass. Scaling questions ("did p95 drift while the queue backed up?",
"what was the ray-throughput trend across the last restart?") need
*history* — which is what the ROADMAP's SLO-driven autoscaler will
consume as its telemetry substrate.

:class:`TimeSeriesStore` is deliberately small: one JSONL file per
rank, one flat ``{"t": ..., fields...}`` object per line.

* **Append-only** — each sample is a single O(1) line append, cheap
  enough to run inside the controller's advance loop.
* **Atomically ring-retained** — when the file grows past
  ``2 × retention`` lines it is compacted to the newest ``retention``
  samples via write-tmp-then-rename (:mod:`repro.util.atomic`), so a
  reader never sees a torn file and disk use is bounded.
* **Restart-safe** — the loader tolerates a torn final line (a crash
  mid-append) and re-seeds its line count from the surviving file, so
  history accumulates across process restarts.

:class:`SnapshotCollector` flattens a :class:`MetricsRegistry` (and
any extra provider, e.g. the serve loop's SLO snapshot) into one
sample on a cadence. Query helpers cover the read side: range scans
(:meth:`TimeSeriesStore.series`), counter-reset-safe :meth:`rate`,
and :meth:`downsample` onto aligned bucket edges so series from
different ranks line up. ``python -m repro status --watch`` renders
the result as sparkline history.
"""

from __future__ import annotations

import json
import math
import os
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import PerfError

#: compact once the file holds this many times the retention target
COMPACT_FACTOR = 2

#: eight-level block characters for terminal sparklines
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class TimeSeriesStore:
    """Per-rank JSONL sample log with ring retention.

    Not thread-safe by design: each rank thread (or the serve loop)
    owns its own store, mirroring how rank trace files are written.
    """

    def __init__(self, directory, rank: int = 0, retention: int = 2048) -> None:
        if retention < 1:
            raise PerfError(f"tsdb retention must be >= 1, got {retention}")
        self.directory = Path(directory)
        self.rank = int(rank)
        self.retention = int(retention)
        self.path = self.directory / f"tsdb_rank{self.rank}.jsonl"
        self.directory.mkdir(parents=True, exist_ok=True)
        samples, torn = self._scan()
        #: undecodable lines found when this store was opened (a torn
        #: tail from a crash mid-append, healed below)
        self.dropped_lines = torn
        self._lines = len(samples)
        if torn:
            # heal the torn tail at open: rewrite the surviving samples
            # so the next append starts a clean line
            self.compact()

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def append(self, fields: Dict[str, float], t: Optional[float] = None) -> dict:
        """Append one sample; returns the stored record."""
        record = {"t": time.time() if t is None else float(t)}
        record.update(fields)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._lines += 1
        if self._lines >= self.retention * COMPACT_FACTOR:
            self.compact()
        return record

    def compact(self) -> int:
        """Rewrite the file keeping only the newest ``retention``
        samples; atomic (tmp + rename), returns the retained count."""
        samples = self._read_samples()
        keep = samples[-self.retention:]
        tmp = self.path.parent / f".{self.path.name}.tmp"
        with tmp.open("w", encoding="utf-8") as fh:
            for rec in keep:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self._lines = len(keep)
        return self._lines

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def _scan(self) -> Tuple[List[dict], int]:
        if not self.path.exists():
            return [], 0
        out: List[dict] = []
        dropped = 0
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    # a torn line (crash mid-append) is expected; any
                    # undecodable line is dropped and counted, never fatal
                    dropped += 1
                    continue
                if isinstance(rec, dict) and "t" in rec:
                    out.append(rec)
                else:
                    dropped += 1
        out.sort(key=lambda r: r["t"])
        return out, dropped

    def _read_samples(self) -> List[dict]:
        return self._scan()[0]

    def samples(
        self, t0: Optional[float] = None, t1: Optional[float] = None
    ) -> List[dict]:
        """All samples, optionally restricted to ``t0 <= t <= t1``."""
        out = self._read_samples()
        if t0 is not None:
            out = [r for r in out if r["t"] >= t0]
        if t1 is not None:
            out = [r for r in out if r["t"] <= t1]
        return out

    def names(self) -> List[str]:
        """Every field name seen in the retained window, sorted."""
        seen = set()
        for rec in self._read_samples():
            seen.update(k for k in rec if k != "t")
        return sorted(seen)

    def series(
        self,
        name: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> List[Tuple[float, float]]:
        """Range scan of one field: ``[(t, value), ...]`` ascending.
        Non-finite values (NaN/inf, e.g. from a corrupted sample) are
        skipped — downstream detectors and rate math assume finite
        points."""
        return [
            (rec["t"], float(rec[name]))
            for rec in self.samples(t0, t1)
            if isinstance(rec.get(name), (int, float))
            and not isinstance(rec.get(name), bool)
            and math.isfinite(float(rec[name]))
        ]

    def latest(self) -> Optional[dict]:
        samples = self._read_samples()
        return samples[-1] if samples else None

    def rate(
        self,
        name: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
    ) -> Optional[float]:
        """Per-second increase of a (cumulative) counter field over the
        window. Negative deltas — a counter reset across a process
        restart — are clamped to zero rather than poisoning the rate,
        the standard monotone-counter treatment.

        When a window lower bound ``t0`` is given, the last sample at
        or before ``t0`` is included as the baseline. Without it a
        window holding a single sample would be unanswerable, and the
        increase between the baseline and the first in-window sample
        would be silently dropped at every window edge — which is how
        sliding-window callers (detectors, the autoscaler) would see
        phantom rate dips."""
        if t0 is not None and t1 is not None and t1 < t0:
            return None
        pts = self.series(name, t0, t1)
        if t0 is not None:
            # a sample exactly at t0 is already the window's baseline;
            # only reach back when the window opens between samples
            if not pts or pts[0][0] > t0:
                before = [p for p in self.series(name, None, t0) if p[0] < t0]
                if before:
                    pts = [before[-1]] + pts
        if len(pts) < 2:
            return None
        elapsed = pts[-1][0] - pts[0][0]
        if elapsed <= 0:
            return None
        increase = sum(
            max(0.0, b[1] - a[1]) for a, b in zip(pts, pts[1:])
        )
        return increase / elapsed

    def downsample(
        self,
        name: str,
        bucket_s: float,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        agg: str = "mean",
    ) -> List[Tuple[float, float]]:
        """Aggregate a series onto bucket edges aligned to multiples of
        ``bucket_s`` (epoch-aligned, so different ranks' series share
        edges). ``agg`` is ``mean``, ``max``, ``min``, or ``last``.
        Empty buckets are omitted."""
        if bucket_s <= 0:
            raise PerfError(f"downsample bucket must be > 0, got {bucket_s}")
        if agg not in ("mean", "max", "min", "last"):
            raise PerfError(f"unknown downsample agg {agg!r}")
        buckets: Dict[float, List[float]] = {}
        for t, v in self.series(name, t0, t1):
            # float floor-division misassigns edge samples for
            # non-integer buckets (0.3 // 0.1 == 2.0): snap quotients
            # within one part in 1e9 of the next integer upward so a
            # sample exactly on an edge lands in the bucket it opens
            q = t / bucket_s
            idx = math.floor(q)
            if (idx + 1) - q <= 1e-9 * max(1.0, abs(q)):
                idx += 1
            edge = idx * bucket_s
            buckets.setdefault(edge, []).append(v)
        out = []
        for edge in sorted(buckets):
            vals = buckets[edge]
            if agg == "mean":
                out.append((edge, sum(vals) / len(vals)))
            elif agg == "max":
                out.append((edge, max(vals)))
            elif agg == "min":
                out.append((edge, min(vals)))
            else:
                out.append((edge, vals[-1]))
        return out


# ----------------------------------------------------------------------
# flattening a MetricsRegistry into sample fields
# ----------------------------------------------------------------------
def _series_key(name: str, labels: Dict[str, str]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def flatten_registry(registry) -> Dict[str, float]:
    """One flat ``field -> float`` mapping: counters and gauges by
    series key, histograms expanded to count/mean/p50/p95/p99."""
    doc = registry.as_dict()
    fields: Dict[str, float] = {}
    for c in doc["counters"]:
        fields[_series_key(c["name"], c["labels"])] = float(c["value"])
    for g in doc["gauges"]:
        fields[_series_key(g["name"], g["labels"])] = float(g["value"])
    for h in doc["histograms"]:
        key = _series_key(h["name"], h["labels"])
        fields[f"{key}.count"] = float(h["count"])
        for stat in ("mean", "p50", "p95", "p99"):
            value = h.get(stat)
            if isinstance(value, (int, float)):
                fields[f"{key}.{stat}"] = float(value)
    return fields


def flatten_status(snapshot: dict) -> Dict[str, float]:
    """Numeric fields of a service ``status.json`` / SloMonitor
    snapshot, namespaced under ``slo.`` — the serve loop's extra
    provider, so quantile history lands next to the registry series."""
    fields: Dict[str, float] = {}
    for key in ("uptime_s", "queue_depth"):
        value = snapshot.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            fields[f"slo.{key}"] = float(value)
    if "degraded" in snapshot:
        fields["slo.degraded"] = 1.0 if snapshot["degraded"] else 0.0
    for name, ep in (snapshot.get("endpoints") or {}).items():
        for stat in ("requests", "errors", "error_rate", "p50_s", "p95_s", "p99_s"):
            value = ep.get(stat)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                fields[f"slo.{name}.{stat}"] = float(value)
    return fields


class SnapshotCollector:
    """Samples a registry (plus optional extra fields) into a store on
    a cadence. ``interval_s=0`` samples on every call — the right
    setting for per-timestep collection where the caller already owns
    the cadence; the serve loop uses a real interval so its tight poll
    loop doesn't spam the store."""

    def __init__(
        self,
        store: TimeSeriesStore,
        registry=None,
        interval_s: float = 0.0,
        extra: Optional[Callable[[], Dict[str, float]]] = None,
    ) -> None:
        self.store = store
        self.registry = registry
        self.interval_s = float(interval_s)
        self.extra = extra
        self.samples_taken = 0
        self._last_sample_t: Optional[float] = None

    def _fields(self) -> Dict[str, float]:
        registry = self.registry
        if registry is None:
            from repro.perf.metrics import get_metrics

            registry = get_metrics()
        fields = flatten_registry(registry)
        if self.extra is not None:
            for k, v in self.extra().items():
                if isinstance(v, bool):
                    fields[k] = 1.0 if v else 0.0
                elif isinstance(v, (int, float)):
                    fields[k] = float(v)
        return fields

    def sample(self, **fields: float) -> dict:
        """Take a sample now, unconditionally. Keyword args become
        additional fields (e.g. ``step=controller.step``)."""
        merged = self._fields()
        merged.update({k: float(v) for k, v in fields.items()})
        record = self.store.append(merged)
        self.samples_taken += 1
        self._last_sample_t = record["t"]
        return record

    def maybe_sample(self, **fields: float) -> Optional[dict]:
        """Take a sample if the cadence interval has elapsed."""
        now = time.time()
        if (
            self._last_sample_t is not None
            and now - self._last_sample_t < self.interval_s
        ):
            return None
        return self.sample(**fields)


# ----------------------------------------------------------------------
# the process-wide default collector
# ----------------------------------------------------------------------
_global_collector: Optional[SnapshotCollector] = None


def get_collector() -> Optional[SnapshotCollector]:
    """The process-wide default collector, or None when sampling is
    off (the default: no collector, no overhead)."""
    return _global_collector


def set_collector(
    collector: Optional[SnapshotCollector],
) -> Optional[SnapshotCollector]:
    """Install (or clear, with None) the default collector; returns
    the previous one."""
    global _global_collector
    previous = _global_collector
    _global_collector = collector
    return previous


# ----------------------------------------------------------------------
# history rendering for `repro status --watch`
# ----------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Block-character sparkline of the last ``width`` values."""
    vals = list(values)[-width:]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return _SPARK_BLOCKS[0] * len(vals)
    span = hi - lo
    return "".join(
        _SPARK_BLOCKS[
            min(len(_SPARK_BLOCKS) - 1, int((v - lo) / span * len(_SPARK_BLOCKS)))
        ]
        for v in vals
    )


def format_history(
    store: TimeSeriesStore,
    names: Optional[Iterable[str]] = None,
    width: int = 32,
    max_rows: int = 12,
) -> str:
    """Sparkline table of recent history for the status dashboard.

    Without an explicit ``names`` selection, prefers the SLO-shaped
    fields (queue depth, endpoint quantiles, degraded flag) and falls
    back to whatever the store holds.
    """
    samples = store.samples()
    if not samples:
        return "history: (no tsdb samples yet)"
    if names is None:
        all_names = store.names()
        preferred = [
            n for n in all_names
            if any(tag in n for tag in ("queue", "p95", "p99", "degraded"))
        ]
        # the service-level series are the dashboard headline; raw
        # registry series follow
        preferred.sort(key=lambda n: (not n.startswith("slo."), n))
        names = preferred or all_names
    rows = []
    span_s = samples[-1]["t"] - samples[0]["t"]
    header = (
        f"history: {len(samples)} samples over {span_s:.1f}s "
        f"(rank {store.rank}, retention {store.retention})"
    )
    for name in list(names)[:max_rows]:
        pts = store.series(name)
        if not pts:
            continue
        values = [v for _, v in pts]
        rows.append(
            f"  {name:<44} {sparkline(values, width):<{width}} "
            f"last={values[-1]:g} min={min(values):g} max={max(values):g}"
        )
    if not rows:
        return header + "\n  (no numeric fields)"
    return "\n".join([header] + rows)
