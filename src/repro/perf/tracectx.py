"""Causal trace context: one id that follows a request everywhere.

The paper's team found its headline bugs by asking *where did this
message come from* — a question per-rank timelines alone cannot
answer. A :class:`TraceContext` is the answer carried in-band: a
``trace_id`` minted where work originates (a task execution, a service
submission), a ``span_id`` for the current hop, and the parent's span
id, propagated

* through the simulated MPI fabric — :meth:`Communicator.isend
  <repro.runtime.mpi.Communicator.isend>` stamps the ambient context
  onto every message and the receive side reads it back, so a ``recv``
  span on rank 3 carries the ``trace_id`` of the ``send`` on rank 0
  that caused it;
* through the service path — a :class:`~repro.service.schema
  .SolveRequest` captures the submitter's context, and the worker that
  eventually traces the rays re-enters it, so client, queue, batcher,
  worker, and cache spans share one trace.

Propagation is thread-local and explicit: :func:`use` installs a
context for a block, :func:`current` reads it, and an enabled
:class:`~repro.perf.tracer.SpanTracer` stamps ``trace_id``/``span_id``
onto every span recorded while a context is active. No context means
no stamping — zero cost for uninstrumented runs.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

# process-unique prefix so ids from different processes (the service's
# process backend, spool workers) never collide when traces merge
_PREFIX = f"{os.getpid() & 0xFFFF:04x}"
_ids = itertools.count(1)
_local = threading.local()


def _next_id() -> str:
    return f"{_PREFIX}-{next(_ids):08x}"


@dataclass(frozen=True)
class TraceContext:
    """One hop of one causal trace (immutable; children share trace_id)."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def child(self) -> "TraceContext":
        """A new hop in the same trace, parented to this one."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_next_id(), parent_id=self.span_id
        )

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceContext":
        return cls(
            trace_id=str(d["trace_id"]),
            span_id=str(d["span_id"]),
            parent_id=d.get("parent_id"),
        )


def new_trace() -> TraceContext:
    """Mint a fresh root context (a new causal chain starts here)."""
    return TraceContext(trace_id=_next_id(), span_id=_next_id(), parent_id=None)


def child_or_new(ctx: Optional[TraceContext] = None) -> TraceContext:
    """Continue ``ctx`` (or the ambient context) if there is one,
    otherwise start a new trace — the standard entry-point idiom."""
    base = ctx if ctx is not None else current()
    return base.child() if base is not None else new_trace()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current() -> Optional[TraceContext]:
    """The calling thread's active context (None when outside any)."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def use(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` as the thread's active context for the block.

    ``None`` is a no-op passthrough so call sites never need their own
    guard (``with use(request.ctx): ...`` works whether or not the
    request carried one).
    """
    if ctx is None:
        yield None
        return
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


def stamp(args: dict, ctx: Optional[TraceContext] = None) -> dict:
    """Merge a context's ids into a span's args (ambient by default).

    Existing keys win — a span that explicitly recorded the *sender's*
    trace id (a recv span) must not have it overwritten by the
    receiver's own ambient context.
    """
    c = ctx if ctx is not None else current()
    if c is not None:
        args.setdefault("trace_id", c.trace_id)
        args.setdefault("span_id", c.span_id)
        if c.parent_id is not None:
            args.setdefault("parent_span_id", c.parent_id)
    return args
