"""The crash flight recorder: always-on, fixed-size, dump-on-failure.

When a 16k-rank run dies, the trace you wish you had is the one nobody
was recording. The flight recorder closes that gap the way an
aircraft's does: a fixed-size ring buffer of the most recent spans and
metric deltas per rank, cheap enough to leave on for every run, read
only after something goes wrong.

Design constraints, in order:

* **Always on** — recording must cost well under 5% of runtime with
  tracing otherwise disabled (EXPERIMENTS E15 measures this).
  Recording one entry is a single ``deque.append`` on a
  ``deque(maxlen=N)``, which CPython performs atomically under the GIL
  — no lock on the hot path, which is what "lock-free" buys here.
* **Bounded** — the ring holds the last ``capacity`` entries and
  silently overwrites the oldest; memory is fixed for the life of the
  process no matter how long the run.
* **Postmortem-first** — :meth:`FlightRecorder.dump` writes
  ``flightrec_rank<k>.json`` atomically, so the file is parseable even
  if the process dies immediately after (or during a second dump).

Feeds: components call :meth:`record` directly at integration points
(task start/finish, checkpoint, recovery events), and the recorder is
also attachable as a :class:`~repro.perf.tracer.SpanTracer` sink so an
*enabled* tracer mirrors every span into the ring for free.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf import tracectx
from repro.util.errors import PerfError


class FlightRecorder:
    """A per-rank ring buffer of recent runtime entries.

    One recorder instance covers one process by default (``rank`` keys
    partition the ring only at dump time, so a simulated many-rank run
    can share a single recorder and still produce per-rank
    postmortems).
    """

    def __init__(self, capacity: int = 4096, rank: Optional[int] = None) -> None:
        if capacity < 1:
            raise PerfError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.rank = rank
        self._t0 = time.perf_counter()
        # deque(maxlen) appends are atomic in CPython: the hot path is
        # one bound-method call, no lock, no allocation beyond the entry
        self._ring: deque = deque(maxlen=self.capacity)
        self._dropped_hint = 0  # entries recorded (ring length saturates)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, kind: str, name: str, rank: Optional[int] = None, **data) -> None:
        """Append one entry; overwrites the oldest when full.

        When a causal :mod:`~repro.perf.tracectx` context is entered on
        the recording thread, its ``trace_id`` is stamped into the
        entry (explicit ``trace_id=...`` kwargs win), so a postmortem
        ring can be joined against merged traces by trace id.
        """
        if "trace_id" not in data:
            ctx = tracectx.current()
            if ctx is not None:
                data["trace_id"] = ctx.trace_id
        self._ring.append(
            {
                "t": time.perf_counter() - self._t0,
                "kind": kind,
                "name": name,
                "rank": self.rank if rank is None else rank,
                **data,
            }
        )
        self._dropped_hint += 1

    def sink(self, event: dict) -> None:
        """A :meth:`SpanTracer.add_sink` adapter: mirror trace events
        into the ring (tid doubles as the rank for scheduler threads)."""
        self._ring.append(
            {
                "t": time.perf_counter() - self._t0,
                "kind": "span",
                "name": event.get("name"),
                "rank": event.get("tid"),
                "ph": event.get("ph"),
                "ts_us": event.get("ts"),
                "dur_us": event.get("dur"),
                "args": event.get("args"),
            }
        )
        self._dropped_hint += 1

    # ------------------------------------------------------------------
    # inspection & postmortem
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ring)

    @property
    def recorded_total(self) -> int:
        """Entries ever recorded (>= len(): the excess was overwritten)."""
        return self._dropped_hint

    def entries(self, rank: Optional[int] = None) -> List[dict]:
        """A snapshot of the ring, oldest first, optionally one rank's.

        Rank-less entries (controller events, crash markers) are
        process-wide and show up in *every* rank's filtered view — a
        postmortem without the crash marker would be useless."""
        snapshot = list(self._ring)
        if rank is None:
            return snapshot
        return [e for e in snapshot if e.get("rank") in (rank, None)]

    def clear(self) -> None:
        self._ring.clear()

    def dump(
        self,
        directory=".",
        rank: Optional[int] = None,
        reason: str = "unspecified",
    ) -> Path:
        """Write one ``flightrec_rank<k>.json`` postmortem atomically.

        ``rank=None`` dumps the whole ring as the recorder's own rank
        (or rank 0); a specific ``rank`` dumps only that rank's entries
        — what the recovery orchestrator calls for each lost rank.
        """
        from repro.util.atomic import atomic_write_text

        label = rank if rank is not None else (self.rank if self.rank is not None else 0)
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"flightrec_rank{label}.json"
        entries = self.entries(rank=rank)
        payload = {
            "rank": label,
            "reason": reason,
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "entries_in_dump": len(entries),
            "wall_time_s": time.perf_counter() - self._t0,
            "entries": entries,
        }
        atomic_write_text(path, json.dumps(payload, indent=1, default=str) + "\n")
        return path

    def dump_all_ranks(self, directory=".", reason: str = "unspecified") -> Dict[int, Path]:
        """One postmortem per rank seen in the ring (plus the recorder's
        own rank if set); the crash-site sweep."""
        ranks = sorted(
            {e.get("rank") for e in self.entries() if isinstance(e.get("rank"), int)}
        )
        if not ranks:
            ranks = [self.rank if self.rank is not None else 0]
        return {r: self.dump(directory, rank=r, reason=reason) for r in ranks}


# ----------------------------------------------------------------------
# the process-wide default recorder: always on, fixed cost
# ----------------------------------------------------------------------
_global_recorder = FlightRecorder()


def get_flight_recorder() -> FlightRecorder:
    return _global_recorder


def set_flight_recorder(recorder: FlightRecorder) -> FlightRecorder:
    """Swap the default recorder; returns the previous one."""
    global _global_recorder
    previous = _global_recorder
    _global_recorder = recorder
    return previous
