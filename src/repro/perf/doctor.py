"""The root-cause doctor: from detections to ranked hypotheses.

:mod:`repro.perf.detect` says *something is wrong*; this module says
*what probably caused it*. The doctor gathers every telemetry surface
a spool or fabric root leaves on disk —

* **detections** — a fresh detector-bank replay of each retained tsdb
  (the root's fleet series and every shard's serve series),
* **events** — the fabric supervisor's append-only ``events.jsonl``
  (death, re-home, respawn, steal, autoscale),
* **flight recorder** — ``flightrec_rank*.json`` crash postmortems,
* **status facts** — cache hit/miss/solve counters, queue depth, SLO
  breaches from each ``status.json``,
* **analysis** — per-rank imbalance from an ``analysis_report.json``

— into one :class:`Evidence` timeline, then scores causal rules over
it. Each rule knows what telemetry shape its cause leaves behind
(a shard death leaves death→rehome→respawn events; a slow worker
leaves latency-quantile drift with *nothing dying*; a poisoned cache
leaves a hit-ratio collapse with a solve surge) and how other causes
explain away its symptoms (backlog growth is discounted when a death
or slowdown is present, because queues back up downstream of both).
The ranked :class:`Hypothesis` list, with evidence-chain indices into
the timeline, is the ``incident.json`` the CI drill asserts on and the
human-readable timeline ``python -m repro doctor`` prints.

The loop is proven closed by :func:`run_doctor_drill`: a
FaultPlan-driven self-test injects three known causes — SIGKILL the
busiest fabric shard, ``--inject-slowdown`` a serve worker, poison
the disk result cache — and requires the doctor's *top-ranked*
hypothesis to name the true cause for each.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fabric.events import read_events
from repro.perf.detect import (
    CACHE_HIT_RATIO,
    Detection,
    default_bank,
    severity_rank,
)
from repro.util.atomic import atomic_write_text
from repro.util.errors import PerfError

#: causes the rule engine can name, ranked hypotheses use these ids
CAUSES = (
    "shard-death",
    "worker-slowdown",
    "cache-poison",
    "queue-overload",
    "load-imbalance",
)


@dataclass
class Evidence:
    """One timeline entry: a detection, event, crash dump, status
    fact, or analysis finding."""

    kind: str     # detection | event | flightrec | status | analysis
    t: float
    source: str   # series, file, or shard the entry came from
    summary: str
    data: Dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "source": self.source,
            "summary": self.summary,
            "data": self.data,
        }


@dataclass
class Hypothesis:
    """One scored root-cause candidate with its evidence chain."""

    cause: str
    subject: Optional[str]
    score: float
    summary: str
    evidence: List[int] = field(default_factory=list)  # timeline indices
    confidence: float = 0.0

    def as_dict(self) -> dict:
        return {
            "cause": self.cause,
            "subject": self.subject,
            "score": round(self.score, 3),
            "confidence": round(self.confidence, 4),
            "summary": self.summary,
            "evidence": sorted(set(self.evidence)),
        }


# ----------------------------------------------------------------------
# evidence collection (reads files only — live or postmortem)
# ----------------------------------------------------------------------
def _tsdb_dirs(root: Path) -> List[Tuple[Path, str, str]]:
    """Every tsdb directory under a root: ``(dir, label, rule_kind)``.
    A fabric root's own tsdb holds the fleet series; each shard dir
    holds serve series; a bare spool holds serve series."""
    out: List[Tuple[Path, str, str]] = []
    own = root / "tsdb"
    if own.is_dir():
        is_fabric = (root / "fabric_status.json").exists() or (
            root / "shards").is_dir()
        out.append((own, "root", "fabric" if is_fabric else "serve"))
    shards = root / "shards"
    if shards.is_dir():
        for sdir in sorted(p for p in shards.iterdir() if p.is_dir()):
            tdir = sdir / "tsdb"
            if tdir.is_dir():
                out.append((tdir, sdir.name, "serve"))
    return out


def _scan_detections(root: Path, t0: Optional[float]) -> List[Evidence]:
    from repro.perf.tsdb import TimeSeriesStore

    out: List[Evidence] = []
    for tdir, label, kind in _tsdb_dirs(root):
        for path in sorted(tdir.glob("tsdb_rank*.jsonl")):
            try:
                rank = int(path.stem.replace("tsdb_rank", ""))
            except ValueError:
                continue
            store = TimeSeriesStore(tdir, rank=rank)
            bank = default_bank(kind, hold_s=float("inf"))
            for d in bank.scan(store):
                if t0 is not None and d.t < t0:
                    continue
                doc = d.as_dict()
                doc["scope"] = label
                out.append(Evidence(
                    kind="detection",
                    t=d.t,
                    source=f"{label}:{d.series}",
                    summary=f"[{d.severity}] {d.message}",
                    data=doc,
                ))
    return out


def _event_summary(rec: dict) -> str:
    kind = rec.get("kind", "?")
    shard = rec.get("shard")
    if kind == "death":
        return f"shard {shard} died ({rec.get('reason', '?')})"
    if kind == "rehome":
        return (f"shard {shard}: {rec.get('claims_released', 0)} claim(s) "
                f"released, {rec.get('requests_rehomed', 0)} request(s) "
                f"re-homed to {rec.get('target') or 'self'}")
    if kind == "respawn":
        return f"shard {shard} respawned (pid {rec.get('pid')})"
    if kind == "steal":
        return (f"{rec.get('moved', 0)} request(s) stolen "
                f"{rec.get('src')} -> {rec.get('dst')}")
    if kind == "autoscale":
        return (f"autoscale {rec.get('from_shards')} -> "
                f"{rec.get('to_shards')} ({rec.get('reason')})")
    return f"{kind} {shard or ''}".strip()


def _collect_events(root: Path, t0: Optional[float]) -> List[Evidence]:
    return [
        Evidence(
            kind="event",
            t=float(rec.get("t", 0.0)),
            source="events.jsonl",
            summary=_event_summary(rec),
            data=rec,
        )
        for rec in read_events(root / "events.jsonl", t0=t0)
    ]


def _collect_flightrec(root: Path, t0: Optional[float]) -> List[Evidence]:
    out: List[Evidence] = []
    paths = sorted(root.glob("flightrec_rank*.json"))
    shards = root / "shards"
    if shards.is_dir():
        for sdir in sorted(p for p in shards.iterdir() if p.is_dir()):
            paths.extend(sorted(sdir.glob("flightrec_rank*.json")))
    for path in paths:
        try:
            payload = json.loads(path.read_text())
            mtime = path.stat().st_mtime
        except (OSError, json.JSONDecodeError):
            continue
        if t0 is not None and mtime < t0:
            continue
        out.append(Evidence(
            kind="flightrec",
            t=mtime,
            source=str(path.relative_to(root)),
            summary=(f"flight recorder dump (rank {payload.get('rank')}, "
                     f"reason {payload.get('reason', '?')}, "
                     f"{payload.get('entries_in_dump', 0)} entries)"),
            data={"reason": payload.get("reason"),
                  "rank": payload.get("rank"),
                  "entries_in_dump": payload.get("entries_in_dump", 0)},
        ))
    return out


def _status_paths(root: Path) -> List[Tuple[Path, str]]:
    out: List[Tuple[Path, str]] = []
    if (root / "status.json").exists():
        out.append((root / "status.json", "root"))
    shards = root / "shards"
    if shards.is_dir():
        for sdir in sorted(p for p in shards.iterdir() if p.is_dir()):
            if (sdir / "status.json").exists():
                out.append((sdir / "status.json", sdir.name))
    return out


def _collect_status(root: Path) -> List[Evidence]:
    out: List[Evidence] = []
    for path, label in _status_paths(root):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        stats = (doc.get("shard") or {}).get("stats") or {}
        hits = (stats.get("cache_hits_memory") or 0) + (
            stats.get("cache_hits_disk") or 0)
        data = {
            "shard": label,
            "degraded": bool(doc.get("degraded")),
            "breaches": doc.get("breaches") or [],
            "queue_depth": doc.get("queue_depth", 0),
            "cache_hits": hits,
            "cache_misses": stats.get("cache_misses") or 0,
            "solves": stats.get("solves") or 0,
            "requests": stats.get("requests") or 0,
            "detections_worst": (doc.get("detections") or {}).get("worst"),
        }
        bits = [f"{label}: cache {hits:g} hit(s) / "
                f"{data['cache_misses']:g} miss(es), "
                f"{data['solves']:g} solve(s), "
                f"queue {data['queue_depth']}"]
        if data["degraded"]:
            bits.append("DEGRADED")
        for breach in data["breaches"]:
            bits.append(f"breach: {breach}")
        out.append(Evidence(
            kind="status",
            t=float(doc.get("heartbeat_t") or 0.0),
            source=str(path.relative_to(root)),
            summary="; ".join(bits),
            data=data,
        ))
    return out


def _collect_analysis(root: Path) -> List[Evidence]:
    path = root / "analysis_report.json"
    if not path.exists():
        return []
    try:
        report = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return []
    att = report.get("attribution") or {}
    per_rank = att.get("per_rank") or []
    wall = att.get("wall_s") or 0.0
    if len(per_rank) < 2 or wall <= 0:
        return []
    idle_fracs = [row.get("idle_s", 0.0) / wall for row in per_rank]
    spread = max(idle_fracs) - min(idle_fracs)
    if spread < 0.25:
        return []  # balanced enough — not evidence of anything
    laziest = max(range(len(per_rank)),
                  key=lambda i: idle_fracs[i])
    return [Evidence(
        kind="analysis",
        t=path.stat().st_mtime,
        source="analysis_report.json",
        summary=(f"per-rank idle spread {spread:.0%} of wall clock "
                 f"(rank {laziest} idles {idle_fracs[laziest]:.0%})"),
        data={"idle_spread_frac": spread, "laziest_rank": laziest},
    )]


def collect_evidence(root, window_s: Optional[float] = None,
                     now: Optional[float] = None) -> List[Evidence]:
    """The full evidence timeline for a spool or fabric root, time
    ascending. ``window_s`` restricts detections/events to the recent
    window (live mode); None replays everything retained (postmortem)."""
    root = Path(root)
    now = time.time() if now is None else now
    t0 = (now - window_s) if window_s is not None else None
    evidence = (
        _scan_detections(root, t0)
        + _collect_events(root, t0)
        + _collect_flightrec(root, t0)
        + _collect_status(root)
        + _collect_analysis(root)
    )
    evidence.sort(key=lambda e: e.t)
    return evidence


# ----------------------------------------------------------------------
# the causal rules
# ----------------------------------------------------------------------
def _detections(ev: Sequence[Evidence]):
    for i, e in enumerate(ev):
        if e.kind == "detection":
            yield i, e


def _events_of(ev: Sequence[Evidence], *kinds: str):
    for i, e in enumerate(ev):
        if e.kind == "event" and e.data.get("kind") in kinds:
            yield i, e


def _rule_shard_death(ev: Sequence[Evidence]) -> Optional[Hypothesis]:
    deaths = list(_events_of(ev, "death"))
    if not deaths:
        return None
    chain = [i for i, _ in deaths]
    score = 4.0 * len(deaths)
    for i, e in _events_of(ev, "rehome", "respawn"):
        score += 1.0
        chain.append(i)
    for i, e in enumerate(ev):
        if e.kind == "flightrec":
            score += 1.0
            chain.append(i)
    # backlog/queue disturbance around a death corroborates (the
    # re-homed work piles onto the survivor)
    for i, e in _detections(ev):
        series = e.data.get("series", "")
        if "backlog" in series or "queue" in series:
            score += 0.5
            chain.append(i)
    victim = deaths[0][1].data.get("shard")
    reason = deaths[0][1].data.get("reason", "?")
    return Hypothesis(
        cause="shard-death",
        subject=victim,
        score=score,
        summary=(f"shard {victim} died ({reason}); its work was re-homed "
                 f"and the shard respawned — {len(deaths)} death(s) in "
                 "the window"),
        evidence=chain,
    )


def _rule_worker_slowdown(ev: Sequence[Evidence]) -> Optional[Hypothesis]:
    drifted: Dict[str, int] = {}
    chain: List[int] = []
    worst_ratio = 0.0
    for i, e in _detections(ev):
        series = e.data.get("series", "")
        if (e.data.get("detector") == "quantile-drift"
                and (series.endswith(".p95_s") or series.endswith(".p99_s"))):
            drifted[series] = i
            chain.append(i)
            worst_ratio = max(
                worst_ratio, (e.data.get("evidence") or {}).get("ratio", 0.0))
    if not drifted:
        return None
    score = 3.0 * min(3, len(drifted))
    for i, e in enumerate(ev):
        if e.kind == "status" and any(
                "p99" in str(b) for b in e.data.get("breaches", [])):
            score += 1.0
            chain.append(i)
    scopes = {e.data.get("scope") for i, e in _detections(ev)
              if i in set(chain)}
    # a death explains latency better than a slow worker does; a cache
    # collapse also inflates latency (solves where hits used to be)
    if any(True for _ in _events_of(ev, "death")):
        score *= 0.25
    if any(e.data.get("series") == CACHE_HIT_RATIO
           for _, e in _detections(ev)):
        score *= 0.5
    subject = sorted(s for s in scopes if s)[0] if scopes else None
    return Hypothesis(
        cause="worker-slowdown",
        subject=subject,
        score=score,
        summary=(f"latency quantiles drifted up to {worst_ratio:.1f}x "
                 f"baseline on {len(drifted)} series with no shard "
                 "death in the window — a worker got slow"),
        evidence=chain,
    )


def _rule_cache_poison(ev: Sequence[Evidence]) -> Optional[Hypothesis]:
    chain: List[int] = []
    worst_ratio = 0.0
    scopes = set()
    for i, e in _detections(ev):
        if e.data.get("series", "").endswith(CACHE_HIT_RATIO):
            chain.append(i)
            scopes.add(e.data.get("scope"))
            worst_ratio = max(
                worst_ratio, (e.data.get("evidence") or {}).get("ratio", 0.0))
    if not chain:
        return None
    score = 4.0 * min(3, len(chain))
    for i, e in enumerate(ev):
        if e.kind != "status":
            continue
        # a warmed service whose hits went to zero while solves track
        # requests is serving everything the hard way
        if (e.data.get("cache_hits", 0) == 0
                and e.data.get("cache_misses", 0) >= 3
                and e.data.get("solves", 0) >= 3):
            score += 2.0
            chain.append(i)
    subject = sorted(s for s in scopes if s)[0] if scopes else None
    return Hypothesis(
        cause="cache-poison",
        subject=f"{subject or 'service'}:result-cache",
        score=score,
        summary=(f"cache hit ratio collapsed {worst_ratio:.1f}x from "
                 "baseline while solves surged — the result cache stopped "
                 "answering (poisoned, corrupted, or evicted)"),
        evidence=chain,
    )


def _rule_queue_overload(ev: Sequence[Evidence]) -> Optional[Hypothesis]:
    chain: List[int] = []
    for i, e in _detections(ev):
        series = e.data.get("series", "")
        if "queue_depth" in series or "backlog" in series:
            chain.append(i)
    score = 2.0 * min(3, len(chain))
    for i, e in enumerate(ev):
        if e.kind == "status" and any(
                "queue" in str(b) for b in e.data.get("breaches", [])):
            score += 2.0
            chain.append(i)
    if not chain:
        return None
    # backlog is the *symptom* of most other causes: only blame load
    # itself when nothing upstream explains it
    upstream = (
        any(True for _ in _events_of(ev, "death"))
        or any(e.data.get("detector") == "quantile-drift"
               for _, e in _detections(ev))
    )
    if upstream:
        score *= 0.3
    return Hypothesis(
        cause="queue-overload",
        subject=None,
        score=score,
        summary=("queue depth / backlog broke its band with no upstream "
                 "cause in evidence — offered load exceeds capacity"
                 if not upstream else
                 "queue depth rose, but an upstream cause better explains it"),
        evidence=chain,
    )


def _rule_load_imbalance(ev: Sequence[Evidence]) -> Optional[Hypothesis]:
    chain = [i for i, e in enumerate(ev) if e.kind == "analysis"]
    if not chain:
        return None
    spread = max(ev[i].data.get("idle_spread_frac", 0.0) for i in chain)
    return Hypothesis(
        cause="load-imbalance",
        subject=f"rank{ev[chain[0]].data.get('laziest_rank')}",
        score=3.0 * len(chain),
        summary=(f"critical-path analysis shows a {spread:.0%} per-rank "
                 "idle spread — work is unevenly distributed"),
        evidence=chain,
    )


_RULES: Tuple[Callable[[Sequence[Evidence]], Optional[Hypothesis]], ...] = (
    _rule_shard_death,
    _rule_cache_poison,
    _rule_worker_slowdown,
    _rule_queue_overload,
    _rule_load_imbalance,
)


def rank_hypotheses(evidence: Sequence[Evidence]) -> List[Hypothesis]:
    """Score every rule over the timeline; ranked best-first with
    normalized confidence."""
    hyps = [h for h in (rule(evidence) for rule in _RULES)
            if h is not None and h.score > 0]
    total = sum(h.score for h in hyps)
    for h in hyps:
        h.confidence = h.score / total if total > 0 else 0.0
    hyps.sort(key=lambda h: (-h.score, h.cause))
    return hyps


# ----------------------------------------------------------------------
# incidents
# ----------------------------------------------------------------------
def diagnose(root, window_s: Optional[float] = None,
             now: Optional[float] = None) -> dict:
    """The full diagnosis of a root: evidence timeline + ranked
    hypotheses, as the ``incident.json`` document."""
    now = time.time() if now is None else now
    evidence = collect_evidence(root, window_s=window_s, now=now)
    hyps = rank_hypotheses(evidence)
    detections = [e for e in evidence if e.kind == "detection"]
    return {
        "t": now,
        "root": str(root),
        "window_s": window_s,
        "cause": hyps[0].cause if hyps else None,
        "subject": hyps[0].subject if hyps else None,
        "hypotheses": [h.as_dict() for h in hyps],
        "evidence": [e.as_dict() for e in evidence],
        "counts": {
            "evidence": len(evidence),
            "detections": len(detections),
            "events": sum(1 for e in evidence if e.kind == "event"),
            "critical": sum(
                1 for e in detections
                if e.data.get("severity") == "critical"),
        },
    }


def summarize_live(detections: Sequence[Detection], events: Sequence[dict],
                   now: Optional[float] = None) -> Optional[dict]:
    """A compact incident summary from in-memory state — what the
    fabric control loop embeds in ``fabric_status.json`` each tick
    without touching disk."""
    evidence: List[Evidence] = [
        Evidence(kind="detection", t=d.t, source=d.series,
                 summary=f"[{d.severity}] {d.message}", data=d.as_dict())
        for d in detections
    ]
    evidence.extend(
        Evidence(kind="event", t=float(rec.get("t", 0.0)),
                 source="events.jsonl", summary=_event_summary(rec),
                 data=rec)
        for rec in events
    )
    evidence.sort(key=lambda e: e.t)
    hyps = rank_hypotheses(evidence)
    if not hyps:
        return None
    return {
        "t": time.time() if now is None else now,
        "cause": hyps[0].cause,
        "subject": hyps[0].subject,
        "hypotheses": [
            dict(h.as_dict(),
                 evidence_summaries=[evidence[i].summary
                                     for i in sorted(set(h.evidence))[:4]])
            for h in hyps[:3]
        ],
    }


def write_incident(path, incident: dict) -> Path:
    return atomic_write_text(Path(path), json.dumps(incident, indent=2) + "\n")


def format_incident(incident: dict, max_evidence: int = 40) -> str:
    """Human-readable incident: the timeline, then ranked hypotheses
    with their evidence chains."""
    evidence = incident.get("evidence") or []
    hyps = incident.get("hypotheses") or []
    counts = incident.get("counts") or {}
    lines = [
        f"incident @ {incident.get('root', '?')} — "
        f"{counts.get('detections', 0)} detection(s) "
        f"({counts.get('critical', 0)} critical), "
        f"{counts.get('events', 0)} fabric event(s)"
    ]
    if evidence:
        lines.append("timeline:")
        shown = evidence[-max_evidence:]
        base = len(evidence) - len(shown)
        t_first = shown[0].get("t", 0.0)
        for off, e in enumerate(shown):
            dt = e.get("t", 0.0) - t_first
            lines.append(
                f"  [{base + off:3d}] +{dt:7.2f}s {e.get('kind', '?'):<9} "
                f"{e.get('summary', '')}"
            )
    if hyps:
        lines.append("hypotheses (ranked):")
        for rank, h in enumerate(hyps, start=1):
            refs = ",".join(str(i) for i in (h.get("evidence") or [])[:8])
            lines.append(
                f"  {rank}. {h.get('cause'):<16} "
                f"confidence {h.get('confidence', 0):5.0%}  "
                f"subject {h.get('subject') or '-'}  evidence [{refs}]"
            )
            lines.append(f"     {h.get('summary')}")
    else:
        lines.append("hypotheses: none — nothing looks wrong")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the FaultPlan-driven self-test drill
# ----------------------------------------------------------------------
def _drill_spec(seed: int):
    from repro.ups import GridSpec, ProblemSpec, RMCRTSpec

    return ProblemSpec(
        grid=GridSpec(resolution=8, levels=1),
        rmcrt=RMCRTSpec(n_divq_rays=2, random_seed=seed),
    )


def _serve_argv(spool: Path, max_requests: int, tsdb_interval: float,
                cache_dir: Optional[Path] = None,
                extra: Sequence[str] = ()) -> List[str]:
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--spool", str(spool),
        "--shard-id", "shard0",
        "--workers", "1",
        "--max-requests", str(max_requests),
        "--idle-timeout", "10",
        "--tsdb-interval", str(tsdb_interval),
        "--batch-window", "0.001",
    ]
    if cache_dir is not None:
        argv += ["--cache-dir", str(cache_dir)]
    argv += list(extra)
    return argv


def _serve_and_submit(spool: Path, specs, tsdb_interval: float,
                      cache_dir: Optional[Path] = None,
                      extra: Sequence[str] = (),
                      prefix: str = "doctor",
                      timeout_s: float = 180.0) -> None:
    """One serve subprocess fed one request at a time (so every
    request is a distinct serve pass and the tsdb cadence sees each),
    waiting for each result before sending the next. ``prefix`` must
    be unique per serve phase sharing a spool — a reused ticket name
    would match the previous phase's stale outbox result and the
    pacing (and its telemetry) would collapse."""
    from repro.service.spool import read_result_meta, write_request
    from repro.ups import spec_to_ups

    inbox, outbox = spool / "inbox", spool / "outbox"
    inbox.mkdir(parents=True, exist_ok=True)
    outbox.mkdir(parents=True, exist_ok=True)
    log = (spool / "serve_drill.log").open("a", encoding="utf-8")
    proc = subprocess.Popen(
        _serve_argv(spool, len(specs), tsdb_interval,
                    cache_dir=cache_dir, extra=extra),
        stdout=log, stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + timeout_s
    try:
        for i, spec in enumerate(specs):
            ticket = f"{prefix}-{i:03d}"
            write_request(inbox, ticket, spec_to_ups(spec))
            while read_result_meta(outbox, ticket) is None:
                if time.monotonic() > deadline:
                    raise PerfError(
                        f"doctor drill: no result for {ticket} within "
                        f"{timeout_s}s")
                if proc.poll() is not None:
                    raise PerfError(
                        f"doctor drill: serve exited early (rc "
                        f"{proc.returncode}); see {spool}/serve_drill.log")
                time.sleep(0.01)
        if proc.wait(timeout=60.0) != 0:
            raise PerfError(
                f"doctor drill: serve failed (rc {proc.returncode})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
        log.close()


def _drill_shard_death(root: Path) -> dict:
    from repro.fabric.fabric import run_drill

    report = run_drill(root, shards=2, repeats=1, kill=True,
                       timeout_s=240.0)
    if report["lost"] or not report["killed"]:
        raise PerfError(f"doctor drill: fabric kill drill failed: {report}")
    return {"killed": report["killed"]}


def _drill_worker_slowdown(root: Path, delay_s: float = 0.3,
                           warmup: int = 8, requests: int = 18) -> dict:
    specs = [_drill_spec(seed=500 + i) for i in range(requests)]
    _serve_and_submit(
        root, specs, tsdb_interval=0.05,
        extra=["--inject-slowdown", str(delay_s),
               "--inject-slowdown-after", str(warmup)],
    )
    return {"delay_s": delay_s, "warmup": warmup}


def _drill_cache_poison(root: Path, requests: int = 14) -> dict:
    cache_dir = root / "cachedisk"
    specs = [_drill_spec(seed=900 + i) for i in range(requests)]
    # phase 1: warm the disk cache (tsdb off — the poisoning story
    # starts at the healthy, warmed baseline)
    _serve_and_submit(root, specs, tsdb_interval=0.0, cache_dir=cache_dir,
                      prefix="warm")
    # phase 2: a fresh serve answers everything from disk — the high
    # hit-ratio baseline the detectors learn
    _serve_and_submit(root, specs, tsdb_interval=0.05, cache_dir=cache_dir,
                      prefix="baseline")
    # phase 3: poison every cached payload (sidecars stay — the cache
    # *looks* warm, which is exactly what makes this cause sneaky)
    poisoned = 0
    for npz in sorted(cache_dir.glob("*.npz")):
        npz.write_bytes(b"poisoned!" * 8)
        poisoned += 1
    if not poisoned:
        raise PerfError(f"doctor drill: nothing to poison in {cache_dir}")
    # phase 4: the same load that just hit 100% now misses 100%
    _serve_and_submit(root, specs, tsdb_interval=0.05, cache_dir=cache_dir,
                      prefix="poisoned")
    return {"poisoned": poisoned}


_DRILL_INJECTORS: Dict[str, Callable[[Path], dict]] = {
    "shard-death": _drill_shard_death,
    "worker-slowdown": _drill_worker_slowdown,
    "cache-poison": _drill_cache_poison,
}


def run_doctor_drill(root, causes: Optional[Sequence[str]] = None,
                     report_path=None) -> dict:
    """The closed-loop self-test: inject each cause from a FaultPlan,
    run the doctor postmortem, and require its top hypothesis to name
    the injected cause. Writes one ``incident.json`` per cause under
    the cause's drill directory."""
    from repro.resilience.faultplan import DOCTOR_KINDS, FaultEvent, FaultPlan

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    wanted = tuple(causes) if causes else DOCTOR_KINDS
    plan = FaultPlan([FaultEvent(kind=k) for k in wanted])
    results: List[dict] = []
    for event in plan.doctor_events():
        cause = event.kind
        case_root = root / cause
        case_root.mkdir(parents=True, exist_ok=True)
        injected = _DRILL_INJECTORS[cause](case_root)
        incident = diagnose(case_root)
        incident_path = case_root / "incident.json"
        write_incident(incident_path, incident)
        top = (incident["hypotheses"] or [{}])[0]
        ok = top.get("cause") == cause
        if cause == "shard-death" and ok:
            ok = top.get("subject") == injected.get("killed")
        chain_kinds = sorted({
            incident["evidence"][i]["kind"]
            for i in top.get("evidence", [])
            if 0 <= i < len(incident["evidence"])
        })
        results.append({
            "cause": cause,
            "injected": injected,
            "diagnosed": top.get("cause"),
            "subject": top.get("subject"),
            "confidence": top.get("confidence", 0.0),
            "evidence_kinds": chain_kinds,
            "evidence_chain_len": len(top.get("evidence", [])),
            "incident": str(incident_path),
            "ok": bool(ok and top.get("evidence")),
        })
    report = {
        "t": time.time(),
        "plan": plan.as_dicts(),
        "cases": results,
        "ok": bool(results) and all(c["ok"] for c in results),
    }
    if report_path is not None:
        atomic_write_text(Path(report_path),
                          json.dumps(report, indent=2) + "\n")
    return report


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def cmd_doctor(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro doctor",
        description="Root-cause diagnosis over a spool or fabric root's "
        "telemetry (tsdb detections, fabric events, flight recorder, "
        "status facts).",
    )
    sub = parser.add_subparsers(dest="mode", required=True)

    live = sub.add_parser(
        "live", help="diagnose the recent window of a running root")
    live.add_argument("root", help="spool or fabric root directory")
    live.add_argument("--window", type=float, default=300.0,
                      help="seconds of history to consider")
    live.add_argument("--out", default=None,
                      help="also write incident.json here")

    post = sub.add_parser(
        "postmortem", help="diagnose everything the root retains")
    post.add_argument("root", help="spool or fabric root directory")
    post.add_argument("--out", default=None,
                      help="incident.json path (default ROOT/incident.json)")

    drill = sub.add_parser(
        "drill", help="closed-loop self-test: inject known causes, "
        "require the doctor to name each one")
    drill.add_argument("--root", default="doctor_drill",
                       help="working directory for the drill fleets")
    drill.add_argument("--causes", nargs="*", default=None,
                       choices=("shard-death", "worker-slowdown",
                                "cache-poison"),
                       help="subset of causes to inject (default: all)")
    drill.add_argument("--report", default=None,
                       help="write the drill report JSON here")

    args = parser.parse_args(argv)
    if args.mode == "drill":
        try:
            report = run_doctor_drill(args.root, causes=args.causes,
                                      report_path=args.report)
        except PerfError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        for case in report["cases"]:
            verdict = "ok" if case["ok"] else "WRONG"
            print(f"{case['cause']:<18} -> diagnosed "
                  f"{case['diagnosed'] or 'nothing'} "
                  f"(subject {case['subject'] or '-'}, confidence "
                  f"{case['confidence']:.0%}, evidence "
                  f"{case['evidence_kinds']}) [{verdict}]")
            print(f"  incident: {case['incident']}")
        print("doctor drill: "
              + ("all causes named correctly"
                 if report["ok"] else "FAILED — see incidents"))
        return 0 if report["ok"] else 1

    window = args.window if args.mode == "live" else None
    incident = diagnose(args.root, window_s=window)
    print(format_incident(incident))
    out = args.out
    if args.mode == "postmortem" and out is None:
        out = str(Path(args.root) / "incident.json")
    if out:
        write_incident(out, incident)
        print(f"incident: {out}")
    if args.mode == "live":
        return 3 if incident["cause"] is not None else 0
    return 0
