"""Trace analytics: critical path, wait attribution, speedup bounds.

The raw observability artifacts (merged cross-rank traces from
:mod:`repro.perf.merge`, simulated timelines from
:mod:`repro.dessim.tracesim`) answer *what happened*; this module
answers *where the lost efficiency went* — the question behind the
paper's Figures 2–3 scaling story. Given a trace-event recording it
builds a cross-rank span DAG (program order within each rank lane plus
the send→recv flow edges the merge paired by message id) and extracts:

* the **critical path** — the longest dependency chain of spans,
  walked backwards from the last span to finish, always choosing the
  predecessor whose completion gated the current span's start. Spans
  on the path are time-disjoint, so the sum of their durations is a
  valid **lower bound on the makespan** of any schedule of the same
  work — the speedup-bound estimate reported against the measured
  E11 scaling curves;
* **wall-clock attribution** — every rank's measured wall-clock split
  into ``compute`` (task spans), ``comm_wait`` (comm.send/comm.recv
  spans), and ``idle`` (the remainder). The three buckets must sum to
  the measured wall-clock; a negative residual means spans overlapped
  and the attribution is lying, which :func:`analyze_events` flags;
* **top-K bottlenecks** — the tasks and ranks carrying the most time,
  ranked by total busy seconds.

``python -m repro analyze`` (see :func:`cmd_analyze`) runs the
analysis over an existing trace file, a fresh profile→merge pipeline,
or a tracesim run, and writes ``analysis_report.json`` — the artifact
the CI smoke step gates on and the input the SLO autoscaler and
task-graph optimizer roadmap items will read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import PerfError

#: span categories that count as compute work
TASK_CATS = frozenset({"task", "sim.task"})

#: span names that count as communication wait (the Figure 1 quantity)
COMM_PREFIX = "comm."

#: attribution buckets must sum to wall-clock within this fraction
ATTRIBUTION_TOLERANCE = 0.01


@dataclass
class SpanNode:
    """One complete ("X") event, normalized into the DAG."""

    index: int
    name: str
    lane: Tuple[int, int]  # (pid, tid)
    rank: int
    start: float           # µs, trace clock
    dur: float
    cat: str = ""
    args: dict = field(default_factory=dict)
    #: indices of message-edge predecessors (flow sources)
    msg_preds: List[int] = field(default_factory=list)
    #: index of the previous span on the same lane (program order)
    lane_pred: Optional[int] = None

    @property
    def end(self) -> float:
        return self.start + self.dur

    @property
    def is_task(self) -> bool:
        return self.cat in TASK_CATS

    @property
    def is_comm(self) -> bool:
        return self.name.startswith(COMM_PREFIX)


@dataclass
class SpanDag:
    """The cross-rank span DAG plus the flow-edge bookkeeping."""

    nodes: List[SpanNode]
    ranks: List[int]
    msg_edges: int
    unbound_flows: int


def _lane_rank(pid: int, tid: int, multi_pid: bool) -> int:
    """A lane's rank id: merged traces carry one pid per rank file
    (pid == rank); single-pid recordings (tracesim export, an unmerged
    profile) pin rank threads to tid == rank."""
    return int(pid) if multi_pid else int(tid)


def build_span_dag(events: Iterable[dict]) -> SpanDag:
    """Normalize a trace-event list into the cross-rank span DAG.

    Only *rank lanes* — (pid, tid) rows containing at least one task
    span — participate: the driver lane's envelope spans (``profile``,
    ``timestep N``) cover the whole run and would swallow both the
    attribution and the critical path. Within a lane, spans nested
    inside another span are dropped (rank lanes record disjoint spans
    by construction; nesting would double-count attribution).

    Flow edges: each ``ph: "s"`` is bound to the lane span enclosing
    (or last ending before) it, each ``ph: "f"`` to the span enclosing
    it, or — for simulated flows that arrive between spans — the span
    its ``args.dtask_id`` names, else the first span starting at or
    after the arrival. An edge is only added when the source span ends
    no later than the destination span starts, which is what keeps the
    critical path a valid lower bound.
    """
    by_lane: Dict[Tuple[int, int], List[dict]] = {}
    flow_starts: Dict[str, List[dict]] = {}
    flow_finishes: Dict[str, List[dict]] = {}
    pids = set()
    for e in events:
        ph = e.get("ph")
        if ph not in ("X", "s", "f"):
            continue
        lane = (int(e.get("pid", 0)), int(e.get("tid", 0)))
        pids.add(lane[0])
        if ph == "X":
            by_lane.setdefault(lane, []).append(e)
        elif ph == "s":
            flow_starts.setdefault(str(e.get("id")), []).append(e)
        else:
            flow_finishes.setdefault(str(e.get("id")), []).append(e)

    multi_pid = len(pids) > 1
    nodes: List[SpanNode] = []
    lane_nodes: Dict[Tuple[int, int], List[SpanNode]] = {}
    ranks: List[int] = []
    for lane, lane_events in sorted(by_lane.items()):
        if not any(e.get("cat") in TASK_CATS for e in lane_events):
            continue  # driver / worker lane: not a rank timeline
        rank = _lane_rank(*lane, multi_pid=multi_pid)
        ranks.append(rank)
        lane_events.sort(key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))))
        kept: List[SpanNode] = []
        open_end = -1.0
        for e in lane_events:
            ts = float(e.get("ts", 0.0))
            dur = float(e.get("dur", 0.0))
            if ts + dur <= open_end + 1e-9 and kept:
                continue  # nested inside the previous kept span
            node = SpanNode(
                index=len(nodes),
                name=str(e.get("name", "?")),
                lane=lane,
                rank=rank,
                start=ts,
                dur=dur,
                cat=str(e.get("cat", "")),
                args=dict(e.get("args") or {}),
            )
            if kept:
                node.lane_pred = kept[-1].index
            kept.append(node)
            nodes.append(node)
            open_end = max(open_end, ts + dur)
        lane_nodes[lane] = kept

    def bind_source(ev: dict) -> Optional[SpanNode]:
        lane = (int(ev.get("pid", 0)), int(ev.get("tid", 0)))
        spans = lane_nodes.get(lane)
        if not spans:
            return None
        ts = float(ev.get("ts", 0.0))
        best = None
        for s in spans:
            if s.start <= ts <= s.end + 1e-9:
                return s
            if s.end <= ts + 1e-9:
                best = s  # latest span ending before the departure
            else:
                break
        return best

    def bind_dest(ev: dict) -> Optional[SpanNode]:
        lane = (int(ev.get("pid", 0)), int(ev.get("tid", 0)))
        spans = lane_nodes.get(lane)
        if not spans:
            return None
        ts = float(ev.get("ts", 0.0))
        wanted = (ev.get("args") or {}).get("dtask_id")
        for s in spans:
            if s.start <= ts <= s.end + 1e-9:
                return s
        if wanted is not None:
            for s in spans:
                if s.args.get("dtask_id") == wanted and s.start >= ts - 1e-9:
                    return s
        for s in spans:
            if s.start >= ts - 1e-9:
                return s  # first span that could have consumed the message
        return None

    msg_edges = 0
    unbound = 0
    for fid, starts in flow_starts.items():
        finishes = flow_finishes.get(fid, [])
        for s_ev, f_ev in zip(starts, finishes):
            src = bind_source(s_ev)
            dst = bind_dest(f_ev)
            if src is None or dst is None or src.index == dst.index:
                unbound += 1
                continue
            # only time-consistent edges keep the bound valid
            if src.end <= dst.start + 1e-9:
                dst.msg_preds.append(src.index)
                msg_edges += 1
            else:
                unbound += 1
    return SpanDag(
        nodes=nodes, ranks=sorted(set(ranks)), msg_edges=msg_edges,
        unbound_flows=unbound,
    )


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
def critical_path(dag: SpanDag) -> List[SpanNode]:
    """Walk back from the last span to finish, always stepping to the
    predecessor (message source or lane predecessor) whose completion
    was the *latest* — the one that actually gated the span's start.
    Returns the chain oldest-first; spans on it are pairwise
    time-disjoint by construction."""
    if not dag.nodes:
        return []
    by_index = {n.index: n for n in dag.nodes}
    cur = max(dag.nodes, key=lambda n: n.end)
    path = [cur]
    seen = {cur.index}
    while True:
        candidates: List[SpanNode] = []
        if cur.lane_pred is not None:
            candidates.append(by_index[cur.lane_pred])
        candidates.extend(by_index[i] for i in cur.msg_preds)
        candidates = [
            c for c in candidates
            if c.index not in seen and c.end <= cur.start + 1e-9
        ]
        if not candidates:
            break
        cur = max(candidates, key=lambda c: c.end)
        seen.add(cur.index)
        path.append(cur)
    path.reverse()
    return path


def _path_summary(path: Sequence[SpanNode], top_k: int) -> dict:
    work = sum(n.dur for n in path)
    elapsed = (path[-1].end - path[0].start) if path else 0.0
    contributions: Dict[str, Dict[str, float]] = {}
    for n in path:
        c = contributions.setdefault(n.name, {"seconds": 0.0, "count": 0})
        c["seconds"] += n.dur / 1e6
        c["count"] += 1
    ranked = sorted(
        (
            {
                "name": name,
                "seconds": c["seconds"],
                "count": int(c["count"]),
                "share": (c["seconds"] * 1e6 / work) if work else 0.0,
            }
            for name, c in contributions.items()
        ),
        key=lambda d: -d["seconds"],
    )
    return {
        "work_s": work / 1e6,
        "elapsed_s": elapsed / 1e6,
        "wait_s": max(0.0, elapsed - work) / 1e6,
        "spans": len(path),
        "contributions": ranked[:top_k],
        "chain": [
            {
                "name": n.name,
                "rank": n.rank,
                "start_s": n.start / 1e6,
                "dur_s": n.dur / 1e6,
            }
            for n in path
        ],
    }


# ----------------------------------------------------------------------
# wall-clock attribution
# ----------------------------------------------------------------------
def attribute_wallclock(dag: SpanDag, tolerance: float = ATTRIBUTION_TOLERANCE) -> dict:
    """Split every rank's measured wall-clock into compute / comm-wait
    / idle buckets. The window is the global [first span start, last
    span end] across rank lanes, so each rank's buckets sum to the same
    measured wall-clock. ``idle`` is the remainder; a negative
    remainder (overlapping spans — double-counted work) beyond
    ``tolerance`` flags the attribution invalid."""
    if not dag.nodes:
        return {
            "wall_s": 0.0, "per_rank": [], "tolerance": tolerance,
            "max_residual_frac": 0.0, "buckets_sum_ok": True,
        }
    t0 = min(n.start for n in dag.nodes)
    t1 = max(n.end for n in dag.nodes)
    wall = t1 - t0
    per_rank: Dict[int, Dict[str, float]] = {
        r: {"compute": 0.0, "comm": 0.0} for r in dag.ranks
    }
    for n in dag.nodes:
        if n.is_comm:
            per_rank[n.rank]["comm"] += n.dur
        else:
            per_rank[n.rank]["compute"] += n.dur
    rows = []
    max_residual = 0.0
    for rank in dag.ranks:
        busy = per_rank[rank]
        idle = wall - busy["compute"] - busy["comm"]
        residual = min(0.0, idle)  # overshoot: buckets exceed the wall
        max_residual = max(max_residual, -residual)
        rows.append(
            {
                "rank": rank,
                "wall_s": wall / 1e6,
                "compute_s": busy["compute"] / 1e6,
                "comm_wait_s": busy["comm"] / 1e6,
                "idle_s": max(0.0, idle) / 1e6,
                "residual_s": residual / 1e6,
                "compute_frac": busy["compute"] / wall if wall else 0.0,
                "comm_wait_frac": busy["comm"] / wall if wall else 0.0,
                "idle_frac": max(0.0, idle) / wall if wall else 0.0,
            }
        )
    max_residual_frac = (max_residual / wall) if wall else 0.0
    return {
        "wall_s": wall / 1e6,
        "window_start_s": t0 / 1e6,
        "window_end_s": t1 / 1e6,
        "per_rank": rows,
        "tolerance": tolerance,
        "max_residual_frac": max_residual_frac,
        "buckets_sum_ok": max_residual_frac <= tolerance,
    }


# ----------------------------------------------------------------------
# bottlenecks & bounds
# ----------------------------------------------------------------------
def _bottlenecks(dag: SpanDag, top_k: int) -> dict:
    tasks: Dict[str, Dict[str, float]] = {}
    ranks: Dict[int, Dict[str, float]] = {
        r: {"busy": 0.0, "comm": 0.0, "finish": 0.0} for r in dag.ranks
    }
    for n in dag.nodes:
        t = tasks.setdefault(n.name, {"seconds": 0.0, "count": 0, "max": 0.0})
        t["seconds"] += n.dur / 1e6
        t["count"] += 1
        t["max"] = max(t["max"], n.dur / 1e6)
        r = ranks[n.rank]
        r["busy"] += n.dur / 1e6
        if n.is_comm:
            r["comm"] += n.dur / 1e6
        r["finish"] = max(r["finish"], n.end / 1e6)
    task_rows = sorted(
        (
            {
                "name": name,
                "total_s": t["seconds"],
                "count": int(t["count"]),
                "mean_s": t["seconds"] / t["count"] if t["count"] else 0.0,
                "max_s": t["max"],
            }
            for name, t in tasks.items()
        ),
        key=lambda d: -d["total_s"],
    )
    rank_rows = sorted(
        (
            {
                "rank": rank,
                "busy_s": r["busy"],
                "comm_wait_s": r["comm"],
                "finish_s": r["finish"],
            }
            for rank, r in ranks.items()
        ),
        key=lambda d: -d["busy_s"],
    )
    return {"tasks": task_rows[:top_k], "ranks": rank_rows[:top_k]}


def analyze_events(
    events: Iterable[dict],
    top_k: int = 5,
    source: str = "<events>",
    tolerance: float = ATTRIBUTION_TOLERANCE,
) -> dict:
    """The full analysis of one trace-event recording.

    Returns the ``analysis_report.json`` document: critical path,
    attribution, bottlenecks, and the work/span speedup bounds. Raises
    :class:`PerfError` when the trace holds no rank task spans — an
    empty analysis would read as "nothing is wrong".
    """
    dag = build_span_dag(events)
    if not dag.nodes:
        raise PerfError(f"{source}: no rank task spans to analyze")
    path = critical_path(dag)
    attribution = attribute_wallclock(dag, tolerance=tolerance)
    makespan = attribution["wall_s"]
    path_summary = _path_summary(path, top_k)
    total_work = sum(n.dur for n in dag.nodes) / 1e6
    cp_work = path_summary["work_s"]
    return {
        "schema": 1,
        "source": source,
        "ranks": len(dag.ranks),
        "spans": len(dag.nodes),
        "flow_edges": dag.msg_edges,
        "unbound_flows": dag.unbound_flows,
        "makespan_s": makespan,
        "critical_path": path_summary,
        "attribution": attribution,
        "bottlenecks": _bottlenecks(dag, top_k),
        "speedup_bound": {
            "total_work_s": total_work,
            "critical_path_s": cp_work,
            # work/span law: no schedule of this DAG beats the span
            "max_speedup": (total_work / cp_work) if cp_work else 1.0,
            "achieved_speedup": (total_work / makespan) if makespan else 1.0,
            # how much faster a perfect schedule could still go
            "headroom": (makespan / cp_work) if cp_work else 1.0,
            "bound_holds": cp_work <= makespan * (1.0 + 1e-6),
        },
    }


def analyze_trace(path, top_k: int = 5, tolerance: float = ATTRIBUTION_TOLERANCE) -> dict:
    """Analyze a trace-event JSON file (merged profile or tracesim)."""
    p = Path(path)
    try:
        events = json.loads(p.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise PerfError(f"unreadable trace {p}: {exc}") from exc
    if not isinstance(events, list):
        raise PerfError(f"trace {p} is not a JSON event array")
    return analyze_events(events, top_k=top_k, source=str(p), tolerance=tolerance)


def write_report(report: dict, path) -> Path:
    from repro.util.atomic import atomic_write_text

    out = Path(path)
    atomic_write_text(out, json.dumps(report, indent=2) + "\n")
    return out


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_analysis(report: dict) -> str:
    """The terminal report for ``python -m repro analyze``."""
    cp = report["critical_path"]
    sb = report["speedup_bound"]
    att = report["attribution"]
    lines = [
        f"analyze: {report['spans']} spans on {report['ranks']} rank(s), "
        f"{report['flow_edges']} message edge(s)  [{report['source']}]",
        f"  makespan {report['makespan_s'] * 1e3:.3f} ms, critical path "
        f"{sb['critical_path_s'] * 1e3:.3f} ms "
        f"({cp['spans']} spans, wait {cp['wait_s'] * 1e3:.3f} ms) "
        f"-> headroom {sb['headroom']:.2f}x, max speedup {sb['max_speedup']:.2f}x "
        f"(achieved {sb['achieved_speedup']:.2f}x)",
    ]
    if not sb["bound_holds"]:
        lines.append("  WARNING: critical path exceeds makespan (invalid bound)")
    lines.append("  critical-path contributions:")
    for c in cp["contributions"]:
        lines.append(
            f"    {c['name']:<28} {c['seconds'] * 1e3:>9.3f} ms "
            f"({c['share']:>5.1%}, {c['count']} span(s))"
        )
    lines.append(
        f"  wall-clock attribution ({att['wall_s'] * 1e3:.3f} ms window, "
        f"max residual {att['max_residual_frac']:.2%}"
        f"{', OK' if att['buckets_sum_ok'] else ', VIOLATED'}):"
    )
    lines.append(
        f"    {'rank':>6} {'compute':>10} {'comm-wait':>10} {'idle':>10}"
    )
    for row in att["per_rank"]:
        lines.append(
            f"    {row['rank']:>6} {row['compute_frac']:>9.1%} "
            f"{row['comm_wait_frac']:>9.1%} {row['idle_frac']:>9.1%}"
        )
    bn = report["bottlenecks"]
    lines.append("  top tasks by total time:")
    for t in bn["tasks"]:
        lines.append(
            f"    {t['name']:<28} {t['total_s'] * 1e3:>9.3f} ms total "
            f"({t['count']} spans, mean {t['mean_s'] * 1e3:.3f} ms)"
        )
    if bn["ranks"]:
        busiest = bn["ranks"][0]
        lines.append(
            f"  busiest rank: {busiest['rank']} "
            f"({busiest['busy_s'] * 1e3:.3f} ms busy)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the CLI: python -m repro analyze
# ----------------------------------------------------------------------
def _tracesim_events(ranks: int, resolution: int, rays_per_cell: int):
    """Run the real compiled RMCRT graph through the trace simulator
    (the E11 pipeline) and return its exported events + the report."""
    from repro.core import DistributedRMCRT, benchmark_property_init
    from repro.dessim import RMCRTProblem, TaskGraphTraceSimulator, rmcrt_task_cost
    from repro.grid import LoadBalancer
    from repro.radiation import BurnsChristonBenchmark

    bench = BurnsChristonBenchmark(resolution=resolution)
    patch = max(2, resolution // 4)
    grid = bench.two_level_grid(refinement_ratio=2, fine_patch_size=patch)
    drm = DistributedRMCRT(
        grid, benchmark_property_init(bench), rays_per_cell=rays_per_cell, halo=2
    )
    assignment = LoadBalancer(ranks).assign(grid.finest_level.patches)
    graph = drm.build_graph(assignment=assignment, num_ranks=ranks)
    problem = RMCRTProblem(fine_cells=resolution, refinement_ratio=2, halo=2)
    cost = rmcrt_task_cost(problem, patch_size=patch)
    report = TaskGraphTraceSimulator().simulate(graph, cost)
    return report.to_chrome_trace_events(), report


def cmd_analyze(argv) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Critical-path and wait-time analysis of a trace: an "
        "existing merged trace file, a fresh profile->merge run, or a "
        "tracesim simulation.",
    )
    parser.add_argument(
        "trace", nargs="?", default=None,
        help="trace-event JSON to analyze (a merged profile trace or a "
        "tracesim export); omit with --profile/--tracesim",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run an instrumented profile (profile -> merge -> analyze)",
    )
    parser.add_argument(
        "--tracesim", action="store_true",
        help="event-simulate the compiled RMCRT graph and analyze that "
        "timeline (cross-checks the E11 scaling curve)",
    )
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--steps", type=int, default=2, help="profile timesteps")
    parser.add_argument("--resolution", type=int, default=12)
    parser.add_argument("--rays-per-cell", type=int, default=4)
    parser.add_argument(
        "--workdir", default=".",
        help="where --profile writes its trace artifacts",
    )
    parser.add_argument("--top", type=int, default=5, help="top-K bottlenecks")
    parser.add_argument(
        "--tolerance", type=float, default=ATTRIBUTION_TOLERANCE,
        help="attribution residual tolerance (fraction of wall-clock)",
    )
    parser.add_argument("--out", default="analysis_report.json")
    args = parser.parse_args(argv)

    modes = sum((args.trace is not None, args.profile, args.tracesim))
    if modes != 1:
        print(
            "error: give exactly one of TRACE, --profile, or --tracesim",
            file=sys.stderr,
        )
        return 2

    try:
        sim_makespan = None
        if args.trace is not None:
            report = analyze_trace(
                args.trace, top_k=args.top, tolerance=args.tolerance
            )
        elif args.tracesim:
            events, sim_report = _tracesim_events(
                args.ranks, args.resolution, args.rays_per_cell
            )
            sim_makespan = sim_report.makespan
            report = analyze_events(
                events,
                top_k=args.top,
                source=f"tracesim({args.ranks} ranks)",
                tolerance=args.tolerance,
            )
        else:
            from repro.perf.profile import run_profile

            workdir = Path(args.workdir)
            workdir.mkdir(parents=True, exist_ok=True)
            trace_path = workdir / "merged_trace.json"
            run_profile(
                steps=args.steps,
                resolution=args.resolution,
                rays_per_cell=args.rays_per_cell,
                num_ranks=args.ranks,
                trace_path=str(trace_path),
                metrics_path=str(workdir / "metrics.json"),
                merge=True,
                rank_trace_dir=str(workdir),
            )
            report = analyze_trace(
                trace_path, top_k=args.top, tolerance=args.tolerance
            )
    except PerfError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if sim_makespan is not None:
        # the simulator's own makespan is the independent ground truth
        report["simulated_makespan_s"] = sim_makespan
        report["speedup_bound"]["bound_holds"] = bool(
            report["speedup_bound"]["bound_holds"]
            and report["speedup_bound"]["critical_path_s"]
            <= sim_makespan * (1.0 + 1e-6)
        )
    out = write_report(report, args.out)
    print(format_analysis(report))
    print(f"  report -> {out}")
    ok = report["attribution"]["buckets_sum_ok"] and report["speedup_bound"]["bound_holds"]
    if not ok:
        print(
            "error: analysis failed validation (attribution residual or "
            "critical-path bound)",
            file=sys.stderr,
        )
    return 0 if ok else 1
