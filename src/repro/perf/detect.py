"""Streaming anomaly detection over :class:`TimeSeriesStore` samples.

The tsdb (PR 6) gave the fleet *history*; this module gives it
*judgement*. Four small streaming detectors — each a constant-space
state machine fed one sample at a time, cheap enough to run on the
serve loop's :class:`SnapshotCollector` cadence — turn raw series into
structured :class:`Detection` records:

* :class:`EwmaBand` — EWMA mean with an EWMA absolute-deviation band
  (a streaming stand-in for median/MAD); fires when a sample breaks
  ``k`` deviations out. Catches step changes and spikes.
* :class:`Cusum` — two-sided CUSUM changepoint detector on
  standardized residuals; accumulates small persistent shifts an
  instantaneous band test never sees. Catches slow drift.
* :class:`CounterStall` — a monotone counter that stops advancing
  while companion pending-work stays nonzero is a wedged loop, not an
  idle one. Catches flat-line stalls.
* :class:`QuantileDrift` — recent-vs-baseline ratio on slowly-moving
  series (the P² SLO quantiles, cache hit ratio); direction-aware so
  latency inflation and hit-rate collapse are both first-class.

:class:`DetectorBank` routes sample fields to detector instances by
fnmatch pattern, tracks the active set (with a hold window so a
detection outlives the single sample that raised it), and can replay
a whole store for postmortem use (:meth:`DetectorBank.scan`). The
serve loop and the fabric control loop each own a bank
(:func:`default_bank`) and fold ``bank.as_dict()`` into
``status.json`` / ``fabric_status.json``; :mod:`repro.perf.doctor`
correlates the detections with fabric events and flight-recorder
postmortems into ranked root-cause hypotheses.

Detectors are keyed by sample timestamp, not arrival: replaying a
ring-compacted file (which only ever *drops oldest* samples) can
shorten a warmup but never re-feeds or reorders points, so compaction
seams cannot manufacture phantom spikes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import PerfError

#: severity levels, mildest first; index = rank
SEVERITIES = ("info", "warn", "critical")


def severity_rank(severity: str) -> int:
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise PerfError(f"unknown severity {severity!r} (use {SEVERITIES})")


def worst_severity(severities) -> Optional[str]:
    """The highest-ranked severity in the iterable, or None when empty."""
    worst = -1
    for sev in severities:
        worst = max(worst, severity_rank(sev))
    return SEVERITIES[worst] if worst >= 0 else None


@dataclass
class Detection:
    """One structured anomaly: which detector, which series, when,
    how bad, and the numeric evidence that justified it."""

    detector: str
    series: str
    t: float
    severity: str
    value: float
    window: Tuple[float, float]
    message: str
    evidence: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "detector": self.detector,
            "series": self.series,
            "t": self.t,
            "severity": self.severity,
            "value": self.value,
            "window": list(self.window),
            "message": self.message,
            "evidence": dict(self.evidence),
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Detection":
        return cls(
            detector=str(doc["detector"]),
            series=str(doc["series"]),
            t=float(doc["t"]),
            severity=str(doc["severity"]),
            value=float(doc["value"]),
            window=tuple(doc.get("window") or (0.0, float(doc["t"]))),
            message=str(doc.get("message", "")),
            evidence=dict(doc.get("evidence") or {}),
        )


class _SeriesDetector:
    """Base: one detector instance bound to one series."""

    name = "base"

    def __init__(self) -> None:
        self.series: str = ""
        self._t0: Optional[float] = None

    def bind(self, series: str) -> "_SeriesDetector":
        self.series = series
        return self

    def observe(self, t: float, value: float,
                context: Optional[Dict[str, float]] = None
                ) -> Optional[Detection]:
        raise NotImplementedError

    def _window(self, t: float) -> Tuple[float, float]:
        return (self._t0 if self._t0 is not None else t, t)

    def _make(self, t: float, value: float, severity: str, message: str,
              evidence: Dict[str, float]) -> Detection:
        return Detection(
            detector=self.name,
            series=self.series,
            t=t,
            severity=severity,
            value=value,
            window=self._window(t),
            message=message,
            evidence=evidence,
        )


class EwmaBand(_SeriesDetector):
    """EWMA mean/absolute-deviation band breakout.

    The deviation floor (``rel_floor * |mean| + abs_floor``) keeps a
    near-constant series from alarming on measurement jitter: a series
    flat at 0.1 needs to move materially, not by 1e-6, to fire.
    """

    name = "ewma-band"

    def __init__(self, alpha: float = 0.3, k_warn: float = 6.0,
                 k_crit: float = 12.0, warmup: int = 8,
                 rel_floor: float = 0.05, abs_floor: float = 1e-9) -> None:
        super().__init__()
        if not 0 < alpha <= 1:
            raise PerfError(f"ewma alpha must be in (0, 1], got {alpha}")
        if k_crit < k_warn:
            raise PerfError("k_crit must be >= k_warn")
        self.alpha = alpha
        self.k_warn = k_warn
        self.k_crit = k_crit
        self.warmup = max(2, int(warmup))
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self._n = 0
        self._mean = 0.0
        self._dev = 0.0

    def observe(self, t, value, context=None):
        if self._t0 is None:
            self._t0 = t
        self._n += 1
        if self._n == 1:
            self._mean = value
            return None
        if self._n <= self.warmup:
            # warmup: converge fast, never alarm
            self._mean += 0.5 * (value - self._mean)
            self._dev += 0.5 * (abs(value - self._mean) - self._dev)
            return None
        floor = self.rel_floor * abs(self._mean) + self.abs_floor
        spread = max(self._dev, floor)
        z = abs(value - self._mean) / spread
        detection = None
        if z >= self.k_warn:
            severity = "critical" if z >= self.k_crit else "warn"
            direction = "above" if value > self._mean else "below"
            detection = self._make(
                t, value, severity,
                f"{self.series} broke the EWMA band {direction} "
                f"(value {value:g} vs mean {self._mean:g} "
                f"± {spread:g}, z={z:.1f})",
                {"mean": self._mean, "dev": spread, "z": z},
            )
            # adapt slowly through an anomaly so a sustained shift
            # keeps registering instead of instantly becoming normal
            alpha = self.alpha / 8.0
        else:
            alpha = self.alpha
        self._mean += alpha * (value - self._mean)
        self._dev += alpha * (abs(value - self._mean) - self._dev)
        return detection


class Cusum(_SeriesDetector):
    """Two-sided CUSUM changepoint detector on standardized residuals.

    ``drift`` is the per-sample allowance (in baseline-σ units) and
    ``threshold`` the alarm level; after an alarm the baseline rebases
    to the current value so the detector re-arms for the *next*
    change instead of alarming forever on the new regime.
    """

    name = "cusum"

    def __init__(self, drift: float = 0.5, threshold: float = 8.0,
                 warmup: int = 8, rel_floor: float = 0.05,
                 abs_floor: float = 1e-9) -> None:
        super().__init__()
        self.drift = drift
        self.threshold = threshold
        self.warmup = max(2, int(warmup))
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self._baseline: List[float] = []
        self._mean = 0.0
        self._std = 0.0
        self._s_pos = 0.0
        self._s_neg = 0.0

    def observe(self, t, value, context=None):
        if self._t0 is None:
            self._t0 = t
        if len(self._baseline) < self.warmup:
            self._baseline.append(value)
            if len(self._baseline) == self.warmup:
                n = len(self._baseline)
                self._mean = sum(self._baseline) / n
                var = sum((v - self._mean) ** 2 for v in self._baseline) / n
                self._std = math.sqrt(var)
            return None
        std = max(self._std,
                  self.rel_floor * abs(self._mean) + self.abs_floor)
        z = (value - self._mean) / std
        self._s_pos = max(0.0, self._s_pos + z - self.drift)
        self._s_neg = max(0.0, self._s_neg - z - self.drift)
        s = max(self._s_pos, self._s_neg)
        if s < self.threshold:
            return None
        direction = "upward" if self._s_pos >= self._s_neg else "downward"
        severity = "critical" if s >= 2 * self.threshold else "warn"
        detection = self._make(
            t, value, severity,
            f"{self.series} changepoint: {direction} shift from baseline "
            f"{self._mean:g} (cusum {s:.1f} >= {self.threshold:g})",
            {"s_pos": self._s_pos, "s_neg": self._s_neg,
             "mean": self._mean, "std": std},
        )
        # rebase onto the new regime and re-arm
        self._mean = value
        self._s_pos = self._s_neg = 0.0
        return detection


class CounterStall(_SeriesDetector):
    """A cumulative counter that stops advancing despite pending work.

    A flat counter on an idle service is healthy; a flat counter while
    the companion ``pending_field`` (queue depth, outstanding count)
    stays at or above ``min_pending`` is a wedged loop. A *decrease*
    is a counter reset (process restart) and re-arms the detector
    instead of alarming.
    """

    name = "counter-stall"

    def __init__(self, stall_samples: int = 5,
                 pending_field: Optional[str] = None,
                 min_pending: float = 1.0) -> None:
        super().__init__()
        self.stall_samples = max(1, int(stall_samples))
        self.pending_field = pending_field
        self.min_pending = min_pending
        self._last: Optional[float] = None
        self._grew = False
        self._flat = 0

    def observe(self, t, value, context=None):
        if self._t0 is None:
            self._t0 = t
        if self._last is None:
            self._last = value
            return None
        delta = value - self._last
        self._last = value
        if delta < 0:
            self._grew = False
            self._flat = 0
            return None
        if delta > 0:
            self._grew = True
            self._flat = 0
            return None
        if not self._grew:
            return None
        self._flat += 1
        if self._flat < self.stall_samples:
            return None
        pending = None
        if self.pending_field is not None:
            pending = (context or {}).get(self.pending_field)
            if pending is None or pending < self.min_pending:
                return None
        severity = ("critical" if self._flat >= 2 * self.stall_samples
                    else "warn")
        extra = (f" with {self.pending_field}={pending:g} pending"
                 if pending is not None else "")
        return self._make(
            t, value, severity,
            f"{self.series} stalled at {value:g} for {self._flat} "
            f"samples{extra}",
            {"flat_samples": float(self._flat),
             "pending": float(pending) if pending is not None else 0.0},
        )


class QuantileDrift(_SeriesDetector):
    """Recent-vs-baseline ratio drift on a slowly-moving series.

    Built for the P² SLO quantiles (``direction="up"`` — latency
    inflation) and the cache hit ratio (``direction="down"`` —
    hit-rate collapse). The baseline is the median of the first
    ``baseline_samples`` values; recent is an EWMA.
    """

    name = "quantile-drift"

    def __init__(self, direction: str = "up", baseline_samples: int = 6,
                 alpha: float = 0.4, ratio_warn: float = 2.5,
                 ratio_crit: float = 5.0, min_abs: float = 1e-6) -> None:
        super().__init__()
        if direction not in ("up", "down"):
            raise PerfError(f"drift direction must be up|down, got {direction}")
        self.direction = direction
        self.baseline_samples = max(2, int(baseline_samples))
        self.alpha = alpha
        self.ratio_warn = ratio_warn
        self.ratio_crit = ratio_crit
        self.min_abs = min_abs
        self._head: List[float] = []
        self._baseline: Optional[float] = None
        self._recent: Optional[float] = None

    def observe(self, t, value, context=None):
        if self._t0 is None:
            self._t0 = t
        if self._baseline is None:
            self._head.append(value)
            if len(self._head) < self.baseline_samples:
                return None
            ordered = sorted(self._head)
            mid = len(ordered) // 2
            self._baseline = (ordered[mid] if len(ordered) % 2
                              else 0.5 * (ordered[mid - 1] + ordered[mid]))
            self._recent = self._baseline
            self._head = []
            return None
        self._recent += self.alpha * (value - self._recent)
        if self.direction == "up":
            base = max(self._baseline, self.min_abs)
            ratio = self._recent / base
            verb = "inflated"
        else:
            if self._baseline < self.min_abs:
                return None  # nothing meaningful to collapse from
            ratio = self._baseline / max(self._recent, self.min_abs * 1e-3)
            verb = "collapsed"
        if ratio < self.ratio_warn:
            return None
        severity = "critical" if ratio >= self.ratio_crit else "warn"
        return self._make(
            t, value, severity,
            f"{self.series} {verb} {ratio:.1f}x from baseline "
            f"{self._baseline:g} (recent {self._recent:g})",
            {"baseline": self._baseline, "recent": self._recent,
             "ratio": ratio},
        )


# ----------------------------------------------------------------------
# the bank: pattern routing, active set, derived fields
# ----------------------------------------------------------------------
#: summed to form the derived cache hit ratio
_HIT_FIELDS = ("service.cache.hits{tier=memory}", "service.cache.hits{tier=disk}")
_MISS_FIELD = "service.cache.misses"
#: the derived series name the hit-rate-collapse rule watches
CACHE_HIT_RATIO = "service.cache.hit_ratio"


class DetectorBank:
    """Routes sample fields to detector instances and tracks the
    active detection set.

    ``rules`` is ``[(fnmatch_pattern, detector_factory), ...]``; a
    field matching several patterns gets one detector per match. The
    field->detectors routing is cached per field name, so steady-state
    :meth:`observe` cost is a dict lookup plus O(matched detectors).
    """

    def __init__(
        self,
        rules: Sequence[Tuple[str, Callable[[], _SeriesDetector]]],
        hold_s: float = 120.0,
        max_detections: int = 256,
        derive_cache_ratio: bool = False,
    ) -> None:
        self.rules = list(rules)
        self.hold_s = float(hold_s)
        self.detections: deque = deque(maxlen=max_detections)
        self.derive_cache_ratio = derive_cache_ratio
        self.observed = 0
        self.emitted = 0
        # "t" is the sample timestamp, never a series — pre-seeding an
        # empty route keeps a "*" rule from binding a detector to it
        self._routes: Dict[str, List[_SeriesDetector]] = {"t": []}
        self._active: Dict[Tuple[str, str], Detection] = {}
        self._last_t: Optional[float] = None
        self._prev_hits: Optional[float] = None
        self._prev_misses: Optional[float] = None

    # -- routing -------------------------------------------------------
    def _detectors_for(self, field_name: str) -> List[_SeriesDetector]:
        routed = self._routes.get(field_name)
        if routed is None:
            routed = [
                factory().bind(field_name)
                for pattern, factory in self.rules
                if fnmatchcase(field_name, pattern)
            ]
            self._routes[field_name] = routed
        return routed

    # -- derived fields --------------------------------------------------
    def _derive(self, fields: Dict) -> Dict[str, float]:
        """Derived series from raw sample fields (tolerates non-numeric
        values — it reads the raw record on the hot path)."""
        if not self.derive_cache_ratio:
            return {}
        hits = 0.0
        have_hits = False
        for k in _HIT_FIELDS:
            v = fields.get(k)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                hits += float(v)
                have_hits = True
        raw = fields.get(_MISS_FIELD)
        misses = (float(raw) if isinstance(raw, (int, float))
                  and not isinstance(raw, bool) else None)
        if misses is None and not have_hits:
            return {}
        misses = misses or 0.0
        out: Dict[str, float] = {}
        if self._prev_hits is not None:
            # clamp resets: a counter that went backwards restarted,
            # so the new absolute value IS the delta since restart
            dh = hits - self._prev_hits
            dm = misses - self._prev_misses
            if dh < 0 or dm < 0:
                dh, dm = hits, misses
            if dh + dm >= 1.0:
                out[CACHE_HIT_RATIO] = dh / (dh + dm)
        self._prev_hits, self._prev_misses = hits, misses
        return out

    # -- the hot path ----------------------------------------------------
    def observe(self, record: dict) -> List[Detection]:
        """Feed one tsdb sample record; returns any new detections.

        Routed-first: the steady-state cost per field is one dict
        lookup, and value-type checks run only for the (few) fields a
        rule actually matched — a serve sample is mostly bulk series
        no detector watches.
        """
        t = float(record.get("t", 0.0))
        self.observed += 1
        self._last_t = t
        new: List[Detection] = []
        routes = self._routes
        for name, value in record.items():
            dets = routes.get(name)
            if dets is None:
                dets = self._detectors_for(name)
            if not dets:
                continue
            if (isinstance(value, bool)
                    or not isinstance(value, (int, float))
                    or not math.isfinite(value)):
                continue
            value = float(value)
            for det in dets:
                detection = det.observe(t, value, context=record)
                if detection is not None:
                    new.append(detection)
        if self.derive_cache_ratio:
            for name, value in self._derive(record).items():
                for det in self._detectors_for(name):
                    detection = det.observe(t, value, context=record)
                    if detection is not None:
                        new.append(detection)
        for detection in new:
            self.detections.append(detection)
            self._active[(detection.detector, detection.series)] = detection
        self.emitted += len(new)
        return new

    def scan(self, store, t0: Optional[float] = None,
             t1: Optional[float] = None) -> List[Detection]:
        """Replay a store's retained samples through this bank —
        the postmortem path. Returns every detection emitted."""
        out: List[Detection] = []
        for rec in store.samples(t0, t1):
            out.extend(self.observe(rec))
        return out

    # -- the read side ---------------------------------------------------
    def active(self, now: Optional[float] = None) -> List[Detection]:
        """Detections still inside the hold window, worst first."""
        if now is None:
            now = self._last_t
        if now is None:
            return []
        live = [d for d in self._active.values() if now - d.t <= self.hold_s]
        live.sort(key=lambda d: (-severity_rank(d.severity), d.t))
        return live

    def worst(self, now: Optional[float] = None) -> Optional[str]:
        return worst_severity(d.severity for d in self.active(now))

    def as_dict(self, now: Optional[float] = None) -> dict:
        active = self.active(now)
        return {
            "active": [d.as_dict() for d in active],
            "worst": worst_severity(d.severity for d in active),
            "observed": self.observed,
            "emitted": self.emitted,
        }


def default_rules(kind: str) -> List[Tuple[str, Callable[[], _SeriesDetector]]]:
    """The stock rule set for one telemetry surface.

    ``serve`` watches a shard's own tsdb (SLO quantiles, queue,
    solve/serve counters, cache ratio); ``fabric`` watches the fleet
    series the autoscaler writes into the root tsdb each tick.
    """
    if kind == "serve":
        return [
            ("slo.*.p95_s", lambda: QuantileDrift(direction="up")),
            ("slo.*.p99_s", lambda: QuantileDrift(direction="up")),
            ("slo.queue_depth", lambda: EwmaBand(abs_floor=2.0)),
            ("slo.queue_depth", lambda: Cusum(abs_floor=2.0)),
            ("slo.*.error_rate", lambda: EwmaBand(abs_floor=0.05)),
            (CACHE_HIT_RATIO,
             lambda: QuantileDrift(direction="down", min_abs=0.05,
                                   ratio_warn=2.0, ratio_crit=4.0)),
            ("served", lambda: CounterStall(pending_field="outstanding")),
            ("service.worker.solves*",
             lambda: CounterStall(pending_field="slo.queue_depth",
                                  stall_samples=8)),
        ]
    if kind == "fabric":
        return [
            ("fabric.backlog", lambda: EwmaBand(abs_floor=2.0)),
            ("fabric.backlog", lambda: Cusum(abs_floor=2.0)),
            ("fabric.backlog_per_shard", lambda: EwmaBand(abs_floor=2.0)),
            ("fabric.worst_burn",
             lambda: QuantileDrift(direction="up", min_abs=0.05)),
        ]
    raise PerfError(f"unknown detector rule set {kind!r} (use serve|fabric)")


def default_bank(kind: str, hold_s: float = 120.0) -> DetectorBank:
    return DetectorBank(
        default_rules(kind),
        hold_s=hold_s,
        derive_cache_ratio=(kind == "serve"),
    )


def scan_store(store, kind: str = "serve") -> Tuple[DetectorBank, List[Detection]]:
    """Fresh-bank postmortem replay of one store's retained history."""
    bank = default_bank(kind, hold_s=math.inf)
    detections = bank.scan(store)
    return bank, detections
