"""Command-line front end.

``python -m repro <input.ups>`` runs a Burns & Christon RMCRT problem
from a Uintah-style UPS input file and prints solve statistics plus the
centreline del.q profile — the closest thing to ``sus input.ups`` this
reproduction offers.

``python -m repro profile`` runs a small instrumented simulation and
writes ``trace.json`` (Chrome trace-event JSON — load in
chrome://tracing or Perfetto) and ``metrics.json`` (every runtime
metric series).

``python -m repro serve --spool DIR`` runs the radiation-solve service
against a spool directory; ``python -m repro submit file.ups ...``
pushes requests through it (in-process, or cross-process via
``--spool``). See :mod:`repro.service.cli`.

``python -m repro status --spool DIR`` renders the service's SLO
dashboard (p50/p95/p99, error-budget burn, breaches) one-shot or with
``--watch``.

``python -m repro analyze`` runs the trace analytics engine — critical
path, per-rank compute/comm-wait/idle attribution, speedup bounds —
over a merged trace, a fresh profile run, or a tracesim simulation,
and writes ``analysis_report.json``. See :mod:`repro.perf.analyze`.

``python -m repro perfgate`` compares fresh ``BENCH_<name>.json``
artifacts against the committed baselines in ``benchmarks/baselines/``
and fails on regression. See :mod:`repro.perf.baseline`.

``python -m repro check [lint|graph|races|leaks|fs|protocol|all]``
runs the correctness tooling — the CI gate (``--list-rules``
enumerates every rule). See :mod:`repro.check.cli`.

``python -m repro resilience [checkpoint|restore|drill]`` exercises
checkpoint/restart and the kill-and-recover drill. See
:mod:`repro.resilience.cli`.

``python -m repro fabric [up|route|status|down|drill]`` runs the
multi-shard service fabric: scene-affinity routing across N serve
shards, work stealing, heartbeat-based failure recovery, and
SLO-driven autoscaling. See :mod:`repro.fabric.cli`.

``python -m repro spectral [smoke|run|enclosure]`` exercises the
wavelength-sampled spectral radiation subsystem: the CI smoke
cross-check, named spectral scenarios, and the view-factor enclosure
solver. See :mod:`repro.radiation.spectral.cli`.

``python -m repro doctor [live|postmortem|drill]`` runs the automated
root-cause doctor: it correlates streaming anomaly detections (tsdb
replay through :mod:`repro.perf.detect`), fabric supervisor events,
flight-recorder postmortems, and status facts into a ranked hypothesis
list, and its ``drill`` mode injects three known causes and requires
the top hypothesis to name each one. See :mod:`repro.perf.doctor`.
"""

from __future__ import annotations

import argparse
import sys

from repro.util.errors import ReproError


def _run_ups(argv) -> int:
    from repro.radiation.benchmark import BurnsChristonBenchmark
    from repro.ups import parse_ups, run_ups

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run an RMCRT benchmark from a UPS input file.",
    )
    parser.add_argument("ups", help="path to the UPS XML input file")
    parser.add_argument(
        "--centerline",
        action="store_true",
        help="print the centreline del.q profile",
    )
    args = parser.parse_args(argv)

    try:
        spec = parse_ups(args.ups)
        result = run_ups(spec)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    g, r, s = spec.grid, spec.rmcrt, spec.scheduler
    print(
        f"grid {g.resolution}^3 x {g.levels} level(s) RR:{g.refinement_ratio}"
        + (f", patches {g.patch_size}^3" if g.patch_size else "")
    )
    print(f"RMCRT: {r.n_divq_rays} rays/cell, threshold {r.threshold}, "
          f"halo {r.halo}, scheduler {s.type}"
          + (f" x{s.ranks} ranks ({s.pool})" if s.type == "distributed" else ""))
    print(f"rays traced: {result.rays_traced:,}")
    print(f"solve time:  {result.timers('rmcrt_solve').elapsed:.3f} s")
    print(f"del.q: mean {result.divq.mean():.4f}, max {result.divq.max():.4f}")

    if args.centerline:
        bench = BurnsChristonBenchmark(resolution=g.resolution)
        x, line = bench.centerline(result.divq)
        print(f"\n{'x':>8} {'divQ':>10}")
        for xi, v in zip(x, line):
            print(f"{xi:8.3f} {v:10.4f}")
    return 0


def _run_profile(argv) -> int:
    from repro.perf.profile import format_summary, run_profile

    parser = argparse.ArgumentParser(
        prog="python -m repro profile",
        description="Run an instrumented RMCRT simulation and write "
        "trace.json + metrics.json.",
    )
    parser.add_argument("--steps", type=int, default=2, help="timesteps to run")
    parser.add_argument(
        "--resolution", type=int, default=12, help="fine-level cells per edge"
    )
    parser.add_argument(
        "--rays-per-cell", type=int, default=4, help="rays per cell"
    )
    parser.add_argument(
        "--ranks", type=int, default=2, help="simulated MPI ranks"
    )
    parser.add_argument(
        "--pool",
        choices=("waitfree", "locked", "locked-racy"),
        default="waitfree",
        help="communication request pool variant",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trace", default="trace.json", help="Chrome trace output path"
    )
    parser.add_argument(
        "--metrics", default="metrics.json", help="metrics snapshot output path"
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="write per-rank trace files and stitch them into one "
        "cross-rank trace with send/recv flow arrows",
    )
    parser.add_argument(
        "--rank-trace-dir",
        default=None,
        help="directory for the per-rank trace files (default: next to "
        "the --trace output)",
    )
    args = parser.parse_args(argv)

    try:
        summary = run_profile(
            steps=args.steps,
            resolution=args.resolution,
            rays_per_cell=args.rays_per_cell,
            num_ranks=args.ranks,
            pool_kind=args.pool,
            seed=args.seed,
            trace_path=args.trace,
            metrics_path=args.metrics,
            merge=args.merge,
            rank_trace_dir=args.rank_trace_dir,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_summary(summary))
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "profile":
        return _run_profile(argv[1:])
    if argv and argv[0] == "serve":
        from repro.service.cli import cmd_serve

        return cmd_serve(argv[1:])
    if argv and argv[0] == "submit":
        from repro.service.cli import cmd_submit

        return cmd_submit(argv[1:])
    if argv and argv[0] == "status":
        from repro.service.cli import cmd_status

        return cmd_status(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.perf.analyze import cmd_analyze

        return cmd_analyze(argv[1:])
    if argv and argv[0] == "perfgate":
        from repro.perf.baseline import main as perfgate_main

        return perfgate_main(argv[1:])
    if argv and argv[0] == "check":
        from repro.check.cli import run_check

        return run_check(argv[1:])
    if argv and argv[0] == "resilience":
        from repro.resilience.cli import run_resilience

        return run_resilience(argv[1:])
    if argv and argv[0] == "fabric":
        from repro.fabric.cli import cmd_fabric

        return cmd_fabric(argv[1:])
    if argv and argv[0] == "spectral":
        from repro.radiation.spectral.cli import cmd_spectral

        return cmd_spectral(argv[1:])
    if argv and argv[0] == "doctor":
        from repro.perf.doctor import cmd_doctor

        return cmd_doctor(argv[1:])
    return _run_ups(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
