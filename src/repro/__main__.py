"""Command-line front end: ``python -m repro <input.ups>``.

Runs a Burns & Christon RMCRT problem from a Uintah-style UPS input
file and prints solve statistics plus the centreline del.q profile —
the closest thing to ``sus input.ups`` this reproduction offers.
"""

from __future__ import annotations

import argparse
import sys

from repro.radiation.benchmark import BurnsChristonBenchmark
from repro.ups import parse_ups, run_ups
from repro.util.errors import ReproError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run an RMCRT benchmark from a UPS input file.",
    )
    parser.add_argument("ups", help="path to the UPS XML input file")
    parser.add_argument(
        "--centerline",
        action="store_true",
        help="print the centreline del.q profile",
    )
    args = parser.parse_args(argv)

    try:
        spec = parse_ups(args.ups)
        result = run_ups(spec)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    g, r, s = spec.grid, spec.rmcrt, spec.scheduler
    print(
        f"grid {g.resolution}^3 x {g.levels} level(s) RR:{g.refinement_ratio}"
        + (f", patches {g.patch_size}^3" if g.patch_size else "")
    )
    print(f"RMCRT: {r.n_divq_rays} rays/cell, threshold {r.threshold}, "
          f"halo {r.halo}, scheduler {s.type}"
          + (f" x{s.ranks} ranks ({s.pool})" if s.type == "distributed" else ""))
    print(f"rays traced: {result.rays_traced:,}")
    print(f"solve time:  {result.timers('rmcrt_solve').elapsed:.3f} s")
    print(f"del.q: mean {result.divq.mean():.4f}, max {result.divq.max():.4f}")

    if args.centerline:
        bench = BurnsChristonBenchmark(resolution=g.resolution)
        x, line = bench.centerline(result.divq)
        print(f"\n{'x':>8} {'divQ':>10}")
        for xi, v in zip(x, line):
            print(f"{xi:8.3f} {v:10.4f}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
