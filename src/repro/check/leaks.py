"""Allocator lifetime checking: double-free, use-after-retire, leaks.

Section IV.B's allocator bugs are lifetime bugs: a comm record freed
twice corrupts a free list, a buffer touched after retirement reads
recycled memory, and requests never freed are exactly the leak the
locked pool's race produced at scale. :class:`CheckedAllocator` wraps
any allocator with ``malloc(size) -> addr`` / ``free(addr)`` (the
arena, the size-class pool, the global-lock heap) and shadows every
address through its lifetime, reporting violations as structured
findings instead of corrupting state:

==================      ============================================
rule                    what it flags
==================      ============================================
alloc-double-free       ``free()`` of an address already retired
alloc-invalid-free      ``free()`` of an address never allocated
alloc-use-after-retire  ``touch()`` of a retired or unknown address
alloc-leak              addresses still live at ``check_teardown()``
==================      ============================================

Violating frees are recorded and *not* forwarded to the wrapped
allocator, so checking never corrupts the underlying free lists.
Address reuse is handled: when the allocator hands a retired address
back out (size-class free lists recycle constantly), its shadow entry
is resurrected, not flagged.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import sys

from repro.check.findings import CheckFinding

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "alloc-double-free": (
        "error",
        "an address freed twice without an intervening allocation",
    ),
    "alloc-invalid-free": (
        "error",
        "free of an address this allocator never handed out",
    ),
    "alloc-use-after-retire": (
        "error",
        "an address touched after its buffer was freed or retired",
    ),
    "alloc-leak": (
        "error",
        "an address still live at allocator teardown",
    ),
}

#: CheckedAllocator's own frames, skipped when attributing call sites
_SHIM_FNS = {"malloc", "free", "touch", "check_teardown", "_report", "_site"}


def _site() -> Tuple[str, int]:
    """(file, line) of the nearest frame that is not the shim itself —
    the code that performed the offending malloc/free/touch."""
    frame = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        fname = code.co_filename.replace("\\", "/")
        shim = fname.endswith("repro/check/leaks.py") and code.co_name in _SHIM_FNS
        if not shim:
            return fname, frame.f_lineno
        frame = frame.f_back
    return "<unknown>", 0


class CheckedAllocator:
    """Shadow-tracking shim over an allocator's malloc/free."""

    def __init__(
        self,
        inner,
        name: str = "allocator",
        max_findings: int = 100,
    ) -> None:
        self.inner = inner
        self.name = name
        self.max_findings = int(max_findings)
        self.findings: List[CheckFinding] = []
        #: addr -> (size, alloc site)
        self._live: Dict[int, Tuple[int, Tuple[str, int]]] = {}
        #: addr -> free site (cleared when the address is recycled)
        self._retired: Dict[int, Tuple[str, int]] = {}
        self.allocs = 0
        self.frees = 0

    def _report(self, rule: str, message: str, site: Optional[Tuple[str, int]] = None) -> None:
        if len(self.findings) >= self.max_findings:
            return
        file, line = site if site is not None else _site()
        self.findings.append(CheckFinding(
            rule=rule, severity="error", message=message,
            file=file, line=line, check="leaks",
        ))

    # ------------------------------------------------------------------
    def malloc(self, size: int) -> int:
        addr = self.inner.malloc(size)
        self._retired.pop(addr, None)  # recycled address, fresh lifetime
        self._live[addr] = (size, _site())
        self.allocs += 1
        return addr

    def free(self, addr: int) -> None:
        if addr in self._retired:
            where = self._retired[addr]
            self._report(
                "alloc-double-free",
                f"{self.name}: double free of address {addr} "
                f"(first freed at {where[0]}:{where[1]})",
            )
            return  # do not corrupt the inner free list
        if addr not in self._live:
            self._report(
                "alloc-invalid-free",
                f"{self.name}: free of address {addr} that was never "
                f"allocated through this allocator",
            )
            return
        del self._live[addr]
        self._retired[addr] = _site()
        self.frees += 1
        self.inner.free(addr)

    def touch(self, addr: int) -> None:
        """Assert ``addr`` is live — model of a read/write through it."""
        if addr in self._live:
            return
        if addr in self._retired:
            where = self._retired[addr]
            self._report(
                "alloc-use-after-retire",
                f"{self.name}: use of address {addr} after it was retired "
                f"at {where[0]}:{where[1]}",
            )
        else:
            self._report(
                "alloc-use-after-retire",
                f"{self.name}: use of address {addr} that was never "
                f"allocated",
            )

    def check_teardown(self) -> List[CheckFinding]:
        """Report every still-live address as a leak; returns findings."""
        for addr, (size, site) in sorted(self._live.items()):
            self._report(
                "alloc-leak",
                f"{self.name}: {size} byte(s) at address {addr} never "
                f"freed (allocated at {site[0]}:{site[1]})",
                site=site,
            )
        return self.findings

    @property
    def live_count(self) -> int:
        return len(self._live)


# ----------------------------------------------------------------------
# fixtures: scripted drives used by the CLI and regression tests
# ----------------------------------------------------------------------
LEAK_FIXTURES = ("clean", "double-free", "use-after-retire", "leak")


def run_leak_fixture(name: str) -> CheckedAllocator:
    """Drive a checked size-class pool through one scripted scenario.

    ``clean`` allocates/frees a realistic small-transient mixture and
    tears down empty; the other three each seed exactly the defect
    their name says, so the checker's catch is deterministic.
    """
    from repro.memory.pool import SizeClassPool

    if name not in LEAK_FIXTURES:
        raise ValueError(f"unknown leak fixture {name!r}; "
                         f"expected one of {LEAK_FIXTURES}")
    alloc = CheckedAllocator(SizeClassPool(), name=f"pool[{name}]")
    if name == "clean":
        addrs = [alloc.malloc(32 + (i % 8) * 16) for i in range(64)]
        for a in addrs:
            alloc.touch(a)
        for a in addrs:
            alloc.free(a)
    elif name == "double-free":
        a = alloc.malloc(64)
        b = alloc.malloc(64)
        alloc.free(a)
        alloc.free(a)  # the seeded defect
        alloc.free(b)
    elif name == "use-after-retire":
        a = alloc.malloc(128)
        alloc.free(a)
        alloc.touch(a)  # the seeded defect
    elif name == "leak":
        for i in range(4):
            alloc.malloc(48)  # never freed: the seeded defect
    alloc.check_teardown()
    return alloc


def check_workload(timesteps: int = 6, seed: int = 0) -> CheckedAllocator:
    """Replay the small-transient slice of the RMCRT allocation trace
    through a checked pool — the clean-tree leg of ``repro check
    leaks``. Every transient is freed, so teardown must be silent."""
    from repro.memory.pool import SizeClassPool
    from repro.memory.workload import generate_trace

    events = generate_trace(
        timesteps=timesteps,
        large_per_step=0,
        small_transient_per_step=80,
        persistent_per_step=0,
        seed=seed,
    )
    alloc = CheckedAllocator(SizeClassPool(), name="pool[workload]")
    route: Dict[int, int] = {}
    for ev in events:
        if ev.op == "alloc":
            route[ev.obj_id] = alloc.malloc(ev.size)
        else:
            addr = route.pop(ev.obj_id)
            alloc.touch(addr)
            alloc.free(addr)
    alloc.check_teardown()
    return alloc
