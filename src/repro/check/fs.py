"""Crash-consistency static analysis: the write-then-rename discipline.

Every durable artifact in this repo — spool requests and results,
claim files, journals, checkpoints, status heartbeats — relies on one
publication discipline: write a hidden sibling temp file, then
``os.replace`` it into place, so a reader races only against *absent*
or *complete* files. The kill drills exercise a handful of crash
interleavings dynamically; this pass proves the discipline statically,
over every function in the persistence-bearing packages (``service/``,
``fabric/``, ``resilience/``, ``util/``).

The analyzer extracts a per-function **filesystem-effect summary** —
an ordered list of write / append / atomic-publish / rename / unlink /
fsync / mkdir / exists effects, each tagged with an inferred **path
role** (tmp, payload ``.npz``, sidecar ``.json``, claim, commit
marker, final) — then expands call sites through those summaries
(seeded by :data:`repro.util.atomic.FS_EFFECTS`, the sanctioned
publication primitives) and checks ordering rules over the expanded
sequences:

======================== ======== =======================================
rule                     severity what it flags
======================== ======== =======================================
fs-non-atomic-publish    error    a direct write (``open(.., "w")``,
                                  ``write_text``, ``np.savez``...) to a
                                  non-temp path outside ``util/atomic.py``
fs-sidecar-before-payload error   the ``.json`` completion sidecar
                                  published (or relayed) before its
                                  ``.npz`` payload
fs-cross-dir-rename      warning  a publish rename whose temp source
                                  lives under ``tempfile``/``/tmp`` —
                                  ``os.replace`` across mounts raises
                                  EXDEV (or silently copies)
fs-tmp-leak              warning  a temp file written with no
                                  exception-path cleanup before its
                                  rename (a crash strands the temp)
fs-unlink-before-publish error    a claim file or commit marker
                                  unlinked before any result is
                                  published (breaks re-home zero-loss)
======================== ======== =======================================

The pass is a *linear* abstraction: effects inside one function are
ordered by source line (branches and loops are flattened), call
effects are spliced in at the call site, and path roles come from
suffix/name heuristics plus local variable provenance. That makes it
deliberately conservative where it matters (only ``tempfile``-rooted
sources trigger the cross-mount rule) and syntactic where that is
safe (every ``.write_text`` to a non-temp path is a finding unless the
file is the sanctioned atomic home). Deliberate violations carry an
inline ``# repro: allow(<rule>)``, same as the linter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.findings import (
    CheckFinding,
    is_suppressed,
    parse_suppressions,
)
from repro.util.atomic import FS_EFFECTS

#: rule catalog: name -> (severity, one-line description)
RULES = {
    "fs-non-atomic-publish": (
        "error",
        "direct write to a final/sidecar/payload path outside util.atomic "
        "(readers can observe a torn file)",
    ),
    "fs-sidecar-before-payload": (
        "error",
        "completion sidecar published or relayed before its payload "
        "(completion signal can lie)",
    ),
    "fs-cross-dir-rename": (
        "warning",
        "publish rename sourced from tempfile//tmp — os.replace across "
        "mounts raises EXDEV",
    ),
    "fs-tmp-leak": (
        "warning",
        "temp file written with no exception-path cleanup before its "
        "rename (crash strands the temp)",
    ),
    "fs-unlink-before-publish": (
        "error",
        "claim file or commit marker unlinked before a result is "
        "published (breaks zero-loss re-home)",
    ),
}

#: directories (under src/repro) whose persistence code is in scope
SCOPE_DIRS = ("service", "fabric", "resilience", "util")

#: the sanctioned home of raw write-then-rename (exempt from
#: fs-non-atomic-publish and fs-cross-dir-rename on its own internals)
ATOMIC_HOME = ("util/atomic.py",)

#: roles considered a *publication target* (vs. scratch space)
PUBLISH_ROLES = ("payload", "sidecar", "marker", "final", "claim")

#: ``np`` savers that write straight to a path (unless handed a buffer)
NP_SAVERS = {"save", "savez", "savez_compressed", "savetxt"}

#: max call-splice depth when expanding summaries (cycle-safe anyway)
MAX_SPLICE_DEPTH = 4


# ----------------------------------------------------------------------
# effect model
# ----------------------------------------------------------------------
@dataclass
class Effect:
    """One filesystem side effect at one source location."""

    kind: str        #: write|append|atomic_publish|rename|unlink|fsync|mkdir|exists
    role: str        #: tmp|buffer|payload|sidecar|claim|marker|final
    file: str
    line: int
    protected: bool = False  #: inside a try with temp-file cleanup
    src_role: str = ""       #: rename only: source path role
    src_base: str = ""       #: rename only: source provenance root
    dst_base: str = ""       #: rename only: target provenance root
    detail: str = ""

    def is_publish(self) -> bool:
        """Does this effect make content visible at a non-temp path?"""
        if self.kind in ("write", "atomic_publish") and self.role in PUBLISH_ROLES:
            return True
        if self.kind == "rename" and self.role in PUBLISH_ROLES:
            return True
        return False


@dataclass
class FuncSummary:
    """Per-function effect summary plus unresolved callee references."""

    qualname: str
    file: str
    line: int
    effects: List[Effect] = field(default_factory=list)
    calls: List[Tuple[str, int]] = field(default_factory=list)  # (name, line)
    returns_tmp: bool = False  #: returns a sibling ".tmp" path of arg0


# ----------------------------------------------------------------------
# path-role inference
# ----------------------------------------------------------------------
def role_from_text(text: str) -> Optional[str]:
    """Role implied by a (partial) path string, or None."""
    low = text.lower()
    if ".tmp" in low or low.startswith("/tmp"):
        return "tmp"
    if "claim" in low:
        return "claim"
    if "manifest" in low or "marker" in low or "commit" in low:
        return "marker"
    if low.endswith(".json"):
        return "sidecar"
    if low.endswith(".npz") or low.endswith(".npy"):
        return "payload"
    return None


def _name_hint(identifier: str) -> Optional[str]:
    low = identifier.lower()
    if "tmp" in low or "temp" in low:
        return "tmp"
    if "buf" in low:
        return "buffer"
    if "claim" in low:
        return "claim"
    if "manifest" in low or "marker" in low:
        return "marker"
    if "sidecar" in low:
        return "sidecar"
    if "npz" in low or "payload" in low:
        return "payload"
    return None


def _const_text(node: ast.AST) -> str:
    """Concatenated constant fragments of a string/f-string/path expr."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(
            v.value for v in node.values
            if isinstance(v, ast.Constant) and isinstance(v.value, str)
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Div, ast.Add, ast.Mod)):
        return _const_text(node.left) + "\x00" + _const_text(node.right)
    if isinstance(node, ast.Call):
        # Path("literal"), f"{x}.json".format()...: look at the args
        return "\x00".join(_const_text(a) for a in node.args)
    return ""


def _root_name(node: ast.AST) -> str:
    """Leftmost identifier a path expression hangs off (provenance)."""
    while True:
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            node = node.left
        elif isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            chain = _call_chain(node)
            if chain and chain[0] in ("tempfile",):
                return "tempfile"
            if chain and chain[-1] in ("mkstemp", "mkdtemp", "gettempdir",
                                       "NamedTemporaryFile", "TemporaryDirectory"):
                return "tempfile"
            node = node.func
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Name):
            return node.id
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value.startswith("/tmp"):
                return "tempfile"
            return f"<{node.value}>"
        else:
            return ""


def _call_chain(node: ast.Call) -> Optional[Tuple[str, ...]]:
    parts: List[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return tuple(reversed(parts))
    if isinstance(func, ast.Call):
        # chained off a call receiver: Path(x).write_text(...)
        inner = _call_chain(func)
        tail = tuple(reversed(parts))
        return (inner + tail) if inner else (tail or None)
    return tuple(reversed(parts)) or None


class _PathEnv:
    """Local variable provenance: name -> (role, base)."""

    def __init__(self) -> None:
        self.vars: Dict[str, Tuple[str, str]] = {}

    def infer(self, node: ast.AST) -> Tuple[str, str]:
        """(role, base) of a path expression; role defaults to final."""
        # constant fragments override everything — a literal ".tmp" or
        # ".json" in the expression is the strongest signal
        text = _const_text(node)
        role = role_from_text(text) if text else None
        base = _root_name(node)
        if base == "tempfile":
            role = role or "tmp"
        if role is None and isinstance(node, ast.Name):
            known = self.vars.get(node.id)
            if known is not None:
                kr, kb = known
                if kr.startswith("call:"):
                    # a path minted by a helper: its name is the only
                    # signal (``_tmp_path`` → tmp, ``chunk_path`` → final)
                    kr = _name_hint(kr[len("call:"):]) or "final"
                return (kr, kb)
            role = _name_hint(node.id)
        if role is None:
            # fall back to the provenance variable's record or its name
            if base in self.vars:
                known = self.vars[base]
                role = known[0] if known[0] != "final" else None
                base = known[1] or base
            if role is None and base:
                role = _name_hint(base)
        return (role or "final", base)

    def assign(self, name: str, role: str, base: str) -> None:
        self.vars[name] = (role, base)


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
class _FuncExtractor:
    """Walk one function body in source order, collecting effects."""

    def __init__(self, path: str, qualname: str, node: ast.AST,
                 local_names: Set[str]) -> None:
        self.path = path
        self.summary = FuncSummary(qualname=qualname, file=path,
                                   line=getattr(node, "lineno", 0))
        self.env = _PathEnv()
        self.local_names = local_names
        self._protect_depth = 0
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.args) + list(args.kwonlyargs):
                hint = _name_hint(arg.arg)
                if hint:
                    self.env.assign(arg.arg, hint, arg.arg)

    # -- statement walk -------------------------------------------------
    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs get their own summaries
        if isinstance(stmt, ast.Try):
            cleanup = self._try_has_cleanup(stmt)
            if cleanup:
                self._protect_depth += 1
            self.walk_body(stmt.body)
            if cleanup:
                self._protect_depth -= 1
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
            return
        if isinstance(stmt, (ast.If,)):
            self._scan_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr)
                if (item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)
                        and isinstance(item.context_expr, ast.Call)):
                    self._track_assign(item.optional_vars.id,
                                       item.context_expr)
            self.walk_body(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self._track_assign(target.id, stmt.value)
                elif isinstance(target, (ast.Tuple, ast.List)):
                    # fd, staged = tempfile.mkstemp(): provenance flows
                    # to every unpacked name
                    if (isinstance(stmt.value, ast.Call)
                            and _root_name(stmt.value) == "tempfile"):
                        for elt in target.elts:
                            if isinstance(elt, ast.Name):
                                self.env.assign(elt.id, "tmp", "tempfile")
            return
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._scan_expr(stmt.value)
            if isinstance(stmt.target, ast.Name):
                self._track_assign(stmt.target.id, stmt.value)
            return
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            self._scan_expr(stmt.value)
            text = _const_text(stmt.value)
            if text and ".tmp" in text:
                self.summary.returns_tmp = True
            return
        if isinstance(stmt, ast.Expr):
            self._scan_expr(stmt.value)
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child)

    def _track_assign(self, name: str, value: ast.AST) -> None:
        if isinstance(value, ast.Call):
            chain = _call_chain(value)
            if chain and chain[-1] == "BytesIO":
                self.env.assign(name, "buffer", name)
                return
            if chain and (chain[0] == "tempfile"
                          or chain[-1] in ("mkstemp", "mkdtemp",
                                           "gettempdir")):
                self.env.assign(name, "tmp", "tempfile")
                return
            # a local helper known to mint sibling temp paths
            if chain and chain[-1] in self.local_names:
                # resolved later; record provisional provenance from arg0
                base = _root_name(value.args[0]) if value.args else ""
                self.env.assign(name, "call:" + chain[-1], base)
                return
        role, base = self.env.infer(value)
        if role != "final" or base:
            self.env.assign(name, role, base)

    def _try_has_cleanup(self, node: ast.Try) -> bool:
        """Does this try's handler/finally unlink a temp file?"""
        for body in [h.body for h in node.handlers] + [node.finalbody]:
            for stmt in body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call):
                        chain = _call_chain(sub)
                        if not chain:
                            continue
                        if chain[-1] in ("unlink", "remove"):
                            return True
        return False

    # -- expression scan ------------------------------------------------
    def _scan_expr(self, node: ast.AST) -> None:
        calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        calls.sort(key=lambda c: (getattr(c, "lineno", 0),
                                  getattr(c, "col_offset", 0)))
        for call in calls:
            self._classify_call(call)

    def _add(self, kind: str, role: str, line: int, **kw) -> None:
        self.summary.effects.append(Effect(
            kind=kind, role=role, file=self.path, line=line,
            protected=self._protect_depth > 0, **kw,
        ))

    def _classify_call(self, node: ast.Call) -> None:
        chain = _call_chain(node)
        if chain is None:
            return
        name = chain[-1]
        line = getattr(node, "lineno", 0)

        # sanctioned atomic publication primitives (and registrations)
        if name in FS_EFFECTS:
            info = FS_EFFECTS[name]
            idx = info.get("path_arg", 0)
            role, base = ("final", "")
            if len(node.args) > idx:
                role, base = self.env.infer(node.args[idx])
            self._add(info.get("effect", "atomic_publish"), role, line,
                      dst_base=base, detail=name)
            return

        # open(path, mode)
        if name == "open":
            mode = "r"
            if len(chain) >= 2 and chain[-2] not in ("os", "io", "gzip", "np"):
                # Path.open(...) — path is the receiver
                target: Optional[ast.AST] = node.func.value  # type: ignore[union-attr]
                if node.args and isinstance(node.args[0], ast.Constant):
                    mode = str(node.args[0].value)
            else:
                target = node.args[0] if node.args else None
                if len(node.args) > 1 and isinstance(node.args[1], ast.Constant):
                    mode = str(node.args[1].value)
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = str(kw.value.value)
            if target is None:
                return
            role, base = self.env.infer(target)
            if any(m in mode for m in ("w", "x", "+")):
                self._add("write", role, line, dst_base=base, detail="open")
            elif "a" in mode:
                self._add("append", role, line, dst_base=base, detail="open")
            return

        # Path.write_text / write_bytes
        if name in ("write_text", "write_bytes") and isinstance(
                node.func, ast.Attribute):
            role, base = self.env.infer(node.func.value)
            if role == "buffer":
                return
            self._add("write", role, line, dst_base=base, detail=name)
            return

        # numpy savers: np.save(path_or_buf, ...)
        if name in NP_SAVERS and len(chain) >= 2 and chain[0] in ("np", "numpy"):
            if node.args:
                role, base = self.env.infer(node.args[0])
                if role != "buffer":
                    self._add("write", role, line, dst_base=base,
                              detail=f"np.{name}")
            return

        # renames
        if name in ("rename", "replace") and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if isinstance(recv, ast.Name) and recv.id == "os":
                if len(node.args) >= 2:
                    src_role, src_base = self.env.infer(node.args[0])
                    dst_role, dst_base = self.env.infer(node.args[1])
                    self._add("rename", dst_role, line, src_role=src_role,
                              src_base=src_base, dst_base=dst_base,
                              detail=f"os.{name}")
                return
            # Path.rename(target) / Path.replace(target)
            src_role, src_base = self.env.infer(recv)
            dst_role, dst_base = ("final", "")
            if node.args:
                dst_role, dst_base = self.env.infer(node.args[0])
            self._add("rename", dst_role, line, src_role=src_role,
                      src_base=src_base, dst_base=dst_base, detail=name)
            return

        # unlink / remove
        if name in ("unlink", "remove") and isinstance(node.func, ast.Attribute):
            recv = node.func.value
            if isinstance(recv, ast.Name) and recv.id == "os":
                if node.args:
                    role, base = self.env.infer(node.args[0])
                    self._add("unlink", role, line, dst_base=base)
                return
            role, base = self.env.infer(recv)
            self._add("unlink", role, line, dst_base=base)
            return

        if name == "fsync":
            self._add("fsync", "final", line)
            return
        if name in ("mkdir", "makedirs"):
            self._add("mkdir", "final", line)
            return
        if name == "exists" and isinstance(node.func, ast.Attribute):
            role, base = self.env.infer(node.func.value)
            self._add("exists", role, line, dst_base=base)
            return

        # an unresolved reference to another scanned function
        if name in self.local_names:
            self.summary.calls.append((name, line))


# ----------------------------------------------------------------------
# project analysis
# ----------------------------------------------------------------------
def _iter_functions(tree: ast.Module):
    """(qualname, node) for every function, including methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{node.name}.{sub.name}", sub


def summarize_source(source: str, path: str,
                     known_names: Optional[Set[str]] = None
                     ) -> List[FuncSummary]:
    """Effect summaries for every function in one source text."""
    tree = ast.parse(source, filename=path)
    local = {name.split(".")[-1] for name, _ in _iter_functions(tree)}
    names = local | (known_names or set())
    out: List[FuncSummary] = []
    for qualname, node in _iter_functions(tree):
        ex = _FuncExtractor(path, qualname, node, names)
        ex.walk_body(node.body)
        out.append(ex.summary)
    return out


def expand_effects(summary: FuncSummary,
                   by_name: Dict[str, FuncSummary],
                   depth: int = MAX_SPLICE_DEPTH,
                   seen: Optional[Set[str]] = None) -> List[Effect]:
    """The function's effect sequence with callee summaries spliced in
    at their call sites (attributed to the call line, so findings and
    suppressions stay local to the caller)."""
    seen = set(seen or ())
    merged: List[Tuple[int, int, Effect]] = []
    for order, eff in enumerate(summary.effects):
        merged.append((eff.line, order, eff))
    if depth > 0:
        for name, line in summary.calls:
            callee = by_name.get(name)
            if callee is None or callee.qualname in seen:
                continue
            sub = expand_effects(
                callee, by_name, depth - 1, seen | {summary.qualname}
            )
            for order, eff in enumerate(sub):
                spliced = Effect(
                    kind=eff.kind, role=eff.role, file=summary.file,
                    line=line, protected=eff.protected,
                    src_role=eff.src_role, src_base=eff.src_base,
                    dst_base=eff.dst_base,
                    detail=f"{name}()",
                )
                merged.append((line, 1000 + order, spliced))
    merged.sort(key=lambda t: (t[0], t[1]))
    return [eff for _, _, eff in merged]


def _finding(rule: str, message: str, file: str, line: int) -> CheckFinding:
    severity = RULES[rule][0]
    return CheckFinding(rule=rule, severity=severity, message=message,
                        file=file, line=line, check="fs")


def check_function(summary: FuncSummary,
                   by_name: Dict[str, FuncSummary],
                   exempt_atomic_home: bool = False) -> List[CheckFinding]:
    """Run every crash-consistency rule over one function."""
    findings: List[CheckFinding] = []
    local = summary.effects
    expanded = expand_effects(summary, by_name)

    # fs-non-atomic-publish: raw writes must target scratch space only
    if not exempt_atomic_home:
        for eff in local:
            if eff.kind == "write" and eff.role in PUBLISH_ROLES:
                findings.append(_finding(
                    "fs-non-atomic-publish",
                    f"{summary.qualname}() writes a {eff.role} path "
                    f"directly ({eff.detail}); publish via util.atomic "
                    f"so readers never see a torn file",
                    eff.file, eff.line,
                ))

    # fs-sidecar-before-payload: ordered publication of result pairs
    payload_lines = [i for i, e in enumerate(expanded)
                     if e.is_publish() and e.role == "payload"]
    sidecar_lines = [i for i, e in enumerate(expanded)
                     if e.is_publish() and e.role == "sidecar"]
    if payload_lines and sidecar_lines:
        if min(sidecar_lines) < min(payload_lines):
            eff = expanded[min(sidecar_lines)]
            findings.append(_finding(
                "fs-sidecar-before-payload",
                f"{summary.qualname}() publishes the completion sidecar "
                f"before its payload; a crash in between signals a "
                f"result that does not exist",
                eff.file, eff.line,
            ))

    # fs-cross-dir-rename: publish renames must not cross mounts
    if not exempt_atomic_home:
        for eff in local:
            if eff.kind != "rename":
                continue
            if eff.src_base == "tempfile" and eff.dst_base != "tempfile":
                findings.append(_finding(
                    "fs-cross-dir-rename",
                    f"{summary.qualname}() renames from a tempfile/"
                    f"system-tmp source into {eff.dst_base or 'a target'} "
                    f"directory; os.replace across mounts raises EXDEV — "
                    f"stage the temp next to its target",
                    eff.file, eff.line,
                ))

    # fs-tmp-leak: the write→rename window needs exception cleanup
    tmp_writes = [e for e in local
                  if e.kind == "write" and e.role == "tmp"]
    tmp_renames = [e for e in local
                   if e.kind == "rename" and e.src_role == "tmp"]
    if tmp_writes and tmp_renames:
        for eff in tmp_writes:
            if not eff.protected:
                findings.append(_finding(
                    "fs-tmp-leak",
                    f"{summary.qualname}() writes a temp file and renames "
                    f"it with no exception-path cleanup; a failure between "
                    f"the two strands the temp on disk",
                    eff.file, eff.line,
                ))

    # fs-unlink-before-publish: claims/markers outlive the result
    publish_before = False
    for eff in expanded:
        if eff.is_publish():
            publish_before = True
        if eff.kind == "unlink" and eff.role in ("claim", "marker"):
            if not publish_before and any(
                    later.is_publish() for later in
                    expanded[expanded.index(eff) + 1:]):
                findings.append(_finding(
                    "fs-unlink-before-publish",
                    f"{summary.qualname}() unlinks a {eff.role} before "
                    f"publishing any result; a crash in between loses the "
                    f"request's only durable trace",
                    eff.file, eff.line,
                ))
    return findings


# ----------------------------------------------------------------------
# tree driver
# ----------------------------------------------------------------------
def default_scope(root: Path) -> List[Path]:
    base = root / "src" / "repro"
    return [base / d for d in SCOPE_DIRS]


def iter_scope_files(paths: Iterable[Path]) -> List[Path]:
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.extend(f for f in sorted(p.rglob("*.py"))
                       if "__pycache__" not in f.parts)
        elif p.suffix == ".py":
            out.append(p)
    return out


def check_paths(paths: Iterable[Path],
                root: Optional[Path] = None
                ) -> Tuple[List[CheckFinding], int, dict]:
    """Analyze every file under *paths*.

    Returns (findings, suppressed_count, stats). Findings carry paths
    relative to *root* when given; suppressions are honored per file.
    """
    files = iter_scope_files(paths)
    sources: Dict[str, str] = {}
    rels: Dict[str, str] = {}
    for f in files:
        rel = str(f)
        if root is not None:
            try:
                rel = str(f.relative_to(root))
            except ValueError:
                rel = str(f)
        rel = rel.replace("\\", "/")
        sources[rel] = f.read_text(encoding="utf-8")
        rels[rel] = rel

    # pass 1: names of every scanned function (for call resolution)
    known_names: Set[str] = set(FS_EFFECTS)
    parsed: Dict[str, ast.Module] = {}
    for rel, src in sources.items():
        try:
            tree = ast.parse(src, filename=rel)
        except SyntaxError:
            continue
        parsed[rel] = tree
        for qualname, _ in _iter_functions(tree):
            known_names.add(qualname.split(".")[-1])

    # pass 2: summaries
    all_summaries: List[FuncSummary] = []
    for rel in sorted(parsed):
        all_summaries.extend(summarize_source(sources[rel], rel, known_names))
    by_name: Dict[str, FuncSummary] = {}
    for s in all_summaries:
        by_name.setdefault(s.qualname.split(".")[-1], s)

    # pass 3: rules + suppressions
    findings: List[CheckFinding] = []
    suppressed = 0
    suppressions = {rel: parse_suppressions(src)
                    for rel, src in sources.items()}
    for s in all_summaries:
        exempt = any(s.file.endswith(home) for home in ATOMIC_HOME)
        for f in check_function(s, by_name, exempt_atomic_home=exempt):
            if is_suppressed(f, suppressions.get(f.file, {})):
                suppressed += 1
            else:
                findings.append(f)
    stats = {
        "files_scanned": len(sources),
        "functions": len(all_summaries),
        "effects": sum(len(s.effects) for s in all_summaries),
    }
    return findings, suppressed, stats


def check_source(source: str, path: str = "<string>"
                 ) -> Tuple[List[CheckFinding], int]:
    """Analyze one source text (unit tests and seeded fixtures)."""
    summaries = summarize_source(source, path, set(FS_EFFECTS))
    by_name: Dict[str, FuncSummary] = {}
    for s in summaries:
        by_name.setdefault(s.qualname.split(".")[-1], s)
    suppressions = parse_suppressions(source)
    findings: List[CheckFinding] = []
    suppressed = 0
    for s in summaries:
        for f in check_function(s, by_name):
            if is_suppressed(f, suppressions):
                suppressed += 1
            else:
                findings.append(f)
    return findings, suppressed


# ----------------------------------------------------------------------
# seeded-defect fixtures (the detector's self-test)
# ----------------------------------------------------------------------
SEEDED_FIXTURES: Dict[str, str] = {
    # a result published by direct write — a reader can see half a file
    "non-atomic-publish": (
        "def publish_result(outbox, ticket, meta_text):\n"
        "    target = outbox / f\"{ticket}.json\"\n"
        "    target.write_text(meta_text)\n"
    ),
    # completion signal before content: the submitter reads a ghost
    "sidecar-before-payload": (
        "from repro.util.atomic import atomic_savez, atomic_write_text\n"
        "def publish_result(outbox, ticket, divq, meta_text):\n"
        "    atomic_write_text(outbox / f\"{ticket}.json\", meta_text)\n"
        "    atomic_savez(outbox / f\"{ticket}.npz\", divq=divq)\n"
    ),
    # staging in the system temp dir: os.replace may cross a mount
    "cross-dir-rename": (
        "import os, tempfile\n"
        "def publish_result(outbox, ticket, data):\n"
        "    fd, staged = tempfile.mkstemp()\n"
        "    os.write(fd, data)\n"
        "    os.close(fd)\n"
        "    os.replace(staged, outbox / f\"{ticket}.npz\")\n"
    ),
    # no cleanup between temp write and rename: a crash strands it
    "tmp-leak": (
        "import os\n"
        "def publish_result(target, data, checksum):\n"
        "    tmp = target.parent / f\".{target.name}.tmp\"\n"
        "    tmp.write_bytes(data)\n"
        "    verify(tmp, checksum)\n"
        "    os.replace(tmp, target)\n"
    ),
    # claim dropped before the result exists: a crash loses the request
    "unlink-before-publish": (
        "from repro.util.atomic import atomic_write_text\n"
        "def settle(outbox, ticket, claimed_path, meta_text):\n"
        "    claimed_path.unlink()\n"
        "    atomic_write_text(outbox / f\"{ticket}.json\", meta_text)\n"
    ),
}

#: the rule each fixture must trip (fixture name -> rule name)
FIXTURE_RULES = {
    "non-atomic-publish": "fs-non-atomic-publish",
    "sidecar-before-payload": "fs-sidecar-before-payload",
    "cross-dir-rename": "fs-cross-dir-rename",
    "tmp-leak": "fs-tmp-leak",
    "unlink-before-publish": "fs-unlink-before-publish",
}


def run_fs_fixture(name: str) -> List[CheckFinding]:
    """Analyze one seeded-defect fixture; its rule must fire."""
    source = SEEDED_FIXTURES[name]
    findings, _ = check_source(source, path=f"<seeded:{name}>")
    return findings
